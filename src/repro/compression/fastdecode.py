"""Table-driven decoding for prefix codes.

All three bit codecs (Huffman, Hu-Tucker, ALM) decode prefix-free
variable-length codes.  A bit-at-a-time loop costs microseconds per
output symbol in Python; :class:`PrefixDecoder` instead precomputes a
lookup table over the next ``k`` bits, emitting one symbol per table
hit — the classic canonical-Huffman fast path — and falls back to the
bit loop only for codewords longer than ``k``.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.compression.base import CompressedValue
from repro.errors import CorruptDataError

_TABLE_BITS = 12


class PrefixDecoder:
    """Decodes a prefix-free code given ``(code, length) -> symbol``."""

    def __init__(self, codes: dict[tuple[int, int], Hashable]):
        """``codes`` maps (code value, code length) to the symbol."""
        self._codes = codes
        self._max_length = max((l for _, l in codes), default=0)
        self._k = min(self._max_length, _TABLE_BITS) or 1
        # table[prefix] = (symbol, length) for codes of length <= k;
        # None marks "needs the slow path".
        size = 1 << self._k
        table: list[tuple[Hashable, int] | None] = [None] * size
        for (code, length), symbol in codes.items():
            if length > self._k:
                continue
            base = code << (self._k - length)
            for slot in range(base, base + (1 << (self._k - length))):
                table[slot] = (symbol, length)
        self._table = table

    def decode(self, compressed: CompressedValue) -> list:
        """Decode a full value into its symbol list."""
        bits = compressed.bits
        if bits == 0:
            return []
        buffer = int.from_bytes(compressed.data, "big")
        total = len(compressed.data) * 8
        out: list = []
        position = 0
        k = self._k
        table = self._table
        while position < bits:
            remaining = bits - position
            # Next k bits (zero-padded past the end).
            shift = total - position - k
            window = (buffer >> shift) & ((1 << k) - 1) if shift >= 0 \
                else (buffer << -shift) & ((1 << k) - 1)
            entry = table[window]
            if entry is not None:
                symbol, length = entry
                if length > remaining:
                    raise CorruptDataError("truncated code sequence")
                out.append(symbol)
                position += length
                continue
            # Slow path: extend bit by bit beyond k.
            symbol, length = self._decode_long(buffer, total, position,
                                               remaining)
            out.append(symbol)
            position += length
        return out

    def _decode_long(self, buffer: int, total: int, position: int,
                     remaining: int):
        code = 0
        for length in range(1, min(self._max_length, remaining) + 1):
            bit = (buffer >> (total - position - length)) & 1
            code = (code << 1) | bit
            if length <= self._k:
                continue
            symbol = self._codes.get((code, length))
            if symbol is not None:
                return symbol, length
        raise CorruptDataError("invalid code sequence")

"""Order-preserving arithmetic string encoding [Witten 1987].

One of the three order-preserving candidates §2.1 weighs (Arithmetic,
Hu-Tucker, ALM).  A static character model assigns each symbol a
sub-interval of [0, 1) *in alphabetical order*, so the binary expansion
of the final interval — the emitted code — preserves string order.  An
end-of-string symbol ordered *below* every character makes a proper
prefix sort before its extensions, matching string order.

Implementation: the classic integer renormalization coder (E1/E2/E3
conditions) over 32-bit state.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.errors import CodecDomainError, CorruptDataError
from repro.obs import runtime
from repro.util.bits import BitReader, BitWriter

_STATE_BITS = 32
_TOP = (1 << _STATE_BITS) - 1
_HALF = 1 << (_STATE_BITS - 1)
_QUARTER = 1 << (_STATE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
_MAX_TOTAL = 1 << 16  # keeps intervals from collapsing

_EOS = ""  # sorts below every real character


class ArithmeticCodec(Codec):
    """Static-model order-preserving arithmetic codec."""

    name = "arithmetic"
    properties = CompressionProperties(eq=True, ineq=True, wild=False)
    # Interval arithmetic per character: the costliest decoder here.
    decompression_cost = 1.6

    def __init__(self, counts: dict[str, int]):
        # Scale counts so the total stays below _MAX_TOTAL.
        total = sum(counts.values()) + 1  # +1 for EOS
        if total >= _MAX_TOTAL:
            scale = (_MAX_TOTAL - 1) / total
            counts = {s: max(1, int(c * scale)) for s, c in counts.items()}
        self._symbols = [_EOS] + sorted(counts)
        self._cum = [0]
        for symbol in self._symbols:
            weight = 1 if symbol == _EOS else counts[symbol]
            self._cum.append(self._cum[-1] + weight)
        self._total = self._cum[-1]
        self._index = {s: i for i, s in enumerate(self._symbols)}

    @classmethod
    def train(cls, values: Iterable[str]) -> "ArithmeticCodec":
        counts: Counter = Counter()
        for value in values:
            counts.update(value)
        return cls(dict(counts))

    def encode(self, value: str) -> CompressedValue:
        index = self._index
        cum = self._cum
        total = self._total
        writer = BitWriter()
        low = 0
        high = _TOP
        pending = 0

        def emit(bit: int) -> None:
            nonlocal pending
            writer.write_bit(bit)
            opposite = bit ^ 1
            for _ in range(pending):
                writer.write_bit(opposite)
            pending = 0

        for symbol in list(value) + [_EOS]:
            i = index.get(symbol)
            if i is None:
                raise CodecDomainError(
                    f"character {symbol!r} absent from arithmetic model")
            span = high - low + 1
            high = low + span * cum[i + 1] // total - 1
            low = low + span * cum[i] // total
            while True:
                if high < _HALF:
                    emit(0)
                elif low >= _HALF:
                    emit(1)
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    pending += 1
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low <<= 1
                high = (high << 1) | 1
        # Final disambiguation: pick the quarter the interval covers.
        pending += 1
        if low < _QUARTER:
            emit(0)
        else:
            emit(1)
        compressed = CompressedValue(writer.getvalue(),
                                     writer.bit_length)
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name,
                                 compressed.nbytes, len(value))
        return compressed

    def decode(self, compressed: CompressedValue) -> str:
        cum = self._cum
        total = self._total
        symbols = self._symbols
        reader = BitReader(compressed.data, compressed.bits)

        def next_bit() -> int:
            # Exhausted input decodes as zeros (the coder emits the
            # shortest distinguishing prefix).
            return reader.read_bit() if reader.remaining else 0

        value = 0
        for _ in range(_STATE_BITS):
            value = (value << 1) | next_bit()
        low = 0
        high = _TOP
        out: list[str] = []
        # A decoded string can never have more characters than input bits
        # could possibly describe; guard against corrupt loops.
        for _ in range(compressed.bits + _STATE_BITS + 1):
            span = high - low + 1
            scaled = ((value - low + 1) * total - 1) // span
            # Find the symbol whose cumulative slot contains ``scaled``.
            lo, hi = 0, len(symbols) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cum[mid + 1] <= scaled:
                    lo = mid + 1
                else:
                    hi = mid
            symbol = symbols[lo]
            high = low + span * cum[lo + 1] // total - 1
            low = low + span * cum[lo] // total
            if symbol == _EOS:
                value = "".join(out)
                if runtime.ACTIVE is not None:
                    runtime.record_codec("decode", self.name,
                                         compressed.nbytes, len(value))
                return value
            out.append(symbol)
            while True:
                if high < _HALF:
                    pass
                elif low >= _HALF:
                    value -= _HALF
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    value -= _QUARTER
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low <<= 1
                high = (high << 1) | 1
                value = (value << 1) | next_bit()
        raise CorruptDataError("arithmetic stream never reached EOS")

    def model_size_bytes(self) -> int:
        # (UTF-8 symbol, 2-byte scaled count) per entry.
        return sum(len(s.encode("utf-8")) + 2 for s in self._symbols)

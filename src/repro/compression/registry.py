"""Codec registry: look codecs up by name, train them uniformly.

The cost-model search (:mod:`repro.partitioning.search`) manipulates
algorithm *names* and needs to instantiate and characterize codecs
without knowing concrete classes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.compression.alm import ALMCodec
from repro.compression.arithmetic import ArithmeticCodec
from repro.compression.base import Codec
from repro.compression.blob import Bzip2Blob, ZlibBlob
from repro.compression.huffman import HuffmanCodec
from repro.compression.hutucker import HuTuckerCodec
from repro.compression.numeric import FloatCodec, IntegerCodec
from repro.errors import UnknownCodecError

_REGISTRY: dict[str, type[Codec]] = {
    ALMCodec.name: ALMCodec,
    ArithmeticCodec.name: ArithmeticCodec,
    HuffmanCodec.name: HuffmanCodec,
    HuTuckerCodec.name: HuTuckerCodec,
    IntegerCodec.name: IntegerCodec,
    FloatCodec.name: FloatCodec,
    ZlibBlob.name: ZlibBlob,
    Bzip2Blob.name: Bzip2Blob,
}

#: string codecs the workload-driven search chooses among (paper §3: the
#: set A of available compression algorithms for textual containers).
STRING_ALGORITHMS = (ALMCodec.name, HuffmanCodec.name, HuTuckerCodec.name,
                     ArithmeticCodec.name, Bzip2Blob.name)


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)


def codec_class(name: str) -> type[Codec]:
    """Look up a codec class; raises :class:`UnknownCodecError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownCodecError(
            f"no codec named {name!r}; available: "
            f"{', '.join(available_codecs())}") from None


def train_codec(name: str, values: Iterable[str]) -> Codec:
    """Train the named codec on ``values``."""
    return codec_class(name).train(values)


def register_codec(cls: type[Codec]) -> type[Codec]:
    """Register a user-supplied codec class (usable as a decorator)."""
    _REGISTRY[cls.name] = cls
    return cls

"""Hu-Tucker optimal alphabetical codes [Hu & Tucker 1971].

The paper weighed Hu-Tucker against ALM as the order-preserving codec
(§2.1) and cites [19] for ALM outperforming it on strings; we implement
both so the trade-off can be measured.  Hu-Tucker yields, per *character*,
the optimal prefix-free code among those preserving alphabetical order, so
``eq``, ``ineq`` and prefix-``wild`` predicates all run in the compressed
domain (character alignment keeps string prefixes as bit prefixes).

The classic three-phase algorithm is implemented directly:

1. *combination* — repeatedly merge the minimum-weight *compatible* pair
   (no original leaf strictly between the two nodes);
2. *level assignment* — depth of each original leaf in the phase-1 tree;
3. *reconstruction* — rebuild an alphabetic tree from the leaf levels with
   the standard stack scan, which the Hu-Tucker theorem guarantees to
   succeed.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.compression.alphabetic import assign_alphabetic_codes
from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.errors import CodecDomainError
from repro.obs import runtime
from repro.util.bits import BitWriter


def hu_tucker_code_lengths(weights: Sequence[float]) -> list[int]:
    """Optimal alphabetic code length per symbol (in symbol order)."""
    n = len(weights)
    if n == 0:
        return []
    if n == 1:
        return [1]

    # Phase 1: combination.  Each work-list entry is
    # [weight, is_leaf, node_id]; ``children`` records merges.
    work: list[list] = [[w, True, i] for i, w in enumerate(weights)]
    children: dict[int, tuple[int, int]] = {}
    next_id = n
    while len(work) > 1:
        best: tuple[float, int, int] | None = None
        for i in range(len(work) - 1):
            # Candidates j: everything up to and including the first leaf
            # strictly right of i (beyond it the pair is incompatible).
            j = i + 1
            while True:
                weight_sum = work[i][0] + work[j][0]
                if best is None or weight_sum < best[0]:
                    best = (weight_sum, i, j)
                if work[j][1] or j == len(work) - 1:
                    break
                j += 1
        assert best is not None
        _, i, j = best
        merged = [work[i][0] + work[j][0], False, next_id]
        children[next_id] = (work[i][2], work[j][2])
        next_id += 1
        work[i] = merged
        del work[j]

    # Phase 2: leaf levels in the phase-1 tree.
    levels = [0] * n
    stack = [(work[0][2], 0)]
    while stack:
        node_id, depth = stack.pop()
        if node_id < n:
            levels[node_id] = depth
        else:
            left, right = children[node_id]
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
    return levels


def _check_reconstruction(levels: Sequence[int]) -> None:
    """Verify the levels admit an alphabetic tree (sanity check).

    The stack reconstruction: repeatedly merge the leftmost adjacent pair
    of equal, maximal levels.  The Hu-Tucker theorem guarantees success;
    the check guards our implementation.
    """
    nodes = list(levels)
    while len(nodes) > 1:
        max_level = max(nodes)
        for i in range(len(nodes) - 1):
            if nodes[i] == max_level and nodes[i + 1] == max_level:
                nodes[i:i + 2] = [max_level - 1]
                break
        else:
            raise AssertionError(
                f"leaf levels {list(levels)!r} do not form an "
                f"alphabetic tree")


class HuTuckerCodec(Codec):
    """Character-level optimal alphabetical code."""

    name = "hutucker"
    properties = CompressionProperties(eq=True, ineq=True, wild=True)
    # Same bit-by-bit decode loop as Huffman.
    decompression_cost = 1.0

    def __init__(self, symbols: Sequence[str], lengths: Sequence[int]):
        if len(symbols) != len(lengths):
            raise ValueError("symbols and lengths must align")
        _check_reconstruction(lengths) if symbols else None
        from repro.compression.fastdecode import PrefixDecoder
        self._symbols = list(symbols)
        codes = assign_alphabetic_codes(lengths)
        self._codes = dict(zip(self._symbols, codes))
        self._decoder = PrefixDecoder({
            (code, length): symbol
            for symbol, (code, length) in self._codes.items()
        })

    @classmethod
    def train(cls, values: Iterable[str]) -> "HuTuckerCodec":
        freqs: Counter = Counter()
        for value in values:
            freqs.update(value)
        symbols = sorted(freqs)
        weights = [float(freqs[s]) for s in symbols]
        return cls(symbols, hu_tucker_code_lengths(weights))

    @property
    def codes(self) -> dict[str, tuple[int, int]]:
        """symbol -> (code value, code length); exposed for inspection."""
        return dict(self._codes)

    def encode(self, value: str) -> CompressedValue:
        writer = BitWriter()
        codes = self._codes
        for ch in value:
            entry = codes.get(ch)
            if entry is None:
                raise CodecDomainError(
                    f"character {ch!r} absent from Hu-Tucker source model")
            writer.write_bits(entry[0], entry[1])
        compressed = CompressedValue(writer.getvalue(),
                                     writer.bit_length)
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name,
                                 compressed.nbytes, len(value))
        return compressed

    def decode(self, compressed: CompressedValue) -> str:
        value = "".join(self._decoder.decode(compressed))
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    def model_size_bytes(self) -> int:
        return sum(len(s.encode("utf-8")) + 1 for s in self._symbols)

"""Codec framework: compressed values, algorithm properties, base class.

The paper characterizes each compression algorithm as a tuple
``<d_c, c_s(F), c_a(F), eq, ineq, wild>`` (§3.2):

* ``d_c`` — estimated cost of decompressing one container record;
* ``c_s(F)`` — estimated storage cost of one compressed record;
* ``c_a(F)`` — estimated storage cost of the source-model structures;
* ``eq``/``ineq``/``wild`` — whether equality, inequality, and
  prefix-match predicates can be evaluated in the compressed domain.

:class:`CompressedValue` is the unit the query engine manipulates: a bit
string packed into zero-padded bytes.  For *alphabetical* (order-preserving
prefix-free) codes, comparing ``(data, bits)`` tuples lexicographically is
exactly the source-string order, including the prefix case — see the
ordering argument in :mod:`repro.util.bits`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import CodecDomainError


@total_ordering
@dataclass(frozen=True, slots=True)
class CompressedValue:
    """An individually compressed container value.

    ``data`` holds the code bits packed MSB-first and zero-padded to a
    byte boundary; ``bits`` is the exact bit length.
    """

    data: bytes
    bits: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompressedValue):
            return NotImplemented
        return self.data == other.data and self.bits == other.bits

    def __lt__(self, other: "CompressedValue") -> bool:
        # Zero padding makes byte order equal bit-string order; the bit
        # length breaks ties so that a bit-prefix sorts first.
        if self.data != other.data:
            return self.data < other.data
        return self.bits < other.bits

    def __hash__(self) -> int:
        return hash((self.data, self.bits))

    def starts_with(self, prefix: "CompressedValue") -> bool:
        """True when ``prefix``'s bits are a bit-prefix of this value."""
        if prefix.bits > self.bits:
            return False
        full_bytes, extra_bits = divmod(prefix.bits, 8)
        if self.data[:full_bytes] != prefix.data[:full_bytes]:
            return False
        if extra_bits == 0:
            return True
        mask = (0xFF << (8 - extra_bits)) & 0xFF
        return (self.data[full_bytes] & mask) == \
               (prefix.data[full_bytes] & mask)

    @property
    def nbytes(self) -> int:
        """Size of the packed payload in bytes."""
        return len(self.data)


#: the predicate kinds of the paper's capability tuple, in order.
PREDICATE_KINDS = ("eq", "ineq", "wild")


@dataclass(frozen=True, slots=True)
class CompressionProperties:
    """The paper's algorithmic-property booleans (§3.2).

    ``ineq`` doubles as the *order-preserving* flag: a codec can answer
    inequalities in the compressed domain exactly when compressed-value
    order equals source-value order (ALM, Hu-Tucker, the numeric
    codecs), which is also what merge joins and compressed-domain
    binary search require.
    """

    eq: bool
    ineq: bool
    wild: bool

    def supports(self, predicate_kind: str) -> bool:
        """Look up support by predicate kind: 'eq', 'ineq' or 'wild'.

        Raises :class:`ValueError` on any other kind — a silent
        ``False``/``None`` here would let the optimizer and the plan
        verifier disagree about a capability that does not exist.
        """
        if predicate_kind not in PREDICATE_KINDS:
            raise ValueError(
                f"unknown predicate kind {predicate_kind!r}; "
                f"expected one of {', '.join(PREDICATE_KINDS)}")
        return bool(getattr(self, predicate_kind))

    @property
    def order_preserving(self) -> bool:
        """Compressed order == value order (the ``ineq`` capability)."""
        return self.ineq

    def count_true(self) -> int:
        """Number of properties holding — the greedy search's tie-break."""
        return int(self.eq) + int(self.ineq) + int(self.wild)


#: historical name, kept so external codecs keep importing.
CodecProperties = CompressionProperties


class Codec(ABC):
    """A value codec trained on a container's (or set's) values.

    Subclasses must be deterministic: encoding the same string twice under
    the same source model yields identical bits (required for compressed-
    domain equality).
    """

    #: registry name, e.g. ``"huffman"`` or ``"alm"``.
    name: str = "abstract"
    #: the paper's eq/ineq/wild booleans.  Concrete codecs must declare
    #: their own (``repro lint-src`` enforces it); this default exists
    #: only so the abstract base is importable.
    properties: CompressionProperties = CompressionProperties(
        False, False, False)
    #: relative per-record decompression cost estimate (``d_c``).
    decompression_cost: float = 1.0

    @classmethod
    @abstractmethod
    def train(cls, values: Iterable[str]) -> "Codec":
        """Build a source model from training values and return a codec."""

    @abstractmethod
    def encode(self, value: str) -> CompressedValue:
        """Compress one value; raises CodecDomainError when out of domain."""

    @abstractmethod
    def decode(self, compressed: CompressedValue) -> str:
        """Decompress one value; raises CorruptDataError on bad bits."""

    @abstractmethod
    def model_size_bytes(self) -> int:
        """Approximate serialized size of the source model (``c_a``)."""

    def try_encode(self, value: str) -> CompressedValue | None:
        """Encode, returning ``None`` when the value is out of domain.

        Query constants may contain characters the container's source
        model never saw; the engine then falls back to decompression
        (or, for equality, concludes no match is possible).
        """
        try:
            return self.encode(value)
        except CodecDomainError:
            return None

    def encoded_size_bytes(self, values: Sequence[str]) -> int:
        """Total packed size of ``values`` under this codec (``c_s``)."""
        return sum(self.encode(v).nbytes for v in values)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} properties={self.properties}>"

"""Blob codecs: whole-chunk general-purpose compression.

XMill's strategy — and the paper's default for containers no query ever
touches (§3.3 suggests bzip2 for those): coalesce all of a container's
values into one chunk and compress the chunk.  Excellent compression, but
*no* compressed-domain predicates and a full-container decompression on
any access, which is exactly the trade-off the cost model weighs.

:class:`ZlibBlob` and :class:`Bzip2Blob` wrap the stdlib compressors.
Both also satisfy the per-value :class:`~repro.compression.base.Codec`
interface (each value compressed standalone) so the cost-model search can
treat them uniformly, but containers detect ``is_blob`` and store one
chunk instead.
"""

from __future__ import annotations

import bz2
import zlib
from collections.abc import Iterable

from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.errors import CorruptDataError
from repro.obs import runtime

#: separator for coalescing values into one chunk; XML character data
#: can never contain it.
_SEPARATOR = b"\x00"


class BlobCodec(Codec):
    """Base class for chunk compressors; subclasses bind the algorithm."""

    properties = CompressionProperties(eq=False, ineq=False, wild=False)
    #: blob codecs force whole-chunk decompression on any record access.
    decompression_cost = 4.0
    is_blob = True

    @classmethod
    def train(cls, values: Iterable[str]) -> "BlobCodec":
        return cls()

    # -- chunk interface (used by containers and the XMill baseline) ------

    def compress_chunk(self, data: bytes) -> bytes:
        """Compress one byte chunk."""
        raise NotImplementedError

    def decompress_chunk(self, data: bytes) -> bytes:
        """Decompress one byte chunk."""
        raise NotImplementedError

    def encode_many(self, values: Iterable[str]) -> bytes:
        """Coalesce values (count header + NUL-separated) and compress."""
        parts = [v.encode("utf-8") for v in values]
        chunk = _SEPARATOR.join([str(len(parts)).encode("ascii"), *parts])
        blob = self.compress_chunk(chunk)
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name, len(blob),
                                 len(chunk))
        return blob

    def decode_many(self, blob: bytes) -> list[str]:
        """Inverse of :meth:`encode_many`."""
        chunk = self.decompress_chunk(blob)
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name, len(blob),
                                 len(chunk))
        header, _, body = chunk.partition(_SEPARATOR)
        try:
            count = int(header)
        except ValueError as exc:
            raise CorruptDataError("bad blob count header") from exc
        if count == 0:
            return []
        parts = body.split(_SEPARATOR)
        if len(parts) != count:
            raise CorruptDataError(
                f"blob holds {len(parts)} values, header says {count}")
        return [part.decode("utf-8") for part in parts]

    # -- per-value interface (for uniform cost-model treatment) -----------

    def encode(self, value: str) -> CompressedValue:
        data = self.compress_chunk(value.encode("utf-8"))
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name, len(data),
                                 len(value))
        return CompressedValue(data, len(data) * 8)

    def decode(self, compressed: CompressedValue) -> str:
        try:
            value = self.decompress_chunk(
                compressed.data).decode("utf-8")
        except (OSError, ValueError) as exc:
            raise CorruptDataError(f"bad blob payload: {exc}") from exc
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    def model_size_bytes(self) -> int:
        return 0


class ZlibBlob(BlobCodec):
    """DEFLATE ("gzip") chunks — XMill's default back-end."""

    name = "zlib"

    def __init__(self, level: int = 6):
        self._level = level

    def compress_chunk(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress_chunk(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CorruptDataError(f"bad zlib payload: {exc}") from exc


class Bzip2Blob(BlobCodec):
    """bzip2 chunks — the paper's suggested default for unqueried data."""

    name = "bzip2"
    decompression_cost = 6.0

    def __init__(self, level: int = 9):
        self._level = level

    def compress_chunk(self, data: bytes) -> bytes:
        return bz2.compress(data, self._level)

    def decompress_chunk(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CorruptDataError(f"bad bzip2 payload: {exc}") from exc

"""Classical character-level Huffman coding [Huffman 1952].

XQueC's order-agnostic choice (§2.1): fixed codewords make compressed
equality comparison possible, and because the code is prefix-free the code
of a string prefix is a bit-prefix of the code of the full string — so
prefix-match (``wild``) predicates also run in the compressed domain.
Inequality does not: Huffman codeword order follows frequency, not
alphabet order.

Canonical codes are used so that the source model serializes as just
(symbol, code length) pairs.
"""

from __future__ import annotations

import heapq
from collections import Counter
from collections.abc import Iterable

from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.errors import CodecDomainError
from repro.obs import runtime
from repro.util.bits import BitWriter


def code_lengths_from_frequencies(freqs: dict[str, int]) -> dict[str, int]:
    """Huffman code length per symbol via the classic heap construction."""
    if not freqs:
        return {}
    if len(freqs) == 1:
        return {next(iter(freqs)): 1}
    # Heap entries: (weight, tiebreak, symbols-in-subtree)
    heap: list[tuple[int, int, list[str]]] = [
        (weight, i, [symbol])
        for i, (symbol, weight) in enumerate(sorted(freqs.items()))
    ]
    heapq.heapify(heap)
    lengths: dict[str, int] = dict.fromkeys(freqs, 0)
    tiebreak = len(heap)
    while len(heap) > 1:
        w1, _, syms1 = heapq.heappop(heap)
        w2, _, syms2 = heapq.heappop(heap)
        for symbol in syms1 + syms2:
            lengths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, syms1 + syms2))
        tiebreak += 1
    return lengths


def canonical_codes(lengths: dict[str, int]) -> dict[str, tuple[int, int]]:
    """Assign canonical codes: symbol -> (code value, code length).

    Symbols are ordered by (length, symbol); codes are consecutive
    integers within each length class — the standard canonical scheme.
    """
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: dict[str, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec(Codec):
    """Character-level canonical Huffman codec."""

    name = "huffman"
    properties = CompressionProperties(eq=True, ineq=False, wild=True)
    # Bit-by-bit tree walk per output character: the slowest decoder here.
    decompression_cost = 1.0

    def __init__(self, lengths: dict[str, int]):
        from repro.compression.fastdecode import PrefixDecoder
        self._lengths = lengths
        self._codes = canonical_codes(lengths)
        self._decoder = PrefixDecoder({
            (code, length): symbol
            for symbol, (code, length) in self._codes.items()
        })

    @classmethod
    def train(cls, values: Iterable[str]) -> "HuffmanCodec":
        freqs: Counter = Counter()
        for value in values:
            freqs.update(value)
        return cls(code_lengths_from_frequencies(dict(freqs)))

    @classmethod
    def from_frequencies(cls, freqs: dict[str, int]) -> "HuffmanCodec":
        """Build directly from a character-frequency table."""
        return cls(code_lengths_from_frequencies(freqs))

    @property
    def codes(self) -> dict[str, tuple[int, int]]:
        """symbol -> (code value, code length); exposed for inspection."""
        return dict(self._codes)

    def encode(self, value: str) -> CompressedValue:
        writer = BitWriter()
        codes = self._codes
        for ch in value:
            entry = codes.get(ch)
            if entry is None:
                raise CodecDomainError(
                    f"character {ch!r} absent from Huffman source model")
            writer.write_bits(entry[0], entry[1])
        compressed = CompressedValue(writer.getvalue(),
                                     writer.bit_length)
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name,
                                 compressed.nbytes, len(value))
        return compressed

    def decode(self, compressed: CompressedValue) -> str:
        value = "".join(self._decoder.decode(compressed))
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    def model_size_bytes(self) -> int:
        # Canonical model: one (UTF-8 symbol, 1-byte length) pair each.
        return sum(len(s.encode("utf-8")) + 1 for s in self._lengths)

"""Vectorized codec kernels: bulk codeword decoding into numpy keys.

The batch execution engine (DESIGN.md §13) evaluates compressed-domain
predicates positionally: containers are value-sorted, so any eq/ineq/
interval predicate over ALM, Huffman or numeric codewords reduces to a
``[start, end)`` slot range and a boolean mask over record positions —
no per-record decoding at all.  What *does* need per-record keys is the
merge machinery (``np.searchsorted`` joins) and numeric analytics, and
for the fixed-width numeric codecs that decoding is a pure array
transform:

* :class:`IntegerKernel` — codewords are offset big-endian unsigned
  integers; one ``frombuffer`` + matrix-vector product recovers every
  value.
* :class:`FloatKernel` — codewords are IEEE-754 bits under the total
  order transform; one ``frombuffer`` + vectorized bit flip + ``view``
  recovers every value.

Variable-width codecs (ALM, Huffman, Hu-Tucker, arithmetic) have no
vectorized decode kernel — their compressed-domain strength is the
positional route above, and callers fall back to scalar decoding when
they truly need plaintext.  :func:`kernel_for` returns ``None`` for
them, which is the documented "scalar fallback" signal.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec
from repro.compression.numeric import FloatCodec, IntegerCodec


class IntegerKernel:
    """Bulk decoder for :class:`IntegerCodec` codewords."""

    #: result dtype of :meth:`decode_keys`.
    dtype = np.int64

    def __init__(self, codec: IntegerCodec):
        self._codec = codec
        self._width = codec.width

    def decode_keys(self, records) -> np.ndarray:
        """Numeric values of ``records`` as one int64 array.

        ``records`` is a sequence of
        :class:`~repro.storage.containers.ContainerRecord`; each
        codeword is ``width`` big-endian bytes holding
        ``value - minimum``.
        """
        width = self._width
        count = len(records)
        data = b"".join(r.compressed.data for r in records)
        raw = np.frombuffer(data, dtype=np.uint8).reshape(count, width)
        weights = (np.int64(256) **
                   np.arange(width - 1, -1, -1, dtype=np.int64))
        return raw.astype(np.int64) @ weights + self._codec.minimum


class FloatKernel:
    """Bulk decoder for :class:`FloatCodec` codewords."""

    dtype = np.float64

    def decode_keys(self, records) -> np.ndarray:
        """Numeric values of ``records`` as one float64 array.

        Inverts the total-order transform: stored words with the top
        bit set were positives (sign bit flipped), the rest were
        negatives (all bits flipped).
        """
        data = b"".join(r.compressed.data for r in records)
        words = np.frombuffer(data, dtype=">u8").astype(np.uint64)
        top = np.uint64(1) << np.uint64(63)
        everything = np.uint64(0xFFFFFFFFFFFFFFFF)
        decoded = np.where(words & top != 0,
                           words ^ top, words ^ everything)
        return decoded.view(np.float64)


def kernel_for(codec: Codec):
    """The vectorized decode kernel for ``codec``, or ``None``.

    ``None`` means scalar fallback: the codec's codewords are variable
    width (or too wide for exact int64 arithmetic) and must be decoded
    one at a time through ``codec.decode``.
    """
    if isinstance(codec, IntegerCodec):
        # 8-byte codewords can exceed int64 once the minimum offset is
        # added back; keep the exact scalar path for those rarities.
        if codec.width <= 7:
            return IntegerKernel(codec)
        return None
    if isinstance(codec, FloatCodec):
        return FloatKernel()
    return None

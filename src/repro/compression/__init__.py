"""Value-compression codecs.

XQueC compresses each container value *individually* so that single values
remain accessible and comparable without touching neighbours (§2.1).  Two
families of codecs are provided, mirroring the paper:

* order-agnostic: :class:`~repro.compression.huffman.HuffmanCodec`
  (``eq`` and prefix-``wild`` in the compressed domain);
* order-preserving: :class:`~repro.compression.alm.ALMCodec` (the paper's
  choice), :class:`~repro.compression.hutucker.HuTuckerCodec` and
  :class:`~repro.compression.arithmetic.ArithmeticCodec` (the alternatives
  §2.1 weighs it against) — all supporting ``eq`` and ``ineq``.

Blob codecs (:mod:`repro.compression.blob`) compress whole byte chunks and
are used by the XMill baseline and for containers no query touches.
"""

from repro.compression.alm import ALMCodec
from repro.compression.arithmetic import ArithmeticCodec
from repro.compression.base import (
    Codec,
    CodecProperties,
    CompressedValue,
    CompressionProperties,
)
from repro.compression.blob import BlobCodec, Bzip2Blob, ZlibBlob
from repro.compression.huffman import HuffmanCodec
from repro.compression.hutucker import HuTuckerCodec
from repro.compression.numeric import FloatCodec, IntegerCodec
from repro.compression.registry import (
    available_codecs,
    codec_class,
    train_codec,
)

__all__ = [
    "ALMCodec",
    "ArithmeticCodec",
    "BlobCodec",
    "Bzip2Blob",
    "Codec",
    "CodecProperties",
    "CompressedValue",
    "CompressionProperties",
    "FloatCodec",
    "HuffmanCodec",
    "HuTuckerCodec",
    "IntegerCodec",
    "ZlibBlob",
    "available_codecs",
    "codec_class",
    "train_codec",
]

"""ALM dictionary-based order-preserving compression [Antoshenkov 1997].

The codec the paper selects for XQueC's order-preserving compression
(§2.1): dictionary-based, so decompression emits whole tokens at a time
(faster than character-level Huffman), and order-preserving, so
*inequality* predicates run in the compressed domain — the capability
XGrind/XPRESS lack.

The construction follows the paper's Figure 2.  A dictionary of tokens
(all single characters seen in training, plus frequent multi-character
substrings) is arranged in a trie by the prefix relation.  Because a
token like ``the`` may be extended by another token like ``there``, naive
per-token codes would break order (the *prefix property* problem §2.1
describes).  ALM's fix: each token owns several *partitioning intervals*
of the suffix space — the gaps around the zones of its extensions — and
each interval gets its own symbol:

    token   symbol  interval
    the     c       [the aa, the rd]     (before ``there``'s zone)
    there   d       [there, there...]
    the     e       [the rf, the zz]     (after ``there``'s zone)

Greedy longest-token segmentation then assigns every suffix to exactly
one interval symbol, the global interval order is the suffix order, and
an alphabetical prefix code over the symbols yields bit strings whose
order equals string order.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.compression.alphabetic import (
    assign_alphabetic_codes,
    weight_balanced_code_lengths,
)
from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.compression.fastdecode import PrefixDecoder
from repro.errors import CodecDomainError
from repro.obs import runtime
from repro.util.bits import BitWriter

#: default cap on multi-character dictionary tokens.
DEFAULT_MAX_TOKENS = 768
#: n-gram lengths considered when mining tokens from training data.
_NGRAM_LENGTHS = (2, 3, 4, 6, 8, 12, 16)
#: cap on the number of training characters scanned for n-grams.
_TRAINING_CHAR_BUDGET = 400_000


def select_tokens(values: Iterable[str],
                  max_tokens: int = DEFAULT_MAX_TOKENS) -> list[str]:
    """Mine substrings worth a dictionary entry.

    Two candidate families: words (with their trailing space — the
    dominant repeated unit of natural-language containers) and short
    character n-grams (record-like containers: dates, codes, names).
    Candidates are scored by the characters they save,
    ``(len - 1) * occurrences``, and the best ``max_tokens`` win.
    """
    word_counts: Counter = Counter()
    ngram_counts: Counter = Counter()
    budget = _TRAINING_CHAR_BUDGET
    for value in values:
        if budget <= 0:
            break
        budget -= len(value)
        pieces = value.split(" ")
        for i, piece in enumerate(pieces):
            if not piece:
                continue
            if i + 1 < len(pieces):
                word_counts[piece + " "] += 1
            else:
                word_counts[piece] += 1
        for n in _NGRAM_LENGTHS:
            if len(value) < n:
                continue
            for i in range(len(value) - n + 1):
                ngram_counts[value[i:i + n]] += 1
    scored = [((len(tok) - 1) * cnt, tok)
              for tok, cnt in word_counts.items()
              if cnt >= 2 and len(tok) > 1]
    # Overlapping n-gram occurrences double-count the same characters;
    # discount them so whole-word units win the budget on prose while
    # record-like containers (dates, ids) still get their fragments.
    scored += [((len(tok) - 1) * cnt * 0.1, tok)
               for tok, cnt in ngram_counts.items()
               if cnt >= 2 and len(tok) > 1 and tok not in word_counts]
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [tok for _, tok in scored[:max_tokens]]


class _TrieNode:
    """Token-trie node; ``token_id >= 0`` marks a dictionary token."""

    __slots__ = ("children", "token_id")

    def __init__(self):
        self.children: dict[str, _TrieNode] = {}
        self.token_id = -1


class ALMCodec(Codec):
    """Order-preserving dictionary codec with interval symbols."""

    name = "alm"
    properties = CompressionProperties(eq=True, ineq=True, wild=False)
    # Token-at-a-time decoding: the fastest string decoder here (the
    # property §2.1 cites for choosing ALM in a database setting).
    decompression_cost = 0.5

    def __init__(self, tokens: Sequence[str],
                 symbol_weights: Sequence[float] | None = None):
        """``tokens`` must include every character any value may contain."""
        self._tokens = sorted(set(tokens))
        if any(not t for t in self._tokens):
            raise ValueError("empty token not allowed")
        self._trie = self._build_trie(self._tokens)
        self._extensions = {token: self._immediate_extensions(token)
                            for token in self._tokens}
        # ``_symbols`` lists (token, gap-boundary tokens) in global
        # interval order; parallel arrays hold the codes.
        self._symbols = self._build_symbols()
        self._symbol_index = {key: i for i, (key, _)
                              in enumerate(self._symbols)}
        weights = (list(symbol_weights) if symbol_weights is not None
                   else [1.0] * len(self._symbols))
        if len(weights) != len(self._symbols):
            raise ValueError("symbol weights must align with symbols")
        self._weights = weights  # kept for model serialization
        lengths = weight_balanced_code_lengths(weights)
        codes = assign_alphabetic_codes(lengths)
        self._codes = codes
        self._decoder = PrefixDecoder({
            (code, length): self._symbols[i][1]
            for i, (code, length) in enumerate(codes)
        })

    # -- construction -----------------------------------------------------

    @staticmethod
    def _build_trie(tokens: Sequence[str]) -> _TrieNode:
        root = _TrieNode()
        for token_id, token in enumerate(tokens):
            node = root
            for ch in token:
                node = node.children.setdefault(ch, _TrieNode())
            node.token_id = token_id
        return root

    def _immediate_extensions(self, token: str) -> list[str]:
        """Tokens whose longest proper token-prefix is ``token``."""
        result: list[str] = []
        node = self._trie
        for ch in token:
            node = node.children[ch]
        # BFS below ``token``'s trie node, stopping at token marks.
        stack = [(node, token)]
        while stack:
            current, text = stack.pop()
            for ch, child in current.children.items():
                extended = text + ch
                if child.token_id >= 0:
                    result.append(extended)
                else:
                    stack.append((child, extended))
        result.sort()
        return result

    def _build_symbols(self):
        """Global, ordered list of interval symbols.

        Each symbol is ``((token, gap_index), token_text)``.  A DFS over
        the token trie in alphabetical order interleaves each token's gap
        intervals with its extensions' zones, producing the leaf-interval
        order described in the module docstring.
        """
        symbols: list[tuple[tuple[str, int], str]] = []
        roots = [t for t in self._tokens
                 if len(t) == 1 or not self._has_token_prefix(t)]
        roots.sort()

        def emit(token: str) -> None:
            extensions = self._extensions[token]
            symbols.append(((token, 0), token))
            for gap, extension in enumerate(extensions, start=1):
                emit(extension)
                symbols.append(((token, gap), token))

        for root in roots:
            emit(root)
        return symbols

    def _has_token_prefix(self, token: str) -> bool:
        node = self._trie
        for ch in token[:-1]:
            node = node.children.get(ch)
            if node is None:
                return False
            if node.token_id >= 0:
                return True
        return False

    @classmethod
    def from_code_lengths(cls, tokens: Sequence[str],
                          lengths: Sequence[int]) -> "ALMCodec":
        """Rebuild a codec from its serialized model: the token list
        plus one alphabetic code length per interval symbol.

        Bypasses the weight-balancing step entirely, so the code
        assignment — and therefore every encoding — is bit-identical
        to the codec the lengths were read from.
        """
        codec = cls(tokens)
        if len(lengths) != len(codec._symbols):
            raise ValueError(
                f"expected {len(codec._symbols)} code lengths, got "
                f"{len(lengths)}")
        codes = assign_alphabetic_codes(list(lengths))
        codec._codes = codes
        codec._decoder = PrefixDecoder({
            (code, length): codec._symbols[i][1]
            for i, (code, length) in enumerate(codes)
        })
        return codec

    def code_lengths(self) -> list[int]:
        """Per-symbol code lengths, in symbol order (the model)."""
        return [length for _, length in self._codes]

    @classmethod
    def train(cls, values: Iterable[str],
              max_tokens: int = DEFAULT_MAX_TOKENS) -> "ALMCodec":
        materialized = list(values)
        alphabet = {ch for value in materialized for ch in value}
        # A dictionary entry must earn back its source-model bytes:
        # scale the dictionary with the training volume.
        total_chars = sum(len(v) for v in materialized)
        budget = min(max_tokens, max(8, total_chars // 24))
        tokens = sorted(alphabet | set(select_tokens(materialized,
                                                     budget)))
        if not tokens:
            return cls([chr(0)])
        untrained = cls(tokens)
        # Second pass: count symbol occurrences to weight the code.
        counts = [1.0] * len(untrained._symbols)
        for value in materialized:
            for symbol_id in untrained._segment(value):
                counts[symbol_id] += 1.0
        return cls(tokens, counts)

    # -- encoding ---------------------------------------------------------

    def _longest_match(self, text: str, start: int) -> str:
        """Longest dictionary token that prefixes ``text[start:]``."""
        node = self._trie
        best_end = -1
        i = start
        n = len(text)
        while i < n:
            node = node.children.get(text[i])
            if node is None:
                break
            i += 1
            if node.token_id >= 0:
                best_end = i
        if best_end < 0:
            raise CodecDomainError(
                f"character {text[start]!r} absent from ALM dictionary")
        return text[start:best_end]

    def _gap_index(self, token: str, suffix: str) -> int:
        """Which of ``token``'s gap intervals contains ``suffix``.

        ``suffix`` starts with ``token`` and, because ``token`` was the
        longest match, extends none of ``token``'s extensions — so plain
        string comparison against each extension places it cleanly.
        """
        gap = 0
        for extension in self._extensions[token]:
            if suffix > extension and not suffix.startswith(extension):
                gap += 1
            else:
                break
        return gap

    def _segment(self, value: str):
        """Yield the interval-symbol id sequence for ``value``."""
        pos = 0
        n = len(value)
        index = self._symbol_index
        while pos < n:
            token = self._longest_match(value, pos)
            gap = self._gap_index(token, value[pos:])
            yield index[(token, gap)]
            pos += len(token)

    def encode(self, value: str) -> CompressedValue:
        writer = BitWriter()
        codes = self._codes
        for symbol_id in self._segment(value):
            code, length = codes[symbol_id]
            writer.write_bits(code, length)
        compressed = CompressedValue(writer.getvalue(),
                                     writer.bit_length)
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name,
                                 compressed.nbytes, len(value))
        return compressed

    def decode(self, compressed: CompressedValue) -> str:
        value = "".join(self._decoder.decode(compressed))
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    # -- introspection ----------------------------------------------------

    @property
    def tokens(self) -> list[str]:
        """The dictionary tokens, sorted."""
        return list(self._tokens)

    @property
    def symbol_count(self) -> int:
        """Number of interval symbols (>= number of tokens)."""
        return len(self._symbols)

    def model_size_bytes(self) -> int:
        """Serialized dictionary size.

        Tokens are stored sorted and *front-coded* (shared-prefix
        length + suffix — the standard dictionary layout); interval
        symbols reference tokens by id and add one code-length byte
        each.
        """
        size = 0
        previous = ""
        for token in self._tokens:
            lcp = 0
            limit = min(len(previous), len(token))
            while lcp < limit and previous[lcp] == token[lcp]:
                lcp += 1
            size += 2 + len(token[lcp:].encode("utf-8"))
            previous = token
        size += len(self._symbols)  # one code-length byte per symbol
        return size

"""Order-preserving codecs for numeric containers.

XML values are text; a container whose values all parse as *canonical*
integers or floats (the loader checks this, in the spirit of XPRESS's type
inference) can be compressed far better than with string codecs, while
keeping equality and inequality in the compressed domain:

* :class:`IntegerCodec` — offset (minimum subtracted) fixed-width
  big-endian unsigned encoding; byte order equals numeric order.
* :class:`FloatCodec` — IEEE-754 bits with the standard total-order
  transform (flip the sign bit for positives, all bits for negatives).
"""

from __future__ import annotations

import math
import struct
from collections.abc import Iterable

from repro.compression.base import Codec, CompressionProperties, CompressedValue
from repro.errors import CodecDomainError, CorruptDataError
from repro.obs import runtime


def is_canonical_int(text: str) -> bool:
    """True when ``text`` round-trips through ``int`` unchanged."""
    try:
        return str(int(text)) == text
    except ValueError:
        return False


def is_canonical_float(text: str) -> bool:
    """True when ``text`` round-trips through ``float`` unchanged.

    ``"-0.0"`` is excluded even though it round-trips: it *compares*
    equal to ``0.0`` while the total-order transform encodes it
    strictly below, so admitting it would break the bijection between
    comparison order and compressed order that ``ineq``/``eq`` rely
    on.  Containers holding ``"-0.0"`` stay string-typed instead.
    """
    try:
        value = float(text)
    except ValueError:
        return False
    if math.isnan(value) or math.isinf(value):
        return False
    if value == 0.0 and text != "0.0":
        return False
    return repr(value) == text


class IntegerCodec(Codec):
    """Offset fixed-width big-endian integer codec."""

    name = "integer"
    properties = CompressionProperties(eq=True, ineq=True, wild=False)
    # One int-from-bytes call per record: near-free.
    decompression_cost = 0.1

    def __init__(self, minimum: int, width: int):
        if width < 1:
            raise ValueError("width must be positive")
        self._minimum = minimum
        self._width = width
        self._maximum = minimum + (1 << (8 * width)) - 1

    @classmethod
    def train(cls, values: Iterable[str]) -> "IntegerCodec":
        numbers = []
        for value in values:
            if not is_canonical_int(value):
                raise CodecDomainError(
                    f"{value!r} is not a canonical integer")
            numbers.append(int(value))
        if not numbers:
            return cls(0, 1)
        minimum = min(numbers)
        span = max(numbers) - minimum
        width = max(1, (span.bit_length() + 7) // 8)
        return cls(minimum, width)

    @property
    def width(self) -> int:
        """Bytes per encoded value."""
        return self._width

    @property
    def minimum(self) -> int:
        """Offset subtracted before encoding (added back on decode)."""
        return self._minimum

    def encode(self, value: str) -> CompressedValue:
        if not is_canonical_int(value):
            raise CodecDomainError(f"{value!r} is not a canonical integer")
        number = int(value)
        if not self._minimum <= number <= self._maximum:
            raise CodecDomainError(
                f"{number} outside trained range "
                f"[{self._minimum}, {self._maximum}]")
        data = (number - self._minimum).to_bytes(self._width, "big")
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name, self._width,
                                 len(value))
        return CompressedValue(data, self._width * 8)

    def decode(self, compressed: CompressedValue) -> str:
        if compressed.bits != self._width * 8:
            raise CorruptDataError(
                f"expected {self._width * 8} bits, got {compressed.bits}")
        value = str(int.from_bytes(compressed.data, "big") + self._minimum)
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    def model_size_bytes(self) -> int:
        return 9  # 8-byte minimum + 1-byte width


class FloatCodec(Codec):
    """IEEE-754 total-order codec for canonical float text."""

    name = "float"
    properties = CompressionProperties(eq=True, ineq=True, wild=False)
    decompression_cost = 0.1

    _WIDTH = 8

    @classmethod
    def train(cls, values: Iterable[str]) -> "FloatCodec":
        for value in values:
            if not is_canonical_float(value):
                raise CodecDomainError(
                    f"{value!r} is not a canonical float")
        return cls()

    def encode(self, value: str) -> CompressedValue:
        if not is_canonical_float(value):
            raise CodecDomainError(f"{value!r} is not a canonical float")
        bits = struct.unpack(">Q", struct.pack(">d", float(value)))[0]
        if bits & (1 << 63):
            bits ^= 0xFFFFFFFFFFFFFFFF  # negative: flip everything
        else:
            bits ^= 1 << 63  # positive: flip sign bit only
        if runtime.ACTIVE is not None:
            runtime.record_codec("encode", self.name, self._WIDTH,
                                 len(value))
        return CompressedValue(bits.to_bytes(8, "big"), 64)

    def decode(self, compressed: CompressedValue) -> str:
        if compressed.bits != 64:
            raise CorruptDataError(
                f"expected 64 bits, got {compressed.bits}")
        bits = int.from_bytes(compressed.data, "big")
        if bits & (1 << 63):
            bits ^= 1 << 63
        else:
            bits ^= 0xFFFFFFFFFFFFFFFF
        value = repr(struct.unpack(">d", struct.pack(">Q", bits))[0])
        if runtime.ACTIVE is not None:
            runtime.record_codec("decode", self.name,
                                 compressed.nbytes, len(value))
        return value

    def model_size_bytes(self) -> int:
        return 0

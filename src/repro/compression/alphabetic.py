"""Alphabetical (order-preserving) prefix-code construction helpers.

Two constructions are provided:

* :func:`weight_balanced_code_lengths` — Mehlhorn-style recursive
  bisection.  Near-optimal (within ~2 bits/symbol of entropy), O(n log n),
  used for ALM's potentially large symbol alphabets.
* :func:`assign_alphabetic_codes` — turn per-symbol code lengths (whose
  Kraft sum is <= 1 and which are achievable by an alphabetic tree, as both
  constructions here guarantee) into actual left-to-right codes.

Both keep the defining property of alphabetical codes: for symbols
``a < b`` (in the given order), ``code(a) < code(b)`` as bit strings.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence


def weight_balanced_code_lengths(weights: Sequence[float]) -> list[int]:
    """Code length per symbol via recursive weight-balanced bisection.

    ``weights[i]`` is the (positive) weight of the i-th symbol in
    alphabetical order.  Returns one code length per symbol.
    """
    n = len(weights)
    if n == 0:
        return []
    if n == 1:
        return [1]
    positive = [max(w, 1e-12) for w in weights]
    prefix = [0.0]
    for w in positive:
        prefix.append(prefix[-1] + w)
    lengths = [0] * n

    # Explicit stack of (lo, hi, depth) half-open symbol ranges.
    stack = [(0, n, 0)]
    while stack:
        lo, hi, depth = stack.pop()
        if hi - lo == 1:
            lengths[lo] = max(depth, 1)
            continue
        target = (prefix[lo] + prefix[hi]) / 2.0
        split = bisect.bisect_left(prefix, target, lo + 1, hi)
        if split <= lo:
            split = lo + 1
        elif split >= hi:
            split = hi - 1
        # Choose the better of the two candidate splits around the target.
        if split > lo + 1:
            if abs(prefix[split - 1] - target) < abs(prefix[split] - target):
                split -= 1
        stack.append((lo, split, depth + 1))
        stack.append((split, hi, depth + 1))
    return lengths


def assign_alphabetic_codes(
        lengths: Sequence[int]) -> list[tuple[int, int]]:
    """Assign increasing codes to symbols given alphabetic code lengths.

    Returns ``(code value, code length)`` per symbol, in symbol order.
    The construction walks a virtual binary tree left to right: the code
    for each next symbol is the previous code + 1 at the previous length,
    then shifted/truncated to the new length — the canonical alphabetic
    assignment (it preserves order and is prefix-free whenever ``lengths``
    comes from an actual alphabetic tree).
    """
    codes: list[tuple[int, int]] = []
    code = 0
    previous_length = 0
    for length in lengths:
        if previous_length:
            code += 1
            if length > previous_length:
                code <<= (length - previous_length)
            elif length < previous_length:
                code >>= (previous_length - length)
        codes.append((code, length))
        previous_length = length
    return codes

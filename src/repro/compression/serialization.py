"""Binary serialization of codec source models.

Persisting a repository requires persisting each container's source
model: the Huffman/Hu-Tucker code lengths, the ALM dictionary and
symbol weights, the arithmetic counts, or the numeric codec
parameters.  Every serializer here is exact: the deserialized codec
reproduces bit-identical encodings (required for compressed-domain
equality across sessions).
"""

from __future__ import annotations

from repro.compression.alm import ALMCodec
from repro.compression.arithmetic import ArithmeticCodec
from repro.compression.base import Codec
from repro.compression.blob import Bzip2Blob, ZlibBlob
from repro.compression.huffman import HuffmanCodec
from repro.compression.hutucker import HuTuckerCodec
from repro.compression.numeric import FloatCodec, IntegerCodec
from repro.errors import CorruptDataError, UnknownCodecError
from repro.util.bytestream import ByteReader, ByteWriter

_TYPE_HUFFMAN = 1
_TYPE_HUTUCKER = 2
_TYPE_ARITHMETIC = 3
_TYPE_ALM = 4
_TYPE_INTEGER = 5
_TYPE_FLOAT = 6
_TYPE_ZLIB = 7
_TYPE_BZIP2 = 8


def serialize_codec(codec: Codec) -> bytes:
    """Serialize a codec's source model to bytes."""
    writer = ByteWriter()
    if isinstance(codec, HuffmanCodec):
        writer.byte(_TYPE_HUFFMAN)
        _write_length_table(writer, codec._lengths)
    elif isinstance(codec, HuTuckerCodec):
        writer.byte(_TYPE_HUTUCKER)
        lengths = {s: l for s, (_, l) in codec.codes.items()}
        writer.varint(len(codec._symbols))
        for symbol in codec._symbols:  # preserve alphabetical order
            writer.string(symbol)
            writer.varint(lengths[symbol])
    elif isinstance(codec, ArithmeticCodec):
        writer.byte(_TYPE_ARITHMETIC)
        symbols = codec._symbols[1:]  # EOS is implicit
        writer.varint(len(symbols))
        for i, symbol in enumerate(symbols, start=1):
            writer.string(symbol)
            writer.varint(codec._cum[i + 1] - codec._cum[i])
    elif isinstance(codec, ALMCodec):
        writer.byte(_TYPE_ALM)
        writer.varint(len(codec.tokens))
        for token in codec.tokens:
            writer.string(token)
        lengths = codec.code_lengths()
        writer.varint(len(lengths))
        for length in lengths:
            writer.varint(length)
    elif isinstance(codec, IntegerCodec):
        writer.byte(_TYPE_INTEGER)
        writer.signed(codec._minimum)
        writer.varint(codec._width)
    elif isinstance(codec, FloatCodec):
        writer.byte(_TYPE_FLOAT)
    elif isinstance(codec, ZlibBlob):
        writer.byte(_TYPE_ZLIB)
        writer.varint(codec._level)
    elif isinstance(codec, Bzip2Blob):
        writer.byte(_TYPE_BZIP2)
        writer.varint(codec._level)
    else:
        raise UnknownCodecError(
            f"cannot serialize codec type {type(codec).__name__}")
    return writer.getvalue()


def deserialize_codec(data: bytes) -> Codec:
    """Rebuild a codec from :func:`serialize_codec` output."""
    reader = ByteReader(data)
    codec_type = reader.byte()
    if codec_type == _TYPE_HUFFMAN:
        return HuffmanCodec(_read_length_table(reader))
    if codec_type == _TYPE_HUTUCKER:
        count = reader.varint()
        symbols = []
        lengths = []
        for _ in range(count):
            symbols.append(reader.string())
            lengths.append(reader.varint())
        return HuTuckerCodec(symbols, lengths)
    if codec_type == _TYPE_ARITHMETIC:
        count = reader.varint()
        counts = {}
        for _ in range(count):
            symbol = reader.string()
            counts[symbol] = reader.varint()
        return ArithmeticCodec(counts)
    if codec_type == _TYPE_ALM:
        token_count = reader.varint()
        tokens = [reader.string() for _ in range(token_count)]
        length_count = reader.varint()
        lengths = [reader.varint() for _ in range(length_count)]
        return ALMCodec.from_code_lengths(tokens, lengths)
    if codec_type == _TYPE_INTEGER:
        minimum = reader.signed()
        width = reader.varint()
        return IntegerCodec(minimum, width)
    if codec_type == _TYPE_FLOAT:
        return FloatCodec()
    if codec_type == _TYPE_ZLIB:
        return ZlibBlob(reader.varint())
    if codec_type == _TYPE_BZIP2:
        return Bzip2Blob(reader.varint())
    raise CorruptDataError(f"unknown codec type tag {codec_type}")


def _write_length_table(writer: ByteWriter,
                        lengths: dict[str, int]) -> None:
    writer.varint(len(lengths))
    for symbol in sorted(lengths):
        writer.string(symbol)
        writer.varint(lengths[symbol])


def _read_length_table(reader: ByteReader) -> dict[str, int]:
    count = reader.varint()
    return {reader.string(): reader.varint() for _ in range(count)}

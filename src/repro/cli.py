"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's system is used:

* ``compress``   — XML file -> compressed repository (``.xqc``),
  optionally workload-driven (one query per line in a file);
* ``query``      — evaluate an XQuery over a repository;
* ``trace``      — run a query and emit its telemetry JSON;
* ``profile``    — run a query under the span-attributed sampling
  profiler: per-span CPU shares + folded-stack flamegraph export;
* ``perf``       — serving SLO report (per-query-class latency
  quantiles, cache hit rates) over a batch of queries;
* ``top``        — live serving console: QPS, rolling latency
  percentiles, cache hit rates, latest slow queries — over an
  in-process repository or a scraped ``/metrics`` endpoint;
* ``serve``      — sharded multi-process serving plane: fork N
  workers partitioned by structure-summary subtree, expose the
  coordinator's ``/metrics`` endpoint, run until interrupted;
* ``loadgen``    — drive a sharded serving plane with concurrent
  clients and report p50/p99 latency, QPS and the
  compressed-vs-plain shipped-bytes ratio;
* ``bench``      — benchmark trajectory tools; ``bench compare`` is
  the noise-aware perf-regression gate CI runs;
* ``stats``      — storage occupancy breakdown of a repository;
* ``decompress`` — reconstruct the XML document from a repository;
* ``workload``   — observatory reports over a recorded query journal
  (capture with ``query --record``);
* ``lint-plan``  — statically verify the plans a query would run as;
* ``lint-src``   — check engine-wide source invariants (Tier B lint);
* ``lint-concurrency`` — check lock discipline: acquisition order,
  release guarantees, guarded fields (Tier C lint);
* ``verify``     — differential correctness oracle: compressed-domain
  evaluation vs a decompress-first reference (CI ``verify-oracle``);
* ``xmlgen``     — generate an XMark auction document.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

from repro.core.system import XQueCSystem
from repro.errors import XQueCError
from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.engine import QueryEngine
from repro.query.options import ExecutionOptions
from repro.service.session import Session
from repro.storage.loader import load_document
from repro.storage.serialization import load_repository, save_repository
from repro.xmark.generator import generate_xmark

#: set by SIGINT/SIGTERM to stop a running ``repro serve`` loop; a
#: module constant so the Tier-C inventory and watchdog can see it.
_SERVE_STOP = threading.Event()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XQueC: query evaluation over compressed XML "
                    "(EDBT 2004 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    compress = commands.add_parser(
        "compress", help="compress an XML file into a repository")
    compress.add_argument("input", type=Path, help="XML file")
    compress.add_argument("output", type=Path,
                          help="repository file (.xqc)")
    compress.add_argument("--workload", type=Path, default=None,
                          help="file with one XQuery per line driving "
                               "the compression configuration")

    query = commands.add_parser(
        "query", help="evaluate an XQuery over a repository")
    query.add_argument("repository", type=Path)
    query.add_argument("xquery", help="the query text")
    query.add_argument("--stats", action="store_true",
                       help="print evaluation statistics")
    query.add_argument("--explain", action="store_true",
                       help="print the evaluation strategy first")
    query.add_argument("--analyze", action="store_true",
                       help="run with telemetry and print the plan "
                            "annotated with actual counts and timings")
    query.add_argument("--profile", action="store_true",
                       help="with --analyze: attach the sampling "
                            "profiler and add the hot-spans section")
    query.add_argument("--record", action="store_true",
                       help="journal this run's workload observation "
                            "for the observatory")
    query.add_argument("--journal", type=Path, default=None,
                       help="journal file (default: "
                            "<repository>.workload.jsonl)")
    query.add_argument("--batch-size", type=int, default=None,
                       help="rows per RecordBatch in the batch "
                            "execution engine (default 1024; 1 forces "
                            "the legacy row-at-a-time path)")

    workload = commands.add_parser(
        "workload",
        help="observatory reports over a recorded query journal")
    workload_commands = workload.add_subparsers(
        dest="workload_command", required=True)
    report = workload_commands.add_parser(
        "report",
        help="fold the journal through the cost model and report "
             "drift + recompression recommendations")
    report.add_argument("repository", type=Path)
    report.add_argument("--journal", type=Path, default=None,
                        help="journal file (default: "
                             "<repository>.workload.jsonl)")
    report.add_argument("--json", action="store_true",
                        help="emit the full drift report as JSON")
    report.add_argument("--since", default=None,
                        help="only consider records with an ISO "
                             "timestamp >= this")
    report.add_argument("--top-k", type=int, default=None,
                        help="limit hottest-container and "
                             "recommendation listings")

    profile = commands.add_parser(
        "profile",
        help="run a query under the span-attributed sampling "
             "profiler")
    profile.add_argument("repository", type=Path)
    profile.add_argument("xquery", help="the query text")
    profile.add_argument("--hz", type=float, default=None,
                         help="sampling rate (default 97 Hz)")
    profile.add_argument("--repeat", type=int, default=1,
                         help="run the query this many times under "
                              "one profile (more samples for fast "
                              "queries; default 1)")
    profile.add_argument("--flamegraph", type=Path, default=None,
                         help="write folded stacks here (input for "
                              "flamegraph.pl / speedscope / inferno)")
    profile.add_argument("--tracemalloc", action="store_true",
                         help="also record per-span allocation "
                              "deltas (slower)")
    profile.add_argument("--top", type=int, default=10,
                         help="hot-span rows to print (default 10)")
    profile.add_argument("--json", action="store_true",
                         help="emit the full profile as JSON")

    perf = commands.add_parser(
        "perf", help="serving performance reports (SLOs)")
    perf_commands = perf.add_subparsers(dest="perf_command",
                                        required=True)
    perf_report = perf_commands.add_parser(
        "report",
        help="run a query batch through a session and report "
             "per-query-class latency quantiles + cache hit rates")
    perf_report.add_argument("repository", type=Path)
    perf_report.add_argument("--query", action="append", default=None,
                             help="a query to serve (repeatable)")
    perf_report.add_argument("--queries-file", type=Path, default=None,
                             help="file with one query per line")
    perf_report.add_argument("--repeat", type=int, default=3,
                             help="how many times to serve the batch "
                                  "(default 3)")
    perf_report.add_argument("--workers", type=int, default=4,
                             help="execute_many thread-pool width "
                                  "(default 4)")
    perf_report.add_argument("--slo", action="append", default=None,
                             help="latency objective CLASS:pNN:MILLIS "
                                  "(e.g. point:p95:5; repeatable; "
                                  "exit 1 on violation)")
    perf_report.add_argument("--json", action="store_true",
                             help="emit the report as JSON")

    top = commands.add_parser(
        "top",
        help="live serving console: QPS, rolling latency "
             "percentiles, cache hit rates, latest slow queries")
    top.add_argument("target",
                     help="a repository path (drive it in-process "
                          "with --query/--queries-file) or the "
                          "http://host:port of a running process's "
                          "telemetry endpoint (scrape mode)")
    top.add_argument("--query", action="append", default=None,
                     help="a query to drive each tick in local mode "
                          "(repeatable)")
    top.add_argument("--queries-file", type=Path, default=None,
                     help="file with one query per line (local mode)")
    top.add_argument("--workers", type=int, default=4,
                     help="execute_many thread-pool width in local "
                          "mode (default 4)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument("--once", action="store_true",
                     help="render one snapshot and exit (scriptable)")
    top.add_argument("--slow-ms", type=float, default=None,
                     help="local mode: slow-query threshold in ms "
                          "(default 100)")

    serve = commands.add_parser(
        "serve",
        help="sharded multi-process serving plane over a repository")
    serve.add_argument("repository", type=Path)
    serve.add_argument("--shards", type=int, default=2,
                       help="worker processes to fork (default 2)")
    serve.add_argument("--queries-file", type=Path, default=None,
                       help="file with one query per line driving "
                            "the subtree shard placement")
    serve.add_argument("--port", type=int, default=9464,
                       help="telemetry endpoint port (default 9464; "
                            "0 picks an ephemeral port)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="admission control: global in-flight "
                            "query limit (default 64)")
    serve.add_argument("--per-client", type=int, default=8,
                       help="admission control: per-client in-flight "
                            "quota (default 8)")

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a sharded serving plane and report p50/p99 "
             "latency, QPS and the shipped-bytes ratio")
    loadgen.add_argument("repository", type=Path)
    loadgen.add_argument("--query", action="append", default=None,
                         help="a query in the mix (repeatable)")
    loadgen.add_argument("--queries-file", type=Path, default=None,
                         help="file with one query per line")
    loadgen.add_argument("--xmark", action="store_true",
                         help="use the built-in XMark query set as "
                              "the mix")
    loadgen.add_argument("--shards", type=int, default=2,
                         help="worker processes to fork (default 2)")
    loadgen.add_argument("--rounds", type=int, default=3,
                         help="times the mix is replayed (default 3)")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent client threads (default 4)")
    loadgen.add_argument("--max-inflight", type=int, default=64,
                         help="admission control: global in-flight "
                              "limit (default 64)")
    loadgen.add_argument("--per-client", type=int, default=8,
                         help="admission control: per-client quota "
                              "(default 8)")
    loadgen.add_argument("--trajectory", type=Path, default=None,
                         help="trajectory JSON to append the summary "
                              "point to (default: the repo-wide "
                              "BENCH_trajectory.json)")
    loadgen.add_argument("--no-record", action="store_true",
                         help="do not write a trajectory point")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the report as JSON")

    bench = commands.add_parser(
        "bench", help="benchmark trajectory tools")
    bench_commands = bench.add_subparsers(dest="bench_command",
                                          required=True)
    bench_compare = bench_commands.add_parser(
        "compare",
        help="noise-aware regression gate: fresh trajectory medians "
             "vs the committed baseline")
    from repro.bench.compare import add_compare_arguments
    add_compare_arguments(bench_compare)
    bench_batch = bench_commands.add_parser(
        "batch",
        help="batch-vs-row operator benchmark; records fig7_batch "
             "trajectory points and gates the scan-pipeline speedup")
    from repro.bench.batchbench import add_batchbench_arguments
    add_batchbench_arguments(bench_batch)

    trace = commands.add_parser(
        "trace", help="run a query and emit its telemetry JSON")
    trace.add_argument("repository", type=Path)
    trace.add_argument("xquery", help="the query text")
    trace.add_argument("--output", type=Path, default=None,
                       help="write JSON here (stdout if omitted)")
    trace.add_argument("--indent", type=int, default=2,
                       help="JSON indentation (default 2)")

    stats = commands.add_parser(
        "stats", help="storage occupancy breakdown")
    stats.add_argument("repository", type=Path)

    decompress = commands.add_parser(
        "decompress", help="reconstruct the XML document")
    decompress.add_argument("repository", type=Path)
    decompress.add_argument("output", type=Path, nargs="?",
                            help="output file (stdout if omitted)")

    lint_plan = commands.add_parser(
        "lint-plan",
        help="statically verify the plans a query would run as")
    lint_plan.add_argument("repository", type=Path)
    lint_plan.add_argument("xquery", help="the query text")
    lint_plan.add_argument("--json", action="store_true",
                           help="emit diagnostics as JSON")

    lint_src = commands.add_parser(
        "lint-src",
        help="check engine-wide source invariants (Tier B lint)")
    lint_src.add_argument("paths", type=Path, nargs="*",
                          help="files/directories to lint (default: "
                               "the installed repro package)")
    lint_src.add_argument("--json", action="store_true",
                          help="emit diagnostics as JSON")

    lint_conc = commands.add_parser(
        "lint-concurrency",
        help="check lock discipline: acquisition order, release "
             "guarantees, guarded fields (Tier C lint)")
    lint_conc.add_argument("paths", type=Path, nargs="*",
                           help="files/directories to lint (default: "
                                "the installed repro package)")
    lint_conc.add_argument("--json", action="store_true",
                          help="emit the full report (inventory, "
                               "edges, levels, diagnostics) as JSON")

    verify = commands.add_parser(
        "verify",
        help="differential oracle: compressed-domain evaluation vs a "
             "decompress-first reference")
    verify.add_argument("--seed", type=int, default=0,
                        help="everything derives from this (default 0)")
    verify.add_argument("--docs", type=int, default=25,
                        help="generated documents for the engine "
                             "oracle (default 25)")
    verify.add_argument("--queries", type=int, default=40,
                        help="queries per document (default 40)")
    verify.add_argument("--values", type=int, default=48,
                        help="values per codec-oracle round "
                             "(default 48)")
    verify.add_argument("--rounds", type=int, default=3,
                        help="codec-oracle rounds per codec "
                             "(default 3)")
    verify.add_argument("--scale", type=int, default=10,
                        help="entities per generated document "
                             "(default 10)")
    verify.add_argument("--corpus-dir", type=Path, default=None,
                        help="write minimized counterexamples here "
                             "when mismatches are found")
    verify.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    verify.add_argument("--batch-size", type=int, default=None,
                        help="batch size for the compressed-domain "
                             "engine under test (1 = legacy row "
                             "path; default: engine default)")

    xmlgen = commands.add_parser(
        "xmlgen", help="generate an XMark auction document")
    xmlgen.add_argument("--factor", type=float, default=0.01,
                        help="scale factor (1.0 ~ 11 MB)")
    xmlgen.add_argument("--seed", type=int, default=42)
    xmlgen.add_argument("--output", type=Path, default=None,
                        help="output file (stdout if omitted)")
    return parser


def main(argv: list[str] | None = None,
         out=sys.stdout, err=sys.stderr) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "compress": _cmd_compress,
        "query": _cmd_query,
        "profile": _cmd_profile,
        "perf": _cmd_perf,
        "top": _cmd_top,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "decompress": _cmd_decompress,
        "workload": _cmd_workload,
        "lint-plan": _cmd_lint_plan,
        "lint-src": _cmd_lint_src,
        "lint-concurrency": _cmd_lint_concurrency,
        "verify": _cmd_verify,
        "xmlgen": _cmd_xmlgen,
    }
    try:
        return commands[args.command](args, out)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=err)
        return 1
    except XQueCError as exc:
        print(f"error: {exc}", file=err)
        return 1


def _cmd_compress(args, out) -> int:
    xml_text = args.input.read_text(encoding="utf-8")
    if args.workload is not None:
        queries = [line.strip() for line in
                   args.workload.read_text(encoding="utf-8").splitlines()
                   if line.strip()]
        system = XQueCSystem.load(xml_text, workload_queries=queries)
        repository = system.repository
        print(f"workload: {len(queries)} queries, "
              f"{len(system.configuration.groups)} container groups",
              file=out)
    else:
        repository = load_document(xml_text)
    save_repository(repository, args.output)
    report = repository.size_report()
    print(f"compressed {report.original} -> {report.total} bytes "
          f"(CF {report.compression_factor:.3f})", file=out)
    return 0


def _cmd_query(args, out) -> int:
    repository = load_repository(args.repository)
    # One session — and therefore one recorder with one journal
    # handle — per CLI invocation, however many runs it performs.
    session = Session(repository, recorder=_recorder_for(args),
                      batch_size=args.batch_size)
    if args.analyze:
        from repro.errors import PlanVerificationError
        options = ExecutionOptions(profile=True) if args.profile \
            else None
        try:
            report = session.analyze(args.xquery, options)
        except PlanVerificationError as exc:
            # Surface what the verifier found instead of masking the
            # failure behind a bare error line — and exit non-zero.
            print("# EXPLAIN ANALYZE aborted: plan verification "
                  "failed", file=out)
            for diagnostic in exc.diagnostics:
                print(f"# {diagnostic.format()}", file=out)
            return 1
        for line in report.text.splitlines():
            print(f"# {line}" if line else "#", file=out)
        print(report.result.to_xml(), file=out)
        return 1 if any(d.severity == "error"
                        for d in report.telemetry.diagnostics) else 0
    if args.explain:
        print("# plan:", file=out)
        for line in session.explain(args.xquery).splitlines():
            print(f"#   {line}", file=out)
    result = session.execute(args.xquery)
    print(result.to_xml(), file=out)
    if args.stats:
        stats = result.stats
        print(f"# compressed comparisons: "
              f"{stats.compressed_comparisons}", file=out)
        print(f"# decompressions:         {stats.decompressions}",
              file=out)
        print(f"# summary accesses:       {stats.summary_accesses}",
              file=out)
        print(f"# container accesses:     {stats.container_accesses}",
              file=out)
        print(f"# hash joins:             {stats.hash_joins}",
              file=out)
    return 0


def _recorder_for(args):
    """A WorkloadRecorder when ``--record`` was given, else None."""
    if not getattr(args, "record", False):
        return None
    from repro.obs import WorkloadJournal, WorkloadRecorder
    from repro.obs.journal import default_journal_path
    journal = args.journal if args.journal is not None \
        else default_journal_path(args.repository)
    return WorkloadRecorder(WorkloadJournal(journal))


def _cmd_profile(args, out) -> int:
    import json

    from repro.obs.profiler import (
        DEFAULT_HZ,
        ProfileOptions,
        SpanProfiler,
    )

    repository = load_repository(args.repository)
    session = Session(repository)
    profile_options = ProfileOptions(
        hz=args.hz if args.hz is not None else DEFAULT_HZ,
        trace_allocations=args.tracemalloc)
    # One shared telemetry + one profiler attach across every repeat:
    # short queries only collect enough samples when the sampler does
    # not restart per run, and materialization (the final Decompress)
    # happens inside the profiled window.
    telemetry = Telemetry(enabled=True)
    profiler = SpanProfiler(profile_options)
    options = ExecutionOptions(telemetry=telemetry)
    with runtime.activated(telemetry):
        with profiler.attach(telemetry.tracer):
            for _ in range(max(args.repeat, 1)):
                result = session.execute(args.xquery, options)
                result.items
    profile = profiler.profile
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2,
                         sort_keys=True), file=out)
    else:
        print(profile.render_text(top=args.top), file=out)
    if args.flamegraph is not None:
        profile.write_folded(args.flamegraph)
        print(f"wrote {len(profile.folded)} folded stacks to "
              f"{args.flamegraph}", file=out)
    return 0


def _cmd_perf(args, out) -> int:
    import json

    from repro.service.slo import LatencyObjective, render_slo_report

    queries = list(args.query or [])
    if args.queries_file is not None:
        queries.extend(
            line.strip() for line in
            args.queries_file.read_text(encoding="utf-8").splitlines()
            if line.strip())
    if not queries:
        print("error: perf report needs --query or --queries-file",
              file=out)
        return 1
    try:
        objectives = [LatencyObjective.parse(spec)
                      for spec in args.slo or []]
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 1
    repository = load_repository(args.repository)
    session = Session(repository)
    for _ in range(max(args.repeat, 1)):
        for result in session.execute_many(queries,
                                           max_workers=args.workers):
            len(result.items)
    report = session.slo_report(objectives)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print(render_slo_report(report), file=out)
    return 1 if any(not check["ok"]
                    for check in report["objectives"]) else 0


def _cmd_top(args, out) -> int:
    from repro.service.top import build_source, run_top

    queries = list(args.query or [])
    if args.queries_file is not None:
        queries.extend(
            line.strip() for line in
            args.queries_file.read_text(encoding="utf-8").splitlines()
            if line.strip())
    try:
        source = build_source(args.target, queries=queries,
                              workers=args.workers,
                              slow_threshold_ms=args.slow_ms)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 1
    return run_top(source, out, interval=args.interval,
                   once=args.once)


def _read_query_mix(args, out):
    """The query list for serve/loadgen (None + message when empty)."""
    queries = list(getattr(args, "query", None) or [])
    if args.queries_file is not None:
        queries.extend(
            line.strip() for line in
            args.queries_file.read_text(encoding="utf-8").splitlines()
            if line.strip())
    if getattr(args, "xmark", False):
        from repro.xmark.queries import XMARK_QUERIES, query_text
        queries.extend(query_text(qid) for qid in XMARK_QUERIES)
    return queries


def _cmd_serve(args, out) -> int:
    import signal as signal_module

    from repro.service.shards import (
        AdmissionController,
        ShardedDatabase,
    )

    repository = load_repository(args.repository)
    queries = _read_query_mix(args, out)
    admission = AdmissionController(max_inflight=args.max_inflight,
                                    per_client=args.per_client)
    database = ShardedDatabase(repository, shard_count=args.shards,
                               queries=queries, admission=admission)
    for shard in database.assignment.to_dict()["shards"]:
        print(f"shard {shard['shard']}: "
              f"{', '.join(shard['subtrees']) or '(hash overflow)'} "
              f"(weight {shard['weight']})", file=out)
    stop = _SERVE_STOP
    stop.clear()

    def _on_signal(signum, frame):  # noqa: ARG001
        stop.set()

    signal_module.signal(signal_module.SIGTERM, _on_signal)
    signal_module.signal(signal_module.SIGINT, _on_signal)
    with database:
        server = database.serve_telemetry(port=args.port,
                                          host=args.host)
        print(f"serving {args.shards} shards; telemetry on "
              f"http://{args.host}:{server.port}/metrics "
              f"(SIGINT/SIGTERM stops)", file=out, flush=True)
        while not stop.wait(1.0):
            database.gather_metrics()
    print("stopped", file=out)
    return 0


def _cmd_loadgen(args, out) -> int:
    import json

    from repro.bench.loadgen import run_loadgen
    from repro.service.shards import (
        AdmissionController,
        ShardedDatabase,
    )

    queries = _read_query_mix(args, out)
    if not queries:
        print("error: loadgen needs --query, --queries-file or "
              "--xmark", file=out)
        return 1
    repository = load_repository(args.repository)
    admission = AdmissionController(max_inflight=args.max_inflight,
                                    per_client=args.per_client)
    with ShardedDatabase(repository, shard_count=args.shards,
                         queries=queries,
                         admission=admission) as database:
        report = run_loadgen(database, queries, rounds=args.rounds,
                             clients=args.clients,
                             trajectory_path=args.trajectory,
                             record=not args.no_record)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(f"completed {report.completed} queries "
              f"({report.errors} errors, {report.shed} shed) in "
              f"{report.wall_s:.2f}s — {report.qps:.1f} QPS", file=out)
        print(f"latency p50 {report.p50_ms:.2f} ms, "
              f"p99 {report.p99_ms:.2f} ms", file=out)
        print(f"cross-shard queries: {report.cross_shard_queries}",
              file=out)
        ratio = report.shipped_bytes_ratio
        print(f"shipped bytes: {report.wire_bytes} wire / "
              f"{report.plain_bytes} plain "
              f"(ratio {ratio:.3f})" if ratio is not None else
              "shipped bytes: none recorded", file=out)
        for shard, routed in sorted(report.routed_by_shard.items()):
            print(f"shard {shard}: {routed} queries routed", file=out)
    return 1 if report.errors else 0


def _cmd_bench(args, out) -> int:
    if args.bench_command == "compare":
        from repro.bench.compare import run_compare
        return run_compare(args, out=out)
    if args.bench_command == "batch":
        from repro.bench.batchbench import run_batchbench
        return run_batchbench(args, out=out)
    raise AssertionError(args.bench_command)  # pragma: no cover


def _cmd_workload(args, out) -> int:
    import json

    from repro.advisor import analyze_drift, render_report
    from repro.obs import WorkloadJournal
    from repro.obs.journal import default_journal_path

    repository = load_repository(args.repository)
    journal_path = args.journal if args.journal is not None \
        else default_journal_path(args.repository)
    journal = WorkloadJournal(journal_path)
    records = journal.records(since=args.since)
    report = analyze_drift(repository, records)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(f"journal: {journal_path}", file=out)
        print(render_report(report, top_k=args.top_k), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    repository = load_repository(args.repository)
    session = Session(repository)
    telemetry = Telemetry(enabled=True)
    with runtime.activated(telemetry):
        with telemetry.span("Query", query=args.xquery):
            result = session.execute(
                args.xquery, ExecutionOptions(telemetry=telemetry))
            result.items  # force the final Decompress step
    text = telemetry.to_json(indent=args.indent or None)
    if args.output is not None:
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"wrote telemetry to {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_stats(args, out) -> int:
    repository = load_repository(args.repository)
    report = repository.size_report()
    rows = [
        ("name dictionary", report.name_dictionary),
        ("structure records", report.structure_records),
        ("B+ index", report.structure_index),
        ("container data", report.container_data),
        ("source models", report.source_models),
        ("structure summary", report.summary),
        ("total", report.total),
        ("original document", report.original),
    ]
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name.ljust(width)}  {value:>12}", file=out)
    print(f"{'compression factor'.ljust(width)}  "
          f"{report.compression_factor:>12.3f}", file=out)
    print(f"{'containers'.ljust(width)}  "
          f"{len(repository.containers()):>12}", file=out)
    print(f"{'nodes'.ljust(width)}  "
          f"{len(repository.structure):>12}", file=out)
    _print_container_table(repository, out)
    return 0


def _print_container_table(repository, out) -> None:
    """Per-container codec/size table plus per-codec decode totals.

    Sizing a container's plain text decodes every value, so the scan
    runs under an active telemetry; the codec totals printed afterwards
    come from the registry those decodes populated.
    """
    telemetry = Telemetry(enabled=True)
    table = []
    with runtime.activated(telemetry):
        for container in repository.containers():
            compressed = container.data_size_bytes()
            plain = container.uncompressed_size_bytes()
            ratio = f"{compressed / plain:.3f}" if plain else "n/a"
            table.append((container.path, container.codec.name,
                          str(len(container)), str(compressed),
                          str(plain), ratio))
    headers = ("container", "codec", "records", "compressed_B",
               "plain_B", "ratio")
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(file=out)
    print("-- containers --", file=out)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)),
          file=out)
    for row in table:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)),
              file=out)
    counters = telemetry.metrics.counters()
    codec_names = sorted({name.split(".")[1] for name in counters
                          if name.startswith("codec.")})
    if codec_names:
        print(file=out)
        print("-- codec totals (from registry) --", file=out)
        for codec in codec_names:
            calls = counters.get(f"codec.{codec}.decode.calls", 0)
            packed = counters.get(
                f"codec.{codec}.decode.compressed_bytes", 0)
            plain = counters.get(f"codec.{codec}.decode.plain_chars", 0)
            print(f"{codec}: {calls} decodes, {packed} B compressed "
                  f"-> {plain} chars", file=out)


def _cmd_decompress(args, out) -> int:
    repository = load_repository(args.repository)
    text = Session(repository).decompress()
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
    else:
        print(text, file=out)
    return 0


def _cmd_lint_plan(args, out) -> int:
    import json

    repository = load_repository(args.repository)
    engine = QueryEngine(repository)
    diagnostics = engine.verify(args.xquery)
    if args.json:
        print(json.dumps({
            "query": args.xquery,
            "diagnostics": [d.to_dict() for d in diagnostics],
        }, indent=2, sort_keys=True), file=out)
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format(), file=out)
        errors = sum(d.severity == "error" for d in diagnostics)
        print(f"{len(diagnostics)} diagnostic(s), {errors} error(s)",
              file=out)
    return 1 if any(d.severity == "error" for d in diagnostics) else 0


def _cmd_lint_src(args, out) -> int:
    import json

    from repro.lint import lint_paths

    paths = list(args.paths)
    if not paths:
        import repro
        paths = [Path(repro.__file__).parent]
    diagnostics = lint_paths(paths)
    if args.json:
        print(json.dumps({
            "paths": [str(p) for p in paths],
            "diagnostics": [d.to_dict() for d in diagnostics],
        }, indent=2, sort_keys=True), file=out)
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format(), file=out)
        print(f"{len(diagnostics)} diagnostic(s) in "
              f"{len(paths)} path(s)", file=out)
    return 1 if diagnostics else 0


def _cmd_lint_concurrency(args, out) -> int:
    import json

    from repro.lint.concurrency import lint_concurrency

    paths = list(args.paths)
    if not paths:
        import repro
        paths = [Path(repro.__file__).parent]
    report = lint_concurrency(paths)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.format(), file=out)
        locks = sum(p.kind in ("Lock", "RLock")
                    for p in report.primitives)
        print(f"{len(report.diagnostics)} diagnostic(s); "
              f"{len(report.primitives)} primitive(s) "
              f"({locks} locks), "
              f"{len(report.edges)} acquisition edge(s)", file=out)
    return 0 if report.ok else 1


def _cmd_verify(args, out) -> int:
    from repro.verify import run_verify, write_corpus

    def progress(stage: str, done: int, total: int) -> None:
        if stage == "codec":
            print("verify: codec oracle done", file=out, flush=True)
        elif done == total or done % 5 == 0:
            print(f"verify: engine oracle {done}/{total} documents",
                  file=out, flush=True)

    report = run_verify(seed=args.seed, docs=args.docs,
                        queries=args.queries,
                        codec_rounds=args.rounds,
                        codec_values=args.values, scale=args.scale,
                        batch_size=args.batch_size,
                        progress=None if args.json else progress)
    if args.json:
        print(report.to_json(), file=out)
    else:
        print(report.render_text(), file=out)
    if not report.ok and args.corpus_dir is not None:
        written = write_corpus(report, args.corpus_dir)
        print(f"wrote {len(written)} corpus file(s) to "
              f"{args.corpus_dir}", file=out)
    return 0 if report.ok else 1


def _cmd_xmlgen(args, out) -> int:
    text = generate_xmark(factor=args.factor, seed=args.seed)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {len(text)} chars to {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""XPRESS reimplementation [Min, Park & Chung, SIGMOD 2003].

XPRESS's two ideas, per the paper's §1.2:

* **reverse arithmetic encoding** of paths: every distinct tag owns a
  sub-interval of [0.0, 1.0) sized by its frequency; the interval of a
  path ``/a/b/c`` is computed by narrowing ``c``'s interval by ``b``,
  then by ``a`` — *reverse* (leaf-first) order.  An element matches the
  path query ``//b/c`` exactly when its interval is contained in the
  interval computed for suffix ``b/c``, so simple-path matching —
  including ``descendant-or-self`` — is one containment test per
  element, with no automaton;
* **type inference** per path: numeric containers binary-encoded,
  string containers Huffman-encoded per path.

Like XGrind it is homomorphic and evaluates queries by a fixed top-down
scan of the whole stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.compression.base import CompressedValue
from repro.compression.huffman import HuffmanCodec
from repro.errors import UnsupportedFeatureError
from repro.xmlio.events import (
    Characters,
    EndElement,
    StartElement,
    iter_events,
)


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open sub-interval of [0, 1)."""

    low: float
    high: float

    def contains(self, other: "Interval") -> bool:
        return self.low <= other.low and other.high <= self.high

    def narrow(self, outer: "Interval") -> "Interval":
        """Refine this interval within ``outer`` (one reverse step)."""
        span = self.high - self.low
        return Interval(self.low + span * outer.low,
                        self.low + span * outer.high)


def tag_intervals(frequencies: dict[str, int]) -> dict[str, Interval]:
    """Partition [0, 1) among tags proportionally to frequency."""
    total = sum(frequencies.values())
    intervals: dict[str, Interval] = {}
    low = 0.0
    for tag in sorted(frequencies):
        share = frequencies[tag] / total
        intervals[tag] = Interval(low, low + share)
        low += share
    return intervals


def path_interval(steps: list[str],
                  intervals: dict[str, Interval]) -> Interval | None:
    """Reverse arithmetic encoding of a rooted or relative path.

    ``steps`` lists tags from ancestor to the element itself; the
    element's own tag seeds the interval and each ancestor narrows it.
    """
    if not steps or steps[-1] not in intervals:
        return None
    interval = intervals[steps[-1]]
    for tag in reversed(steps[:-1]):
        outer = intervals.get(tag)
        if outer is None:
            return None
        interval = interval.narrow(outer)
    return interval


@dataclass(frozen=True, slots=True)
class _Entry:
    kind: str                          # "elem" | "attr" | "text"
    interval: Interval
    value: CompressedValue | None = None
    numeric: float | None = None
    codec_key: str = ""


class XPressDocument:
    """A compressed document under reverse arithmetic path encoding."""

    def __init__(self, entries: list[_Entry],
                 intervals: dict[str, Interval],
                 codecs: dict[str, HuffmanCodec],
                 end_markers: int, original_size: int):
        self._entries = entries
        self._intervals = intervals
        self._codecs = codecs
        self._end_markers = end_markers
        self.original_size = original_size

    @classmethod
    def compress(cls, xml_text: str) -> "XPressDocument":
        # Pass 1: tag frequencies and per-path value collections.
        frequencies: Counter = Counter()
        values_by_path: dict[str, list[str]] = {}
        path: list[str] = []
        for event in iter_events(xml_text):
            if isinstance(event, StartElement):
                frequencies[event.name] += 1
                path.append(event.name)
                for attr_name, attr_value in event.attributes:
                    frequencies["@" + attr_name] += 1
                    key = "/".join(path) + "/@" + attr_name
                    values_by_path.setdefault(key, []).append(attr_value)
            elif isinstance(event, EndElement):
                path.pop()
            elif isinstance(event, Characters):
                key = "/".join(path) + "/#text"
                values_by_path.setdefault(key, []).append(event.text)
        intervals = tag_intervals(dict(frequencies))
        codecs: dict[str, HuffmanCodec] = {}
        numeric_paths: set[str] = set()
        for key, values in values_by_path.items():
            if all(_is_number(v) for v in values):
                numeric_paths.add(key)  # type inference: binary floats
            else:
                codecs[key] = HuffmanCodec.train(values)
        # Pass 2: emit interval-tagged entries.
        entries: list[_Entry] = []
        end_markers = 0
        path = []
        for event in iter_events(xml_text):
            if isinstance(event, StartElement):
                path.append(event.name)
                element_interval = path_interval(path, intervals)
                assert element_interval is not None
                entries.append(_Entry("elem", element_interval))
                for attr_name, attr_value in event.attributes:
                    key = "/".join(path) + "/@" + attr_name
                    interval = path_interval(path + ["@" + attr_name],
                                             intervals)
                    assert interval is not None
                    entries.append(cls._value_entry(
                        "attr", interval, key, attr_value, codecs,
                        numeric_paths))
            elif isinstance(event, EndElement):
                end_markers += 1
                path.pop()
            elif isinstance(event, Characters):
                key = "/".join(path) + "/#text"
                interval = path_interval(path, intervals)
                assert interval is not None
                entries.append(cls._value_entry(
                    "text", interval, key, event.text, codecs,
                    numeric_paths))
        return cls(entries, intervals, codecs, end_markers,
                   len(xml_text.encode("utf-8")))

    @staticmethod
    def _value_entry(kind: str, interval: Interval, key: str,
                     value: str, codecs: dict[str, HuffmanCodec],
                     numeric_paths: set[str]) -> _Entry:
        if key in numeric_paths:
            return _Entry(kind, interval, numeric=float(value),
                          codec_key=key)
        return _Entry(kind, interval, value=codecs[key].encode(value),
                      codec_key=key)

    # -- accounting ----------------------------------------------------------------

    @property
    def compressed_size(self) -> int:
        """Interval-coded structure + typed values + source models.

        An element is one quantized interval point (2 bytes — XPRESS
        encodes the interval minimum within the parent's interval, so
        limited precision suffices); subtree lengths replace end tags;
        inferred-numeric values are 4-byte binaries, strings are
        Huffman codes with a small header.
        """
        size = 0
        for entry in self._entries:
            if entry.kind == "elem":
                size += 2
            if entry.numeric is not None:
                size += 4 + 1
            elif entry.value is not None:
                size += entry.value.nbytes + 2
        size += sum(len(t.encode("utf-8")) + 5 for t in self._intervals)
        size += sum(c.model_size_bytes() for c in self._codecs.values())
        return size

    @property
    def compression_factor(self) -> float:
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.compressed_size / self.original_size

    # -- querying --------------------------------------------------------------------

    def match_path(self, path: str) -> int:
        """Count elements matched by a simple path via containment.

        ``path`` may start with ``//`` (suffix match anywhere) or ``/``
        (rooted); steps are plain tags.  One interval containment test
        per element — the XPRESS evaluation model.
        """
        steps = [s for s in path.split("/") if s]
        if not steps:
            raise UnsupportedFeatureError("empty path")
        query_interval = path_interval(steps, self._intervals)
        if query_interval is None:
            return 0
        return sum(1 for entry in self._entries
                   if entry.kind == "elem"
                   and query_interval.contains(entry.interval))

    def values_equal(self, path: str, constant: str) -> int:
        """Equality selection in the compressed domain along a path."""
        steps = [s for s in path.split("/") if s]
        target = steps[-1]
        attr = target.startswith("@")
        prefix_interval = path_interval(
            steps if attr else steps, self._intervals)
        if prefix_interval is None:
            return 0
        count = 0
        for entry in self._entries:
            if attr and entry.kind != "attr":
                continue
            if not attr and entry.kind != "text":
                continue
            if not prefix_interval.contains(entry.interval):
                continue
            if entry.numeric is not None:
                if _is_number(constant) and \
                        entry.numeric == float(constant):
                    count += 1
            else:
                codec = self._codecs[entry.codec_key]
                encoded = codec.try_encode(constant)
                if encoded is not None and entry.value == encoded:
                    count += 1
        return count

    def unsupported(self, feature: str) -> None:
        """XPRESS covers a limited XPath fragment (paper §5)."""
        raise UnsupportedFeatureError(
            f"XPRESS does not support {feature}")


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True

"""A stand-in for the optimized Galax XQuery engine [10].

The paper's Figure 7 compares XQueC's query times against Galax over
*uncompressed* documents.  This engine reproduces Galax's relevant
behaviour for that comparison:

* it evaluates the same query subset, over a plain in-memory DOM;
* evaluation is semantically equivalent to our engine but strategically
  *naive* — absolute paths walk the tree from the root, ``for`` sources
  are re-evaluated per binding, and joins are nested loops (no hash
  indexes, no caching).

That is exactly the profile the paper reports: competitive on simple
lookups, quadratic blow-up on the join queries Q8/Q9 (126 s /
unmeasurable vs XQueC's ~2 s).
"""

from __future__ import annotations

from repro.errors import QueryError, QueryTypeError
from repro.query.ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Logical,
    NumberLiteral,
    PathExpr,
    SequenceExpr,
    Step,
    StringLiteral,
    TextLiteral,
    VarRef,
)
from repro.query.parser import parse_query
from repro.xmlio.dom import Document, Element, Text, parse
from repro.xmlio.writer import serialize


class GalaxEngine:
    """Naive DOM XQuery evaluator with the paper-relevant profile."""

    def __init__(self, xml_text: str,
                 collection: dict[str, str] | None = None):
        self.document: Document = parse(xml_text)
        self.collection: dict[str, Document] = {
            name: parse(text)
            for name, text in (collection or {}).items()}

    def execute(self, query: str | Expression) -> list:
        """Evaluate; returns a list of str/float/bool/Element items."""
        ast = parse_query(query) if isinstance(query, str) else query
        return _eval(ast, {}, self)

    def execute_to_xml(self, query: str | Expression) -> str:
        """Evaluate and serialize the result sequence."""
        parts = []
        for item in self.execute(query):
            if isinstance(item, Element):
                parts.append(serialize(item))
            elif isinstance(item, float):
                parts.append(_format_number(item))
            else:
                parts.append(str(item))
        return "\n".join(parts)


def _eval(expr: Expression, env: dict, document) -> list:
    if isinstance(expr, StringLiteral):
        return [expr.value]
    if isinstance(expr, NumberLiteral):
        return [expr.value]
    if isinstance(expr, TextLiteral):
        return [expr.value]
    if isinstance(expr, VarRef):
        try:
            return env[expr.name]
        except KeyError:
            raise QueryError(f"unbound variable ${expr.name}") from None
    if isinstance(expr, ContextItem):
        return [env["."]]
    if isinstance(expr, SequenceExpr):
        out: list = []
        for item in expr.items:
            out.extend(_eval(item, env, document))
        return out
    if isinstance(expr, Logical):
        left = _boolean(_eval(expr.left, env, document))
        if expr.op == "and":
            return [left and _boolean(_eval(expr.right, env, document))]
        return [left or _boolean(_eval(expr.right, env, document))]
    if isinstance(expr, Comparison):
        return [_compare(expr, env, document)]
    if isinstance(expr, Arithmetic):
        return _arithmetic(expr, env, document)
    if isinstance(expr, FunctionCall):
        return _function(expr, env, document)
    if isinstance(expr, FLWOR):
        if not expr.order:
            results: list = []
            _flwor(expr, 0, env, document,
                   lambda bound_env: results.extend(
                       _eval(expr.result, bound_env, document)))
            return results
        keyed: list[tuple[tuple, list]] = []

        def ordered_sink(bound_env: dict) -> None:
            keys = tuple(_order_key(spec.key, bound_env, document)
                         for spec in expr.order)
            keyed.append((keys,
                          _eval(expr.result, bound_env, document)))

        _flwor(expr, 0, env, document, ordered_sink)
        for position in range(len(expr.order) - 1, -1, -1):
            keyed.sort(key=lambda pair, p=position: pair[0][p],
                       reverse=expr.order[position].descending)
        ordered: list = []
        for _, items in keyed:
            ordered.extend(items)
        return ordered
    if isinstance(expr, PathExpr):
        return _path(expr, env, document)
    if isinstance(expr, ElementConstructor):
        return [_construct(expr, env, document)]
    raise QueryError(f"cannot evaluate {type(expr).__name__}")


def _flwor(expr: FLWOR, index: int, env: dict, document,
           sink) -> None:
    # Deliberately naive: where is checked only once every clause is
    # bound, and every source is re-evaluated per enclosing binding.
    if index == len(expr.clauses):
        if expr.where is not None and \
                not _boolean(_eval(expr.where, env, document)):
            return
        sink(env)
        return
    clause = expr.clauses[index]
    if isinstance(clause, LetClause):
        child_env = dict(env)
        child_env[clause.var] = _eval(clause.source, env, document)
        _flwor(expr, index + 1, child_env, document, sink)
        return
    assert isinstance(clause, ForClause)
    for item in _eval(clause.source, env, document):
        child_env = dict(env)
        child_env[clause.var] = [item]
        _flwor(expr, index + 1, child_env, document, sink)


def _order_key(key_expr: Expression, env: dict,
               document) -> tuple:
    """Sort key with the same total order as the XQueC engine."""
    sequence = _eval(key_expr, env, document)
    if not sequence:
        return (-1, 0.0, "")
    atom = _atomize(sequence[0])
    try:
        return (0, _number(atom), "")
    except (ValueError, TypeError, QueryError):
        return (1, 0.0, _string(atom))


def _path(expr: PathExpr, env: dict, document) -> list:
    if expr.start is None:
        target = document.document
        if expr.document is not None:
            target = document.collection.get(expr.document, target)
        root = target.root
        context: list = [root]
        steps = list(expr.steps)
        if steps and steps[0].axis == "child":
            first = steps.pop(0)
            if first.test not in ("*", root.name):
                context = []
            context = _filter_predicates(context, first.predicates, env,
                                         document)
        elif steps and steps[0].axis == "descendant":
            first = steps.pop(0)
            name = None if first.test == "*" else first.test
            context = []
            if first.test in ("*", root.name):
                context.append(root)
            context.extend(root.descendants(name))
            context = _filter_predicates(context, first.predicates, env,
                                         document)
    else:
        context = _eval(expr.start, env, document)
        steps = list(expr.steps)
    for step in steps:
        context = _apply_step(context, step, env, document)
    return context


def _apply_step(context: list, step: Step, env: dict,
                document) -> list:
    output: list = []
    for item in context:
        if not isinstance(item, Element):
            continue
        if step.axis == "attribute":
            value = item.attribute(step.test)
            if value is not None:
                output.append(value)
        elif step.test == "text()":
            if step.axis == "descendant":
                for element in [item, *item.descendants()]:
                    output.extend(c.value for c in element.children
                                  if isinstance(c, Text))
            else:
                output.extend(c.value for c in item.children
                              if isinstance(c, Text))
        elif step.axis == "child":
            output.extend(item.child_elements(
                None if step.test == "*" else step.test))
        else:
            output.extend(item.descendants(
                None if step.test == "*" else step.test))
    return _filter_predicates(output, step.predicates, env, document)


def _filter_predicates(items: list, predicates, env: dict,
                       document) -> list:
    for predicate in predicates:
        if isinstance(predicate, NumberLiteral):
            position = int(predicate.value)
            items = ([items[position - 1]]
                     if 1 <= position <= len(items) else [])
            continue
        kept = []
        for item in items:
            child_env = dict(env)
            child_env["."] = item
            if _boolean(_eval(predicate, child_env, document)):
                kept.append(item)
        items = kept
    return items


def _construct(expr: ElementConstructor, env: dict,
               document) -> Element:
    element = Element(expr.name)
    for name, parts in expr.attributes:
        rendered = []
        for part in parts:
            if isinstance(part, TextLiteral):
                rendered.append(part.value)
            else:
                rendered.append(" ".join(
                    _string(i) for i in _eval(part, env, document)))
        element.set_attribute(name, "".join(rendered))
    for content in expr.content:
        if isinstance(content, TextLiteral):
            element.append(Text(content.value))
            continue
        for item in _eval(content, env, document):
            if isinstance(item, Element):
                element.append(_clone(item))
            else:
                element.append(Text(_string(item)))
    return element


def _clone(element: Element) -> Element:
    copy = Element(element.name)
    for attr in element.attributes:
        copy.set_attribute(attr.name, attr.value)
    for child in element.children:
        if isinstance(child, Element):
            copy.append(_clone(child))
        elif isinstance(child, Text):
            copy.append(Text(child.value))
    return copy


def _compare(expr: Comparison, env: dict, document) -> bool:
    left = [_atomize(i) for i in _eval(expr.left, env, document)]
    right = [_atomize(i) for i in _eval(expr.right, env, document)]
    for lv in left:
        for rv in right:
            if _compare_values(expr.op, lv, rv):
                return True
    return False


def _compare_values(op: str, lv, rv) -> bool:
    if isinstance(lv, float) or isinstance(rv, float):
        try:
            lv = float(lv)
            rv = float(rv)
        except (TypeError, ValueError):
            return op == "!="
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    return lv >= rv


def _arithmetic(expr: Arithmetic, env: dict, document) -> list:
    left = _eval(expr.left, env, document)
    right = _eval(expr.right, env, document)
    if not left or not right:
        return []
    a = _number(_atomize(left[0]))
    b = _number(_atomize(right[0]))
    if expr.op == "+":
        return [a + b]
    if expr.op == "-":
        return [a - b]
    if expr.op == "*":
        return [a * b]
    if b == 0.0:
        raise QueryTypeError(f"division by zero in {expr.op}")
    return [a / b if expr.op == "div" else a % b]


def _function(expr: FunctionCall, env: dict, document) -> list:
    args = [[_atomize(i) for i in _eval(arg, env, document)]
            for arg in expr.args]
    name = expr.name
    if name == "count":
        return [float(len(args[0]))]
    if name == "empty":
        return [not args[0]]
    if name == "not":
        return [not _boolean(args[0])]
    if name == "contains":
        hay = _string(args[0][0]) if args[0] else ""
        needle = _string(args[1][0]) if args[1] else ""
        return [needle in hay]
    if name == "starts-with":
        hay = _string(args[0][0]) if args[0] else ""
        prefix = _string(args[1][0]) if args[1] else ""
        return [hay.startswith(prefix)]
    if name == "word-contains":
        from repro.query.fulltext import tokenize
        needle = _string(args[1][0]) if args[1] else ""
        wanted = tokenize(needle)
        if not wanted:
            return [False]
        for item in args[0]:
            words = set(tokenize(_string(item)))
            if all(w in words for w in wanted):
                return [True]
        return [False]
    if name == "sum":
        return [sum(_number(i) for i in args[0])]
    if name == "avg":
        if not args[0]:
            return []
        values = [_number(i) for i in args[0]]
        return [sum(values) / len(values)]
    if name == "min":
        return [min(_number(i) for i in args[0])] if args[0] else []
    if name == "max":
        return [max(_number(i) for i in args[0])] if args[0] else []
    if name == "number":
        return [_number(args[0][0])] if args[0] else []
    if name == "string":
        return [_string(args[0][0]) if args[0] else ""]
    if name == "string-length":
        return [float(len(_string(args[0][0])))] if args[0] else [0.0]
    if name == "zero-or-one":
        return list(args[0][:1])
    if name == "data":
        return list(args[0])
    if name == "distinct-values":
        seen: set = set()
        out = []
        for item in args[0]:
            if item not in seen:
                seen.add(item)
                out.append(item)
        return out
    raise QueryError(f"unknown function {name}()")


def _atomize(item):
    if isinstance(item, Element):
        return item.text()
    return item


def _boolean(sequence: list) -> bool:
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, Element):
        return True
    if isinstance(first, bool):
        return first
    if isinstance(first, float):
        return first != 0.0
    if isinstance(first, str):
        return bool(first)
    return True


def _string(item) -> str:
    if isinstance(item, Element):
        return item.text()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return _format_number(item)
    return str(item)


def _number(item) -> float:
    try:
        if isinstance(item, Element):
            return float(item.text())
        if isinstance(item, bool):
            return 1.0 if item else 0.0
        return float(item)
    except ValueError as exc:
        raise QueryTypeError(f"cannot convert to a number: {exc}") \
            from exc


def _format_number(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "INF"
    if value == float("-inf"):
        return "-INF"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)

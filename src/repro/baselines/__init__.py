"""Comparator systems reimplemented from their published algorithms.

* :mod:`repro.baselines.xmill` — XMill [7]: path-grouped containers
  compressed as opaque chunks; best compression, no querying.
* :mod:`repro.baselines.xgrind` — XGrind [4]: homomorphic Huffman
  compression; top-down SAX-style path queries only.
* :mod:`repro.baselines.xpress` — XPRESS [5]: reverse arithmetic
  path-interval encoding + type-inferred value compression;
  homomorphic, top-down evaluation.
* :mod:`repro.baselines.galax` — stand-in for the optimized Galax [10]:
  a deliberately naive in-memory XQuery evaluator over uncompressed
  DOM (nested-loop joins, no caching) — the paper's QET comparator.
"""

from repro.baselines.galax import GalaxEngine
from repro.baselines.xgrind import XGrindDocument
from repro.baselines.xmill import XMillArchive
from repro.baselines.xpress import XPressDocument

__all__ = ["GalaxEngine", "XGrindDocument", "XMillArchive",
           "XPressDocument"]

"""XMill reimplementation [Liefke & Suciu, SIGMOD 2000].

XMill's strategy, as the paper describes it (§1, §1.2): group the data
values of each root-to-leaf path into a container, coalesce every
container into one chunk, compress each chunk with a general-purpose
compressor, compress the tag structure separately — and gain the best
compression factors of the field, at the price of *opacity*: to read a
single value, a whole container chunk must be decompressed.

The archive format here round-trips exactly: a structure stream of
(start/end/text) tokens with dictionary-coded tags, plus per-path value
chunks, each zlib-compressed.
"""

from __future__ import annotations

import zlib

from repro.errors import CorruptDataError
from repro.xmlio.escape import escape_attribute, escape_text
from repro.xmlio.events import (
    Characters,
    EndElement,
    StartElement,
    iter_events,
)

_START = 0x01
_END = 0x02
_TEXT = 0x03


class XMillArchive:
    """A compressed document in XMill's container format."""

    def __init__(self, names: list[str], structure: bytes,
                 containers: dict[str, bytes],
                 original_size: int):
        self._names = names
        self._structure = structure
        self._containers = containers
        self.original_size = original_size

    # -- compression ---------------------------------------------------------

    @classmethod
    def compress(cls, xml_text: str, level: int = 6) -> "XMillArchive":
        """Shred and compress one document."""
        names: list[str] = []
        codes: dict[str, int] = {}

        def intern(name: str) -> int:
            code = codes.get(name)
            if code is None:
                code = len(names)
                codes[name] = code
                names.append(name)
            return code

        structure = bytearray()
        containers: dict[str, list[str]] = {}
        path: list[str] = []

        def container_add(step: str, value: str) -> None:
            key = "/" + "/".join(path + [step]) if step else \
                "/" + "/".join(path)
            containers.setdefault(key, []).append(value)

        for event in iter_events(xml_text):
            if isinstance(event, StartElement):
                structure.append(_START)
                structure.extend(_varint(intern(event.name)))
                structure.append(len(event.attributes))
                path.append(event.name)
                for attr_name, attr_value in event.attributes:
                    structure.extend(_varint(intern("@" + attr_name)))
                    container_add("@" + attr_name, attr_value)
            elif isinstance(event, EndElement):
                structure.append(_END)
                path.pop()
            elif isinstance(event, Characters):
                structure.append(_TEXT)
                container_add("#text", event.text)
        compressed_containers = {
            key: zlib.compress(_join_values(values), level)
            for key, values in containers.items()
        }
        return cls(names, zlib.compress(bytes(structure), level),
                   compressed_containers,
                   len(xml_text.encode("utf-8")))

    # -- accounting ------------------------------------------------------------

    @property
    def compressed_size(self) -> int:
        """Total archive bytes: dictionary + structure + containers."""
        dictionary = sum(len(n.encode("utf-8")) + 1 for n in self._names)
        containers = sum(len(c) for c in self._containers.values())
        return dictionary + len(self._structure) + containers

    @property
    def compression_factor(self) -> float:
        """CF = 1 - cs/os."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.compressed_size / self.original_size

    def container_paths(self) -> list[str]:
        """The value-container paths, sorted."""
        return sorted(self._containers)

    # -- decompression -----------------------------------------------------------

    def decompress(self) -> str:
        """Rebuild the full document (the only read XMill offers)."""
        queues = {key: _split_values(zlib.decompress(chunk))
                  for key, chunk in self._containers.items()}
        positions = dict.fromkeys(queues, 0)

        def take(key: str) -> str:
            try:
                value = queues[key][positions[key]]
            except (KeyError, IndexError):
                raise CorruptDataError(
                    f"container {key!r} exhausted") from None
            positions[key] += 1
            return value

        structure = zlib.decompress(self._structure)
        out: list[str] = []
        path: list[str] = []
        open_tag_done: list[bool] = []
        i = 0
        while i < len(structure):
            token = structure[i]
            i += 1
            if token == _START:
                if open_tag_done and not open_tag_done[-1]:
                    out.append(">")
                    open_tag_done[-1] = True
                code, i = _read_varint(structure, i)
                name = self._names[code]
                attr_count = structure[i]
                i += 1
                out.append(f"<{name}")
                path.append(name)
                for _ in range(attr_count):
                    attr_code, i = _read_varint(structure, i)
                    attr_name = self._names[attr_code]
                    key = "/" + "/".join(path) + "/" + attr_name
                    out.append(f' {attr_name[1:]}='
                               f'"{escape_attribute(take(key))}"')
                open_tag_done.append(False)
            elif token == _END:
                name = path.pop()
                if not open_tag_done.pop():
                    out.append("/>")
                else:
                    out.append(f"</{name}>")
            elif token == _TEXT:
                if open_tag_done and not open_tag_done[-1]:
                    out.append(">")
                    open_tag_done[-1] = True
                key = "/" + "/".join(path) + "/#text"
                out.append(escape_text(take(key)))
            else:
                raise CorruptDataError(
                    f"bad structure token {token:#x}")
        return "".join(out)


def _join_values(values: list[str]) -> bytes:
    encoded = [v.encode("utf-8") for v in values]
    return b"\x00".join([str(len(encoded)).encode("ascii"), *encoded])


def _split_values(chunk: bytes) -> list[str]:
    header, _, body = chunk.partition(b"\x00")
    count = int(header)
    if count == 0:
        return []
    return [p.decode("utf-8") for p in body.split(b"\x00")]


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(data: bytes, i: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[i]
        i += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, i
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint too long")

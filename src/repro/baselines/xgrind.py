"""XGrind reimplementation [Tolani & Haritsa, ICDE 2002].

XGrind is *homomorphic*: the compressed document is still a document —
tags dictionary-encoded, each data value Huffman-compressed (one
frequency model per element/attribute name) and left in place.  Its
query processor is "an extended SAX parser" (paper §1.2): a fixed
top-down scan of the whole compressed stream supporting exact-match and
prefix-match predicates on compressed values, and range predicates by
decompressing candidate values on the fly.  Joins, aggregations,
nested queries and constructors are not supported — the limitation
XQueC's algebra removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import CompressedValue
from repro.compression.huffman import HuffmanCodec
from repro.errors import UnsupportedFeatureError
from repro.xmlio.events import (
    Characters,
    EndElement,
    StartElement,
    iter_events,
)

#: stream token kinds (homomorphic order preserved).
_T_START = "s"
_T_END = "e"
_T_ATTR = "a"
_T_TEXT = "t"


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    code: int = -1                     # tag/attribute dictionary code
    value: CompressedValue | None = None


class XGrindDocument:
    """A homomorphically compressed document plus its SAX-style queries."""

    def __init__(self, tokens: list[_Token], names: list[str],
                 codecs: dict[int, HuffmanCodec], original_size: int):
        self._tokens = tokens
        self._names = names
        self._codecs = codecs
        self.original_size = original_size

    @classmethod
    def compress(cls, xml_text: str) -> "XGrindDocument":
        """Two-pass compression: frequency collection, then encoding."""
        names: list[str] = []
        codes: dict[str, int] = {}

        def intern(name: str) -> int:
            code = codes.get(name)
            if code is None:
                code = len(names)
                codes[name] = code
                names.append(name)
            return code

        # Pass 1: group values by their element/attribute name.
        training: dict[int, list[str]] = {}
        element_stack: list[int] = []
        for event in iter_events(xml_text):
            if isinstance(event, StartElement):
                code = intern(event.name)
                element_stack.append(code)
                for attr_name, attr_value in event.attributes:
                    attr_code = intern("@" + attr_name)
                    training.setdefault(attr_code, []).append(attr_value)
            elif isinstance(event, EndElement):
                element_stack.pop()
            elif isinstance(event, Characters):
                training.setdefault(element_stack[-1],
                                    []).append(event.text)
        codecs = {code: HuffmanCodec.train(values)
                  for code, values in training.items()}
        # Pass 2: emit the homomorphic token stream.
        tokens: list[_Token] = []
        element_stack = []
        for event in iter_events(xml_text):
            if isinstance(event, StartElement):
                code = codes[event.name]
                element_stack.append(code)
                tokens.append(_Token(_T_START, code))
                for attr_name, attr_value in event.attributes:
                    attr_code = codes["@" + attr_name]
                    tokens.append(_Token(
                        _T_ATTR, attr_code,
                        codecs[attr_code].encode(attr_value)))
            elif isinstance(event, EndElement):
                element_stack.pop()
                tokens.append(_Token(_T_END))
            elif isinstance(event, Characters):
                code = element_stack[-1]
                tokens.append(_Token(
                    _T_TEXT, code, codecs[code].encode(event.text)))
        return cls(tokens, names,
                   codecs, len(xml_text.encode("utf-8")))

    # -- accounting --------------------------------------------------------------

    @property
    def compressed_size(self) -> int:
        """Stream bytes under XGrind's homomorphic ASCII format.

        XGrind's output is itself a (semi-)textual document: start tags
        become ``T<code>`` tokens (~2 bytes), end tags a one-byte
        marker, attribute names ``A<code>`` tokens, and each value is a
        type-marked, length-delimited Huffman payload (~3 bytes of
        framing).  Source models (one frequency table per element or
        attribute name) ship with the document.
        """
        size = 0
        for token in self._tokens:
            if token.kind == _T_START:
                size += 2
            elif token.kind == _T_END:
                size += 1
            elif token.kind == _T_ATTR:
                size += 2
            if token.value is not None:
                size += token.value.nbytes + 3  # marker + length
        size += sum(len(n.encode("utf-8")) + 1 for n in self._names)
        size += sum(c.model_size_bytes() for c in self._codecs.values())
        return size

    @property
    def compression_factor(self) -> float:
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.compressed_size / self.original_size

    # -- querying (fixed top-down scan) --------------------------------------------

    def query(self, path: str, op: str = "exists",
              constant: str | None = None) -> list[str]:
        """Evaluate a simple path query by scanning the whole stream.

        ``path`` is ``/a/b/c`` or ``/a/b/@x`` (child steps only — the
        naive top-down navigation XGrind implements).  ``op``:
        ``exists``, ``=`` / ``startswith`` (compressed-domain), or
        ``<``, ``<=``, ``>``, ``>=`` (decompresses every candidate).
        Returns the decompressed matching values.
        """
        steps = [s for s in path.split("/") if s]
        if not steps:
            raise UnsupportedFeatureError("empty path")
        if any(s == "*" or s == "" for s in steps):
            raise UnsupportedFeatureError(
                "XGrind supports plain child paths only")
        target_attr = steps[-1].startswith("@")
        element_steps = steps[:-1] if target_attr else steps
        results: list[str] = []
        stack: list[str] = []
        for token in self._tokens:
            if token.kind == _T_START:
                stack.append(self._names[token.code])
            elif token.kind == _T_END:
                stack.pop()
            elif token.kind == _T_ATTR and target_attr:
                if stack == element_steps and \
                        self._names[token.code] == steps[-1]:
                    self._match(token, op, constant, results)
            elif token.kind == _T_TEXT and not target_attr:
                if stack == element_steps:
                    self._match(token, op, constant, results)
        return results

    def _match(self, token: _Token, op: str, constant: str | None,
               results: list[str]) -> None:
        codec = self._codecs[token.code]
        assert token.value is not None
        if op == "exists":
            results.append(codec.decode(token.value))
            return
        if constant is None:
            raise UnsupportedFeatureError(f"{op} needs a constant")
        if op == "=":
            encoded = codec.try_encode(constant)
            if encoded is not None and token.value == encoded:
                results.append(constant)
            return
        if op == "startswith":
            encoded = codec.try_encode(constant)
            if encoded is not None and \
                    token.value.starts_with(encoded):
                results.append(codec.decode(token.value))
            return
        if op in ("<", "<=", ">", ">="):
            # Range predicates run on *decompressed* values (paper §1.2).
            value = codec.decode(token.value)
            if _ordered(op, value, constant):
                results.append(value)
            return
        raise UnsupportedFeatureError(
            f"XGrind cannot evaluate {op!r} (joins, aggregates and "
            f"nested queries are unsupported)")

    def unsupported(self, feature: str) -> None:
        """Document the system's limits explicitly (used by benches)."""
        raise UnsupportedFeatureError(
            f"XGrind does not support {feature}")

    # -- decompression (homomorphism makes this a stream replay) ----------

    def decompress(self) -> str:
        """Reconstruct the document — the payoff of homomorphism."""
        from repro.xmlio.escape import escape_attribute, escape_text
        out: list[str] = []
        stack: list[str] = []
        open_tag: bool = False
        for token in self._tokens:
            if token.kind == _T_START:
                if open_tag:
                    out.append(">")
                name = self._names[token.code]
                out.append(f"<{name}")
                stack.append(name)
                open_tag = True
            elif token.kind == _T_ATTR:
                name = self._names[token.code][1:]
                assert token.value is not None
                value = self._codecs[token.code].decode(token.value)
                out.append(f' {name}="{escape_attribute(value)}"')
            elif token.kind == _T_TEXT:
                if open_tag:
                    out.append(">")
                    open_tag = False
                assert token.value is not None
                value = self._codecs[token.code].decode(token.value)
                out.append(escape_text(value))
            elif token.kind == _T_END:
                name = stack.pop()
                if open_tag:
                    out.append("/>")
                    open_tag = False
                else:
                    out.append(f"</{name}>")
        return "".join(out)


def _ordered(op: str, a: str, b: str) -> bool:
    try:
        x, y = float(a), float(b)
        a, b = x, y  # numeric when both parse
    except ValueError:
        pass
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b

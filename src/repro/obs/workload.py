"""Live query-workload capture (the observatory's input side).

The §3 tuning loop chooses a compression configuration from a
*workload* — E/I/D predicate-count matrices plus container access
frequencies — but until now the cost model only ever saw hand-written
synthetic workloads.  This module closes the first half of the loop:

* :class:`WorkloadCapture` — the per-run accumulator deep layers
  (containers, physical operators, the engine's access paths) report
  per-container activity into, through
  :data:`repro.obs.runtime.RECORDER` (same zero-overhead activation
  pattern as :data:`~repro.obs.runtime.ACTIVE`);
* :class:`WorkloadRecord` — one query run's observation: which
  containers were scanned/probed, which predicate kinds (``eq`` /
  ``ineq`` / ``wild``) hit which containers, how much stayed in the
  compressed domain, and the run's wall time;
* :class:`WorkloadRecorder` — attached to a
  :class:`~repro.query.engine.QueryEngine`, wraps each ``execute`` in
  a capture and appends the finished record to a
  :class:`~repro.obs.journal.WorkloadJournal`.

A disabled recorder is a true no-op: ``execute`` skips the capture
entirely, no journal I/O happens, and the deep layers pay one global
load plus an ``is None`` test.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.journal import WorkloadJournal
from repro.util.clock import elapsed_ns, now_ns
from repro.partitioning.workload import PREDICATE_KINDS

#: per-container access operations the deep layers report.
ACCESS_OPS = ("scans", "interval_searches", "record_reads")

#: registry counters diffed into each record's ``counters`` section.
_RECORD_COUNTERS = ("decompressions", "compressed_comparisons",
                    "decompressed_comparisons", "container_accesses",
                    "summary_accesses", "hash_joins")


class WorkloadCapture:
    """Accumulates one run's per-container activity.

    ``containers`` maps container path -> {op/kind -> count}; the keys
    are the :data:`ACCESS_OPS` plus the predicate kinds of
    :data:`~repro.partitioning.workload.PREDICATE_KINDS` (the two name
    sets are disjoint).
    """

    __slots__ = ("containers",)

    def __init__(self):
        self.containers: dict[str, dict[str, int]] = {}

    def record_access(self, path: str, op: str, n: int = 1) -> None:
        """Report ``n`` accesses of kind ``op`` on container ``path``."""
        ops = self.containers.get(path)
        if ops is None:
            ops = self.containers[path] = {}
        ops[op] = ops.get(op, 0) + n

    def record_predicate(self, path: str, kind: str,
                         n: int = 1) -> None:
        """Report a predicate of ``kind`` evaluated against ``path``."""
        self.record_access(path, kind, n)


@dataclass
class WorkloadRecord:
    """One journalled query observation (JSON-ready via ``to_dict``)."""

    query: str
    ts: str
    wall_ns: int
    #: container path -> {scans/interval_searches/record_reads/
    #: eq/ineq/wild -> count}, from the dynamic capture.
    containers: dict[str, dict[str, int]] = field(default_factory=dict)
    #: statically extracted E/I/D predicates:
    #: [{"kind", "left", "right"(or None)}], reusing the §3.2 extractor.
    predicates: list[dict] = field(default_factory=list)
    #: registry counter deltas of the run (decompressions, compressed
    #: vs decompressed comparisons, ...).
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def compressed_ratio(self) -> float | None:
        """Share of comparisons evaluated in the compressed domain."""
        compressed = self.counters.get("compressed_comparisons", 0)
        total = compressed + self.counters.get(
            "decompressed_comparisons", 0)
        if total == 0:
            return None
        return compressed / total

    def to_dict(self) -> dict:
        """JSON-ready representation (one journal line)."""
        return {
            "query": self.query,
            "ts": self.ts,
            "wall_ns": self.wall_ns,
            "containers": {path: dict(sorted(ops.items()))
                           for path, ops in
                           sorted(self.containers.items())},
            "predicates": self.predicates,
            "counters": dict(sorted(self.counters.items())),
            "compressed_ratio": self.compressed_ratio,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadRecord":
        """Rebuild a record from a journal line (extra keys ignored)."""
        return cls(
            query=data.get("query", ""),
            ts=data.get("ts", ""),
            wall_ns=int(data.get("wall_ns", 0)),
            containers={str(path): {str(op): int(n)
                                    for op, n in ops.items()}
                        for path, ops in
                        data.get("containers", {}).items()},
            predicates=list(data.get("predicates", [])),
            counters={str(name): int(value) for name, value in
                      data.get("counters", {}).items()},
        )


class WorkloadRecorder:
    """Captures per-query workload observations into a journal.

    Attach one to a :class:`~repro.query.engine.QueryEngine`
    (``engine.recorder = WorkloadRecorder(journal_path)``); every
    ``execute`` then appends one :class:`WorkloadRecord`.  Set
    ``enabled=False`` (or detach) for a true no-op — the engine skips
    the capture and no file is ever opened.
    """

    GUARDED_BY = {"records_written": "_count_lock"}

    def __init__(self, journal: WorkloadJournal | str | Path,
                 enabled: bool = True):
        self.journal = journal if isinstance(journal, WorkloadJournal) \
            else WorkloadJournal(journal)
        self.enabled = enabled
        #: records appended by this recorder instance (for tests/CLI).
        self.records_written = 0
        self._count_lock = threading.Lock()
        self._pid = os.getpid()

    def _check_fork(self) -> None:
        """Fork safety: a child inheriting this recorder must not use
        the parent's (possibly held) count lock; the journal performs
        its own PID check and reopens its handle in the child."""
        if self._pid != os.getpid():
            self._count_lock = threading.Lock()
            self._pid = os.getpid()

    @contextmanager
    def capture(self, query_text: str, ast, repository, telemetry):
        """Record the execution inside the block as one journal entry.

        ``ast`` is the parsed query (for static E/I/D extraction
        against ``repository``'s structure summary); ``telemetry`` is
        the run's :class:`~repro.obs.telemetry.Telemetry`, whose
        registry counters are diffed across the block.
        """
        from repro.obs import runtime
        metrics = telemetry.metrics
        before = {name: metrics.counter(name).value
                  for name in _RECORD_COUNTERS}
        capture = WorkloadCapture()
        start = now_ns()
        with runtime.recording(capture):
            yield capture
        wall_ns = elapsed_ns(start)
        deltas = {name: metrics.counter(name).value - before[name]
                  for name in _RECORD_COUNTERS}
        record = WorkloadRecord(
            query=query_text,
            ts=datetime.now(timezone.utc).isoformat(),
            wall_ns=wall_ns,
            containers=capture.containers,
            predicates=_extract_predicates(ast, repository),
            counters=deltas,
        )
        self._bump_metrics(metrics, record)
        self.journal.append(record.to_dict())
        self._check_fork()
        with self._count_lock:
            self.records_written += 1

    def _bump_metrics(self, metrics, record: WorkloadRecord) -> None:
        """Mirror the record into ``workload.*`` registry counters."""
        metrics.add("workload.records")
        metrics.add("workload.containers_touched",
                    len(record.containers))
        for kind in PREDICATE_KINDS:
            hits = sum(1 for p in record.predicates
                       if p["kind"] == kind)
            if hits:
                metrics.add(f"workload.predicates.{kind}", hits)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<WorkloadRecorder {state} -> {self.journal.path}>"


def _extract_predicates(ast, repository) -> list[dict]:
    """Static E/I/D extraction of one query, as JSON-ready dicts.

    Reuses :func:`repro.core.system.extract_workload` (the §3.2
    extractor that feeds compression tuning), so the journalled
    predicates are exactly what the cost model consumes.  Imported
    lazily: the engine imports this module, and ``core.system``
    imports the engine.
    """
    from repro.core.system import extract_workload
    workload = extract_workload([ast], repository)
    return [{"kind": p.kind, "left": p.left_path,
             "right": p.right_path} for p in workload]

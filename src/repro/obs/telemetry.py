"""One query run's worth of observability: tracer + metrics + export.

A :class:`Telemetry` bundles the tracer and the metrics registry the
engine uses for one execution.  Span durations are mirrored into
``span.<name>`` histograms as spans close, so per-operator p50/p95/max
come for free.  ``to_json()`` is the machine-readable operator profile
attached to benchmark results and emitted by ``repro trace``.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Telemetry:
    """Tracer + metrics registry for one engine run."""

    __slots__ = ("enabled", "tracer", "metrics", "diagnostics",
                 "profile")

    def __init__(self, enabled: bool = True,
                 metrics: MetricsRegistry | None = None):
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry()
        self.tracer = Tracer(enabled=enabled, on_end=self._span_ended)
        #: non-fatal plan-verifier findings of the run
        #: (:class:`repro.lint.PlanDiagnostic` objects).
        self.diagnostics: list = []
        #: the run's :class:`~repro.obs.profiler.SpanProfile` when it
        #: executed under ``ExecutionOptions(profile=...)``.
        self.profile = None

    def _span_ended(self, span) -> None:
        self.metrics.observe(f"span.{span.name}", span.duration_ns)

    def span(self, name: str, **attributes):
        """Open a span (no-op when disabled)."""
        return self.tracer.span(name, **attributes)

    def operator_profile(self) -> dict[str, dict]:
        """Per-operator {count, total_ns, p50, p95, max} from the
        ``span.*`` histograms (names without the prefix).

        Insertion order is the sorted operator name, independent of
        span-open order, so exported documents are stable across runs
        of the same plan.
        """
        profile: dict[str, dict] = {}
        for name, summary in sorted(self.metrics.histograms().items()):
            if name.startswith("span."):
                profile[name[len("span."):]] = summary
        return profile

    def to_dict(self) -> dict:
        """The full JSON-ready telemetry document."""
        document = {
            "enabled": self.enabled,
            "metrics": self.metrics.to_dict(),
            "operators": self.operator_profile(),
            "trace": self.tracer.to_dict(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.profile is not None:
            document["profile"] = self.profile.to_dict()
        return document

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the telemetry document as JSON."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True, default=str)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state}>"

"""Engine-wide observability: tracing, metrics, telemetry export.

A zero-dependency layer threaded through storage, compression and the
query engine so that the paper's central claim — predicates run in the
compressed domain, decompression is deferred to serialization — is
*measurable* per operator instead of asserted:

* :class:`~repro.obs.tracer.Tracer` — hierarchical wall-clock spans
  (``perf_counter_ns``) naming the paper's physical operators
  (Figure 4 access paths); a disabled tracer hands out one shared
  no-op span, so the hot path pays ~nothing;
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters,
  gauges, bounded p50/p95/max histograms and fixed-memory **rolling
  windows** (:class:`~repro.obs.metrics.WindowedHistogram`);
  :class:`repro.query.context.EvaluationStats` is now a thin view
  over one of these;
* :mod:`~repro.obs.export` — the registry rendered as (and parsed
  back from) Prometheus text exposition, the serving telemetry
  plane's scrape format;
* :class:`~repro.obs.telemetry.Telemetry` — one tracer + one registry
  per query run, JSON-exportable (``to_json``) for benchmark reports
  and the ``repro trace`` CLI;
* :class:`~repro.obs.profiler.SpanProfiler` — a background sampling
  profiler that attributes ``sys._current_frames()`` samples to the
  span stack each thread has open, yielding per-span self/total CPU
  shares and folded-stack flamegraph exports;
* :class:`~repro.obs.lockwatch.LockOrderWatchdog` — opt-in runtime
  recorder of per-thread lock acquisition orders, cross-checked
  against the Tier-C static acquisition graph
  (:mod:`repro.lint.concurrency`);
* :mod:`~repro.obs.runtime` — the module-level activation point the
  storage and compression layers check (one global load + ``is None``
  test when telemetry is off) to report codec encode/decode calls,
  B+-tree page reads and container accesses without threading a
  handle through every signature.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.journal import WorkloadJournal, default_journal_path
from repro.obs.lockwatch import (
    LockOrderViolation,
    LockOrderWatchdog,
    WatchedLock,
    watch_session,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedHistogram,
)
from repro.obs.profiler import (
    ProfileOptions,
    SpanProfile,
    SpanProfiler,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracer import Span, Tracer
from repro.obs.workload import (
    WorkloadCapture,
    WorkloadRecord,
    WorkloadRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PROMETHEUS_CONTENT_TYPE",
    "LockOrderViolation",
    "LockOrderWatchdog",
    "MetricsRegistry",
    "ProfileOptions",
    "Span",
    "SpanProfile",
    "SpanProfiler",
    "Telemetry",
    "Tracer",
    "WatchedLock",
    "WindowedHistogram",
    "WorkloadCapture",
    "WorkloadJournal",
    "WorkloadRecord",
    "WorkloadRecorder",
    "default_journal_path",
    "parse_prometheus",
    "render_prometheus",
    "watch_session",
]

"""Named counters, gauges, histograms and windowed histograms.

A :class:`MetricsRegistry` is the per-run source of truth for every
operator counter the engine keeps.  Counters are plain mutable cells so
the long-standing ``stats.decompressions += 1`` idiom stays a couple of
attribute accesses; histograms capture per-operator wall times and
report p50/p95/max; :class:`Gauge` holds the latest value of a
non-monotonic quantity (cache hit rate, slow-log threshold); and
:class:`WindowedHistogram` keeps a fixed-memory ring of time-bucketed
digests over the monotonic clock so a long-running serving process
reports *recent* p50/p95/p99 and rate-per-second, not lifetime
aggregates.

Thread safety: :meth:`Counter.add` and the registry's get-or-create /
snapshot / merge paths take locks, so a registry *shared across
threads* (the session layer's ``cache.*`` counters, batch-serving
aggregation) never loses increments.  Direct ``cell.value`` mutation —
the ``EvaluationStats`` hot-path idiom — stays lock-free and is only
legal on per-run registries, which are confined to one thread.
"""

from __future__ import annotations

import random
import threading

from repro.util.clock import NS_PER_S, now_ns


class Counter:
    """A named, monotonically adjustable integer cell.

    ``value`` is deliberately *not* in a guarded-field registry: the
    ``EvaluationStats`` hot path mutates it directly (``cell.value +=
    1``) on per-run registries that are confined to one thread, and
    reads are GIL-atomic.  Cross-thread increments must go through
    :meth:`add`.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (counters only ever count *up*).

        A negative increment is always a caller bug — a counter that
        can go down silently corrupts every ratio derived from it — so
        it raises instead of clamping.  The increment is atomic, so
        concurrent adders on a shared registry never lose counts.
        """
        if n < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {n} "
                "(counters are monotonic)")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


#: retained samples per histogram: beyond this, reservoir sampling
#: keeps a uniform subset while count/total/max stay exact.
HISTOGRAM_SAMPLE_CAP = 4096


class Histogram:
    """A named distribution with p50/p95/max summaries.

    Retained memory is **bounded**: the first
    :data:`HISTOGRAM_SAMPLE_CAP` observations are kept verbatim; after
    that, reservoir sampling (Vitter's algorithm R, seeded per
    histogram for reproducibility) keeps a uniform subset of all
    observations so far.  ``count``/``total``/``max`` stay *exact*
    regardless — only the percentiles degrade, from exact
    nearest-rank to a reservoir estimate whose error shrinks as
    1/sqrt(cap); with the default cap of 4096 the p95 of a
    million-observation stream is still within a fraction of a
    percentile rank.  A long-running serving process can therefore
    observe forever without growing.

    Thread safety: the SLO layer observes latencies into *shared*
    histograms from ``execute_many`` worker threads, so the
    observation list is guarded — a torn ``sorted()`` over a list
    mid-``append`` must not corrupt a percentile report.
    """

    __slots__ = ("name", "values", "sample_cap", "_count", "_total",
                 "_max", "_rng", "_lock")

    GUARDED_BY = {"values": "_lock", "_count": "_lock",
                  "_total": "_lock", "_max": "_lock"}

    def __init__(self, name: str,
                 sample_cap: int = HISTOGRAM_SAMPLE_CAP):
        if sample_cap < 1:
            raise ValueError(f"histogram {name!r}: sample cap must "
                             f"be >= 1, got {sample_cap}")
        self.name = name
        self.values: list[float] = []
        self.sample_cap = sample_cap
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        #: deterministic reservoir choices, keyed on the metric name.
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if self._count == 1 or value > self._max:
                self._max = value
            if len(self.values) < self.sample_cap:
                self.values.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.sample_cap:
                    self.values[slot] = value

    def absorb(self, count: int, total: float, maximum: float,
               samples: list[float]) -> None:
        """Fold another histogram's exact aggregates + samples in.

        Used by :meth:`MetricsRegistry.merge`: re-observing the
        retained samples alone would lose the exact ``count`` and
        ``total`` of a capped source histogram.
        """
        if count <= 0:
            return
        with self._lock:
            had_any = self._count > 0
            self._count += count
            self._total += total
            if not had_any or maximum > self._max:
                self._max = maximum
            for value in samples:
                if len(self.values) < self.sample_cap:
                    self.values.append(value)
                else:
                    slot = self._rng.randrange(len(self.values) * 2)
                    if slot < self.sample_cap:
                        self.values[slot] = value

    def snapshot(self) -> list[float]:
        """A consistent copy of the *retained* observations.

        Exact up to :attr:`sample_cap` observations; a uniform sample
        of the stream beyond that.
        """
        with self._lock:
            return list(self.values)

    def state(self) -> tuple[int, float, float, list[float]]:
        """(count, total, max, retained samples) — one consistent
        view, for :meth:`absorb`."""
        with self._lock:
            return (self._count, self._total, self._max,
                    list(self.values))

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        Exact while the histogram holds at most ``sample_cap``
        observations; a reservoir estimate beyond that (see the class
        docstring for the accuracy tradeoff).  Both an out-of-range
        ``p`` and an empty histogram raise: a fabricated 0.0 would
        read as "this operator was instant" in a report.
        (:meth:`summary` stays total — it marks emptiness with an
        explicit ``count: 0`` row instead.)
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(
                f"histogram {self.name!r}: percentile {p!r} outside "
                "[0, 100]")
        ordered = sorted(self.snapshot())
        if not ordered:
            raise ValueError(
                f"histogram {self.name!r} is empty: no observations "
                "to take a percentile of")
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """count/total/p50/p95/max as a plain dict (JSON-ready).

        ``count``/``total``/``max`` are exact over every observation;
        the percentiles come from the retained (possibly sampled)
        values.
        """
        count, total, maximum, values = self.state()
        ordered = sorted(values)
        if not ordered:
            return {"count": 0, "total": 0.0, "p50": 0.0,
                    "p95": 0.0, "max": 0.0}
        last = len(ordered) - 1
        return {
            "count": count,
            "total": total,
            "p50": ordered[round(0.50 * last)],
            "p95": ordered[round(0.95 * last)],
            "max": maximum,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class Gauge:
    """A named, settable value — the latest reading of a quantity that
    can move both ways (resident bytes, hit rate, threshold).

    Unlike :class:`Counter` there is no monotonicity contract;
    :meth:`set` replaces and :meth:`add` adjusts in either direction.
    """

    __slots__ = ("name", "_value", "_lock")

    GUARDED_BY = {"_value": "_lock"}

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self._value = float(value)
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (negative allowed)."""
        with self._lock:
            self._value += delta

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


#: windowed-histogram defaults: a one-minute window of 5 s buckets.
WINDOW_SECONDS = 60.0
WINDOW_BUCKETS = 12

#: retained samples per window bucket (memory bound per window:
#: buckets * cap floats).
WINDOW_BUCKET_SAMPLE_CAP = 256


class _WindowBucket:
    """One time bucket of a :class:`WindowedHistogram` (no locking —
    the owning window guards it)."""

    __slots__ = ("epoch", "count", "total", "max", "samples")

    def __init__(self, epoch: int = -1):
        self.reset(epoch)

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.samples: list[float] = []


class WindowedHistogram:
    """A fixed-memory rolling distribution over the monotonic clock.

    Observations land in a ring of ``buckets`` time buckets, each
    ``window_s / buckets`` seconds wide; a bucket is recycled in place
    when its ring slot comes around again, so memory never exceeds
    ``buckets * bucket_sample_cap`` retained floats however long the
    process serves.  :meth:`summary` aggregates only the buckets still
    inside the window: rolling count, total, max, p50/p95/p99 and
    rate-per-second — the "recent behaviour" view the lifetime
    :class:`Histogram` cannot give a long-running server.

    ``clock`` is injectable (monotonic nanoseconds) for tests; the
    default is :func:`repro.util.clock.now_ns`, the same clock every
    other measurement layer uses.

    Thread safety: one lock guards the ring; ``execute_many`` worker
    threads observe concurrently.  The lock is a leaf — nothing is
    called while holding it.
    """

    __slots__ = ("name", "window_ns", "bucket_ns", "buckets",
                 "bucket_sample_cap", "_ring", "_rng", "_clock",
                 "_lock")

    GUARDED_BY = {"_ring": "_lock"}

    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, name: str, window_s: float = WINDOW_SECONDS,
                 buckets: int = WINDOW_BUCKETS,
                 bucket_sample_cap: int = WINDOW_BUCKET_SAMPLE_CAP,
                 clock=None):
        if window_s <= 0:
            raise ValueError(f"window {name!r}: window_s must be "
                             f"positive, got {window_s}")
        if buckets < 2:
            raise ValueError(f"window {name!r}: need >= 2 buckets, "
                             f"got {buckets}")
        if bucket_sample_cap < 1:
            raise ValueError(f"window {name!r}: bucket sample cap "
                             f"must be >= 1, got {bucket_sample_cap}")
        self.name = name
        self.window_ns = int(window_s * NS_PER_S)
        self.buckets = buckets
        self.bucket_ns = max(1, self.window_ns // buckets)
        self.bucket_sample_cap = bucket_sample_cap
        self._ring = [_WindowBucket() for _ in range(buckets)]
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)
        self._clock = clock if clock is not None else now_ns
        self._lock = threading.Lock()

    @property
    def window_s(self) -> float:
        return self.window_ns / NS_PER_S

    def _bucket_at(self, ts_ns: int) -> _WindowBucket:  # holds: _lock
        epoch = ts_ns // self.bucket_ns
        bucket = self._ring[epoch % self.buckets]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def observe(self, value: float, ts_ns: int | None = None) -> None:
        """File one observation under the clock's current bucket."""
        ts_ns = ts_ns if ts_ns is not None else self._clock()
        with self._lock:
            bucket = self._bucket_at(ts_ns)
            bucket.count += 1
            bucket.total += value
            if bucket.count == 1 or value > bucket.max:
                bucket.max = value
            if len(bucket.samples) < self.bucket_sample_cap:
                bucket.samples.append(value)
            else:
                slot = self._rng.randrange(bucket.count)
                if slot < self.bucket_sample_cap:
                    bucket.samples[slot] = value

    def _live(self, now: int) -> list[_WindowBucket]:  # holds: _lock
        """Buckets still inside the window, oldest first."""
        horizon = now // self.bucket_ns - self.buckets + 1
        return sorted((b for b in self._ring
                       if b.epoch >= horizon and b.count > 0),
                      key=lambda b: b.epoch)

    def summary(self, now_ns_: int | None = None) -> dict:
        """Rolling count/total/max/p50/p95/p99/rate (JSON-ready).

        Percentiles are nearest-rank over the window's retained
        samples (exact up to the per-bucket cap); ``rate_per_s``
        divides the window count by the covered span — the seconds
        between the start of the oldest live bucket and now, clamped
        to the window — so freshly started processes report a sane
        rate instead of count/60.
        """
        now = now_ns_ if now_ns_ is not None else self._clock()
        with self._lock:
            live = self._live(now)
            count = sum(b.count for b in live)
            total = sum(b.total for b in live)
            maximum = max((b.max for b in live), default=0.0)
            samples: list[float] = []
            for bucket in live:
                samples.extend(bucket.samples)
            oldest_start = (live[0].epoch * self.bucket_ns
                            if live else now)
        covered_ns = min(self.window_ns, max(now - oldest_start,
                                             self.bucket_ns))
        out = {
            "count": count,
            "total": total,
            "max": maximum,
            "rate_per_s": count / (covered_ns / NS_PER_S),
            "window_s": self.window_s,
        }
        ordered = sorted(samples)
        last = len(ordered) - 1
        for p in self.PERCENTILES:
            out[f"p{p:g}"] = (ordered[round(p / 100.0 * last)]
                              if ordered else None)
        return out

    def merge(self, other: "WindowedHistogram") -> None:
        """Fold another window's live buckets into this one.

        Both windows must share clock semantics (they do: everything
        uses :mod:`repro.util.clock`); buckets align on their absolute
        epoch, so merged observations stay in their original time
        slots.  Used by :meth:`MetricsRegistry.merge`.
        """
        now = self._clock()
        with other._lock:
            live = [(b.epoch, b.count, b.total, b.max,
                     list(b.samples)) for b in other._live(now)]
        # fold outside other's lock; self._lock stays a leaf.
        for epoch, count, total, maximum, samples in live:
            ts = epoch * other.bucket_ns
            with self._lock:
                bucket = self._bucket_at(ts)
                had_any = bucket.count > 0
                bucket.count += count
                bucket.total += total
                if not had_any or maximum > bucket.max:
                    bucket.max = maximum
                for value in samples:
                    if len(bucket.samples) < self.bucket_sample_cap:
                        bucket.samples.append(value)
                    else:
                        slot = self._rng.randrange(
                            len(bucket.samples) * 2)
                        if slot < self.bucket_sample_cap:
                            bucket.samples[slot] = value

    def __repr__(self) -> str:
        return (f"<WindowedHistogram {self.name} "
                f"{self.window_s:g}s/{self.buckets}>")


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, histograms
    and windowed histograms."""

    __slots__ = ("_counters", "_histograms", "_gauges", "_windows",
                 "_lock")

    GUARDED_BY = {"_counters": "_lock", "_histograms": "_lock",
                  "_gauges": "_lock", "_windows": "_lock"}

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}
        self._windows: dict[str, WindowedHistogram] = {}
        self._lock = threading.RLock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at 0 on first use."""
        cell = self._counters.get(name)  # lockfree-read (double-checked)
        if cell is None:
            with self._lock:
                cell = self._counters.get(name)
                if cell is None:
                    cell = Counter(name)
                    self._counters[name] = cell
        return cell

    def add(self, name: str, n: int = 1) -> None:
        """Increment the counter called ``name`` by ``n``."""
        self.counter(name).add(n)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created empty on first use."""
        hist = self._histograms.get(name)  # lockfree-read (double-checked)
        if hist is None:
            with self._lock:
                hist = self._histograms.get(name)
                if hist is None:
                    hist = Histogram(name)
                    self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name).observe(value)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at 0.0 on first use."""
        cell = self._gauges.get(name)  # lockfree-read (double-checked)
        if cell is None:
            with self._lock:
                cell = self._gauges.get(name)
                if cell is None:
                    cell = Gauge(name)
                    self._gauges[name] = cell
        return cell

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge called ``name`` to ``value``."""
        self.gauge(name).set(value)

    def window(self, name: str,
               window_s: float = WINDOW_SECONDS,
               buckets: int = WINDOW_BUCKETS) -> WindowedHistogram:
        """The windowed histogram called ``name`` (get-or-create).

        Configuration arguments apply only on first creation; later
        callers get the existing window unchanged.
        """
        win = self._windows.get(name)  # lockfree-read (double-checked)
        if win is None:
            with self._lock:
                win = self._windows.get(name)
                if win is None:
                    win = WindowedHistogram(name, window_s=window_s,
                                            buckets=buckets)
                    self._windows[name] = win
        return win

    def observe_window(self, name: str, value: float) -> None:
        """Record one observation into windowed histogram ``name``."""
        self.window(name).observe(value)

    def counters(self) -> dict[str, int]:
        """All counter values, by name (zero-valued ones included)."""
        with self._lock:
            cells = sorted(self._counters.items())
        return {name: cell.value for name, cell in cells}

    def histograms(self) -> dict[str, dict]:
        """All histogram summaries, by name."""
        with self._lock:
            hists = sorted(self._histograms.items())
        return {name: hist.summary() for name, hist in hists}

    def gauges(self) -> dict[str, float]:
        """All gauge values, by name."""
        with self._lock:
            cells = sorted(self._gauges.items())
        return {name: cell.value for name, cell in cells}

    def windows(self) -> dict[str, dict]:
        """All windowed-histogram rolling summaries, by name."""
        with self._lock:
            wins = sorted(self._windows.items())
        return {name: win.summary() for name, win in wins}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters add up; histograms fold exact count/total/max plus
        the retained samples; windows merge bucket-wise on the shared
        monotonic clock; gauges take the other registry's latest
        value.  Used by the session layer to aggregate per-run
        registries into one serving-wide view; safe against concurrent
        merges into the same target.
        """
        for name, value in other.counters().items():
            if value:
                self.add(name, value)
        with other._lock:
            hists = list(other._histograms.items())
            gauges = list(other._gauges.items())
            windows = list(other._windows.items())
        # snapshot outside the registry lock: the per-metric locks
        # stay leaves of the lock hierarchy.
        for name, hist in hists:
            count, total, maximum, samples = hist.state()
            self.histogram(name).absorb(count, total, maximum,
                                        samples)
        for name, cell in gauges:
            self.gauge(name).set(cell.value)
        for name, win in windows:
            self.window(name).merge(win)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every metric."""
        return {"counters": self.counters(),
                "histograms": self.histograms(),
                "gauges": self.gauges(),
                "windows": self.windows()}

    def __repr__(self) -> str:
        return (f"<MetricsRegistry "
                f"{len(self._counters)} counters, "  # lockfree-read
                f"{len(self._histograms)} histograms>")  # lockfree-read

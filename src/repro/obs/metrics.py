"""Named counters and histograms, replacing ad-hoc counting.

A :class:`MetricsRegistry` is the per-run source of truth for every
operator counter the engine keeps.  Counters are plain mutable cells so
the long-standing ``stats.decompressions += 1`` idiom stays a couple of
attribute accesses; histograms capture per-operator wall times and
report p50/p95/max.

Thread safety: :meth:`Counter.add` and the registry's get-or-create /
snapshot / merge paths take locks, so a registry *shared across
threads* (the session layer's ``cache.*`` counters, batch-serving
aggregation) never loses increments.  Direct ``cell.value`` mutation —
the ``EvaluationStats`` hot-path idiom — stays lock-free and is only
legal on per-run registries, which are confined to one thread.
"""

from __future__ import annotations

import threading


class Counter:
    """A named, monotonically adjustable integer cell.

    ``value`` is deliberately *not* in a guarded-field registry: the
    ``EvaluationStats`` hot path mutates it directly (``cell.value +=
    1``) on per-run registries that are confined to one thread, and
    reads are GIL-atomic.  Cross-thread increments must go through
    :meth:`add`.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (counters only ever count *up*).

        A negative increment is always a caller bug — a counter that
        can go down silently corrupts every ratio derived from it — so
        it raises instead of clamping.  The increment is atomic, so
        concurrent adders on a shared registry never lose counts.
        """
        if n < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {n} "
                "(counters are monotonic)")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A named distribution with p50/p95/max summaries.

    Every observation is kept (queries observe at operator granularity,
    so populations stay small); ``summary()`` sorts on demand.

    Thread safety: the SLO layer observes latencies into *shared*
    histograms from ``execute_many`` worker threads, so the
    observation list is guarded — a torn ``sorted()`` over a list
    mid-``append`` must not corrupt a percentile report.
    """

    __slots__ = ("name", "values", "_lock")

    GUARDED_BY = {"values": "_lock"}

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(value)

    def snapshot(self) -> list[float]:
        """A consistent copy of every observation so far."""
        with self._lock:
            return list(self.values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self.values)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        Both an out-of-range ``p`` and an empty histogram raise: a
        fabricated 0.0 would read as "this operator was instant" in a
        report.  (:meth:`summary` stays total — it marks emptiness
        with an explicit ``count: 0`` row instead.)
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(
                f"histogram {self.name!r}: percentile {p!r} outside "
                "[0, 100]")
        ordered = sorted(self.snapshot())
        if not ordered:
            raise ValueError(
                f"histogram {self.name!r} is empty: no observations "
                "to take a percentile of")
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """count/total/p50/p95/max as a plain dict (JSON-ready)."""
        ordered = sorted(self.snapshot())
        if not ordered:
            return {"count": 0, "total": 0.0, "p50": 0.0,
                    "p95": 0.0, "max": 0.0}
        last = len(ordered) - 1
        return {
            "count": len(ordered),
            "total": sum(ordered),
            "p50": ordered[round(0.50 * last)],
            "p95": ordered[round(0.95 * last)],
            "max": ordered[-1],
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named counters and histograms."""

    __slots__ = ("_counters", "_histograms", "_lock")

    GUARDED_BY = {"_counters": "_lock", "_histograms": "_lock"}

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at 0 on first use."""
        cell = self._counters.get(name)  # lockfree-read (double-checked)
        if cell is None:
            with self._lock:
                cell = self._counters.get(name)
                if cell is None:
                    cell = Counter(name)
                    self._counters[name] = cell
        return cell

    def add(self, name: str, n: int = 1) -> None:
        """Increment the counter called ``name`` by ``n``."""
        self.counter(name).add(n)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created empty on first use."""
        hist = self._histograms.get(name)  # lockfree-read (double-checked)
        if hist is None:
            with self._lock:
                hist = self._histograms.get(name)
                if hist is None:
                    hist = Histogram(name)
                    self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name).observe(value)

    def counters(self) -> dict[str, int]:
        """All counter values, by name (zero-valued ones included)."""
        with self._lock:
            cells = sorted(self._counters.items())
        return {name: cell.value for name, cell in cells}

    def histograms(self) -> dict[str, dict]:
        """All histogram summaries, by name."""
        with self._lock:
            hists = sorted(self._histograms.items())
        return {name: hist.summary() for name, hist in hists}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters add up; histogram observations concatenate.  Used by
        the session layer to aggregate per-run registries into one
        serving-wide view; safe against concurrent merges into the
        same target.
        """
        for name, value in other.counters().items():
            if value:
                self.add(name, value)
        with other._lock:
            hists = list(other._histograms.items())
        # snapshot outside the registry lock: Histogram._lock stays a
        # leaf of the lock hierarchy.
        for name, hist in hists:
            target = self.histogram(name)
            for value in hist.snapshot():
                target.observe(value)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every metric."""
        return {"counters": self.counters(),
                "histograms": self.histograms()}

    def __repr__(self) -> str:
        return (f"<MetricsRegistry "
                f"{len(self._counters)} counters, "  # lockfree-read
                f"{len(self._histograms)} histograms>")  # lockfree-read

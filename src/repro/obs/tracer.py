"""Hierarchical wall-clock spans over ``perf_counter_ns``.

``Tracer.span(name, **attributes)`` is used as a context manager; spans
nest by dynamic scope, so the finished trace is a forest mirroring the
evaluation.  A disabled tracer returns one shared no-op span whose
enter/exit do nothing — the instrumentation cost of a cold engine is a
boolean test plus a constant return.

The module also hosts the **active-span-path registry** the sampling
profiler (:mod:`repro.obs.profiler`) reads from its sampler thread:
while at least one profiler is attached, every tracer publishes its
open span stack under the executing thread's ident, so a sample taken
of that thread can be attributed to the span it was inside.  With no
profiler attached the registry is never touched — the per-span cost is
one module-global load and a falsy test.
"""

from __future__ import annotations

import threading
from time import perf_counter_ns

#: count of attached profilers; the registry below is only maintained
#: while this is nonzero (one global load + falsy test per span else).
_PROFILING = 0

#: thread ident -> tuple of open span names, root first.  Written by
#: the thread running the spans, read by the profiler's sampler thread;
#: assignment/deletion of dict entries is atomic under the GIL.
_ACTIVE_PATHS: dict[int, tuple[str, ...]] = {}

_PROFILING_LOCK = threading.Lock()


def profiling_attach() -> None:
    """Turn the active-span-path registry on (profiler attach)."""
    global _PROFILING
    with _PROFILING_LOCK:
        _PROFILING += 1


def profiling_detach() -> None:
    """Turn the registry off again once no profiler remains."""
    global _PROFILING
    with _PROFILING_LOCK:
        _PROFILING = max(0, _PROFILING - 1)
        if _PROFILING == 0:
            _ACTIVE_PATHS.clear()


def active_span_paths() -> dict[int, tuple[str, ...]]:
    """Snapshot of thread ident -> open span-name path (root first)."""
    return dict(_ACTIVE_PATHS)


class Span:
    """One named, timed region with attributes and child spans."""

    __slots__ = ("name", "attributes", "children", "start_ns", "end_ns",
                 "_tracer")

    def __init__(self, name: str, tracer: "Tracer",
                 attributes: dict | None = None):
        self.name = name
        self.attributes: dict = attributes or {}
        self.children: list[Span] = []
        self.start_ns: int = 0
        self.end_ns: int = 0
        self._tracer = tracer

    @property
    def duration_ns(self) -> int:
        """Wall time between enter and exit (0 while still open)."""
        if self.end_ns < self.start_ns:
            return 0
        return self.end_ns - self.start_ns

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = perf_counter_ns()
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        """JSON-ready representation, children included."""
        return {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self):
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration_ns}ns>"


class _NoOpSpan:
    """The shared span a disabled tracer hands out; does nothing."""

    __slots__ = ()

    name = ""
    attributes: dict = {}
    children: list = []
    duration_ns = 0

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: the one no-op span every disabled tracer returns.
NOOP_SPAN = _NoOpSpan()


class Tracer:
    """Produces spans; collects the finished forest under ``roots``.

    ``on_end`` (optional) is called with each span as it closes — the
    telemetry layer uses it to feed span durations into histograms.
    ``on_start`` (optional) is called as each span opens — the profiler
    uses the pair to take allocation snapshots at span boundaries.
    """

    __slots__ = ("enabled", "roots", "_stack", "on_end", "on_start")

    def __init__(self, enabled: bool = True, on_end=None,
                 on_start=None):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.on_end = on_end
        self.on_start = on_start

    def span(self, name: str, **attributes):
        """A context manager timing ``name``; no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(name, self, attributes or None)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if _PROFILING:
            _ACTIVE_PATHS[threading.get_ident()] = \
                tuple(s.name for s in self._stack)
        if self.on_start is not None:
            self.on_start(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (exceptions unwinding): pop back
        # to and including the closing span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if _PROFILING:
            ident = threading.get_ident()
            if self._stack:
                _ACTIVE_PATHS[ident] = \
                    tuple(s.name for s in self._stack)
            else:
                _ACTIVE_PATHS.pop(ident, None)
        if self.on_end is not None:
            self.on_end(span)

    def aggregate(self) -> dict[str, dict]:
        """Per-span-name {count, total_ns, max_ns} over the forest."""
        out: dict[str, dict] = {}
        for root in self.roots:
            for span in root.walk():
                row = out.setdefault(span.name, {"count": 0,
                                                 "total_ns": 0,
                                                 "max_ns": 0})
                row["count"] += 1
                row["total_ns"] += span.duration_ns
                row["max_ns"] = max(row["max_ns"], span.duration_ns)
        return out

    def to_dict(self) -> dict:
        """JSON-ready trace forest."""
        return {"spans": [root.to_dict() for root in self.roots]}

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} roots={len(self.roots)}>"

"""Span-attributed sampling profiler (the performance observatory).

Spans say how long an operator ran; they cannot say *where the CPU
went inside it*.  A :class:`SpanProfiler` closes that gap: a background
thread wakes at a configurable rate, walks ``sys._current_frames()``,
and attributes each sampled thread to the span stack that thread
currently has open (published by :mod:`repro.obs.tracer` while a
profiler is attached).  The product is a :class:`SpanProfile`:

* **per-span CPU shares** — ``self`` (samples whose innermost open
  span was this one) and ``total`` (samples with the span anywhere on
  the stack), as fractions of all attributed samples, so the self
  shares of all spans sum to at most 1.0;
* **folded stacks** — ``span path;python frames count`` lines in the
  standard flamegraph "folded" format (``flamegraph.pl``, speedscope,
  inferno all consume it directly);
* optionally, **allocation deltas per span** via :mod:`tracemalloc`
  snapshots taken at span boundaries (opt-in: tracing allocations is
  far more intrusive than sampling stacks).

Sampling is statistical: a 97 Hz default (prime, so it does not beat
against 10/100 Hz periodic work) costs well under 5 % on the paper's
scan-heavy queries, and *nothing at all* when no profiler is attached
— the tracer's per-span registry update is gated on an attach counter.

Entry points: ``ExecutionOptions(profile=...)`` (engine/session),
``repro profile`` (CLI), and the "hot spans" section of
``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.obs import tracer as tracer_module
from repro.obs.tracer import Tracer

#: default sampling rate; prime so it does not alias periodic work.
DEFAULT_HZ = 97.0


@dataclass(frozen=True)
class ProfileOptions:
    """Profiler knobs carried by ``ExecutionOptions(profile=...)``.

    ``hz`` is the sampling rate of the background thread;
    ``trace_allocations`` opt-ins :mod:`tracemalloc` snapshots at span
    boundaries (slower, but gives per-span allocation deltas);
    ``max_stack_depth`` caps how many python frames a folded stack
    keeps (innermost frames win).
    """

    hz: float = DEFAULT_HZ
    trace_allocations: bool = False
    max_stack_depth: int = 24


def coerce_profile(value) -> ProfileOptions | None:
    """Normalize the ``profile=`` option: None/False off, True default."""
    if value is None or value is False:
        return None
    if value is True:
        return ProfileOptions()
    if isinstance(value, ProfileOptions):
        return value
    raise TypeError(
        f"profile= expects bool, None or ProfileOptions, "
        f"got {type(value).__name__}")


class SpanProfile:
    """The finished product of one profiling run (JSON-ready)."""

    __slots__ = ("hz", "ticks", "attributed", "span_samples",
                 "folded", "allocations")

    def __init__(self, hz: float):
        self.hz = hz
        #: sampler wake-ups while attached (the time base).
        self.ticks = 0
        #: samples that landed on a thread with an open span.
        self.attributed = 0
        #: span path (root..innermost) -> samples with exactly that
        #: stack of open spans.
        self.span_samples: dict[tuple[str, ...], int] = {}
        #: folded-stack line (span path + python frames) -> samples.
        self.folded: dict[str, int] = {}
        #: span name -> {count, total_bytes} tracemalloc deltas
        #: (total includes child spans; bytes can be negative when a
        #: span frees more than it allocates).
        self.allocations: dict[str, dict] = {}

    # -- shares ---------------------------------------------------------------

    def self_samples(self) -> dict[str, int]:
        """Samples whose *innermost* open span had this name."""
        out: dict[str, int] = {}
        for path, count in self.span_samples.items():
            out[path[-1]] = out.get(path[-1], 0) + count
        return out

    def total_samples(self) -> dict[str, int]:
        """Samples with the span name anywhere on the open stack."""
        out: dict[str, int] = {}
        for path, count in self.span_samples.items():
            for name in set(path):
                out[name] = out.get(name, 0) + count
        return out

    def shares(self) -> list[dict]:
        """Per-span-name rows sorted hottest (self share) first.

        Shares are fractions of all *attributed* samples, so the
        ``self_share`` column sums to at most 1.0 over the table.
        """
        if not self.attributed:
            return []
        self_counts = self.self_samples()
        total_counts = self.total_samples()
        rows = []
        for name in sorted(total_counts):
            row = {
                "span": name,
                "self_samples": self_counts.get(name, 0),
                "total_samples": total_counts[name],
                "self_share": self_counts.get(name, 0)
                / self.attributed,
                "total_share": total_counts[name] / self.attributed,
            }
            alloc = self.allocations.get(name)
            if alloc is not None:
                row["alloc_bytes"] = alloc["total_bytes"]
            rows.append(row)
        rows.sort(key=lambda r: (-r["self_samples"], r["span"]))
        return rows

    # -- export ---------------------------------------------------------------

    def folded_lines(self) -> list[str]:
        """Flamegraph "folded" lines, most-sampled stack first."""
        ordered = sorted(self.folded.items(),
                         key=lambda kv: (-kv[1], kv[0]))
        return [f"{stack} {count}" for stack, count in ordered]

    def write_folded(self, path: str | Path) -> Path:
        """Write the folded stacks to ``path`` (flamegraph input)."""
        path = Path(path)
        path.write_text("\n".join(self.folded_lines()) + "\n",
                        encoding="utf-8")
        return path

    def to_dict(self) -> dict:
        """JSON-ready representation (keys sorted for stability)."""
        return {
            "hz": self.hz,
            "ticks": self.ticks,
            "attributed_samples": self.attributed,
            "shares": self.shares(),
            "folded": dict(sorted(self.folded.items())),
            "allocations": {name: dict(stats) for name, stats in
                            sorted(self.allocations.items())},
        }

    def render_text(self, top: int = 10) -> str:
        """The hot-span table as aligned monospace text."""
        rows = self.shares()[:top]
        if not rows:
            return ("no samples attributed to spans (run too short "
                    f"for {self.hz:g} Hz sampling?)")
        has_alloc = any("alloc_bytes" in row for row in rows)
        headers = ["span", "self%", "total%", "self#", "total#"]
        if has_alloc:
            headers.append("alloc_B")
        table = []
        for row in rows:
            cells = [row["span"],
                     f"{100.0 * row['self_share']:.1f}",
                     f"{100.0 * row['total_share']:.1f}",
                     str(row["self_samples"]),
                     str(row["total_samples"])]
            if has_alloc:
                cells.append(str(row.get("alloc_bytes", "")))
            table.append(cells)
        widths = [len(h) for h in headers]
        for cells in table:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        out = ["  ".join(h.ljust(w)
                         for h, w in zip(headers, widths))]
        for cells in table:
            out.append("  ".join(c.ljust(w)
                                 for c, w in zip(cells, widths)))
        out.append(f"{self.attributed} attributed samples / "
                   f"{self.ticks} ticks at {self.hz:g} Hz")
        return "\n".join(out)

    def __repr__(self) -> str:
        return (f"<SpanProfile {self.attributed}/{self.ticks} samples "
                f"@{self.hz:g}Hz>")


class SpanProfiler:
    """Background sampler attributing stacks to open tracer spans.

    Use :meth:`attach` around the code to profile::

        profiler = SpanProfiler(ProfileOptions(hz=200))
        with profiler.attach(telemetry.tracer):
            engine.execute(...)
        profiler.profile.shares()

    One profiler serves *all* threads: samples are attributed through
    the tracer module's thread-keyed registry, so ``execute_many``
    worker threads each land on their own span stack.
    """

    def __init__(self, options: ProfileOptions | None = None):
        self.options = options if options is not None \
            else ProfileOptions()
        self.profile = SpanProfile(self.options.hz)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._alloc_starts: dict[int, int] = {}
        self._started_tracemalloc = False
        self._saved_hooks: tuple | None = None

    # -- lifecycle ------------------------------------------------------------

    @contextmanager
    def attach(self, tracer: Tracer | None = None):
        """Sample while the block runs.

        Samples are attributed through the process-wide registry, so
        spans of *every* tracer on *every* thread are seen —
        ``execute_many`` workers each land on their own span stack.
        ``tracer`` is only needed for ``trace_allocations`` (the
        snapshot hooks bind to one tracer's span boundaries).

        The interpreter's GIL switch interval (5 ms by default) is
        lowered while attached: a sampler that gets the GIL every 5 ms
        cannot sample at 97 Hz, let alone profile a 3 ms query.  The
        previous interval is restored on detach.

        Every setup step is undone in one ``finally`` — a sampler
        thread that dies mid-run, a failing hook installation or an
        exception in the profiled block must never leak the lowered
        switch interval or leave the process-wide span registry
        attached (the registry's attach counter would pin span
        publication overhead on every future query).
        """
        if self.options.trace_allocations and tracer is None:
            raise ValueError(
                "trace_allocations needs the run's tracer (span "
                "boundaries carry the snapshots)")
        hooks_attached = False
        previous_switch: float | None = None
        registry_attached = False
        thread: threading.Thread | None = None
        try:
            if self.options.trace_allocations:
                self._attach_alloc_hooks(tracer)
                hooks_attached = True
            previous_switch = sys.getswitchinterval()
            sys.setswitchinterval(
                min(previous_switch,
                    1.0 / max(self.options.hz * 4.0, 1.0)))
            tracer_module.profiling_attach()
            registry_attached = True
            self._stop.clear()
            thread = threading.Thread(
                target=self._sample_loop, name="repro-span-profiler",
                daemon=True)
            assert thread.daemon, \
                "the sampler must never block interpreter shutdown"
            self._thread = thread
            thread.start()
            yield self
        finally:
            self._stop.set()
            if thread is not None and thread.is_alive():
                # A healthy sampler exits within one wait() interval;
                # the timeout only bounds a pathologically wedged one
                # (it is a daemon, so it cannot hang shutdown).
                thread.join(timeout=5.0)
            self._thread = None
            if registry_attached:
                tracer_module.profiling_detach()
            if previous_switch is not None:
                sys.setswitchinterval(previous_switch)
            if hooks_attached:
                self._detach_alloc_hooks(tracer)

    # -- sampling -------------------------------------------------------------

    def _sample_loop(self) -> None:
        interval = 1.0 / max(self.options.hz, 1e-3)
        own_ident = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        paths = tracer_module.active_span_paths()
        frames = sys._current_frames()
        profile = self.profile
        with self._lock:
            profile.ticks += 1
            for ident, path in paths.items():
                if ident == own_ident:
                    continue
                profile.attributed += 1
                profile.span_samples[path] = \
                    profile.span_samples.get(path, 0) + 1
                stack = ";".join(path)
                frame = frames.get(ident)
                if frame is not None:
                    code = _folded_frames(frame,
                                          self.options.max_stack_depth)
                    if code:
                        stack = stack + ";" + code
                profile.folded[stack] = \
                    profile.folded.get(stack, 0) + 1

    # -- tracemalloc span deltas ----------------------------------------------

    def _attach_alloc_hooks(self, tracer: Tracer) -> None:
        import tracemalloc
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        prev_start, prev_end = tracer.on_start, tracer.on_end

        def on_start(span) -> None:
            self._alloc_starts[id(span)] = \
                tracemalloc.get_traced_memory()[0]
            if prev_start is not None:
                prev_start(span)

        def on_end(span) -> None:
            start = self._alloc_starts.pop(id(span), None)
            if start is not None:
                delta = tracemalloc.get_traced_memory()[0] - start
                with self._lock:
                    stats = self.profile.allocations.setdefault(
                        span.name, {"count": 0, "total_bytes": 0})
                    stats["count"] += 1
                    stats["total_bytes"] += delta
            if prev_end is not None:
                prev_end(span)

        self._saved_hooks = (tracer, prev_start, prev_end)
        tracer.on_start = on_start
        tracer.on_end = on_end

    def _detach_alloc_hooks(self, tracer: Tracer) -> None:
        import tracemalloc
        saved_tracer, prev_start, prev_end = self._saved_hooks
        if saved_tracer is tracer:
            tracer.on_start = prev_start
            tracer.on_end = prev_end
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __repr__(self) -> str:
        running = self._thread is not None
        return (f"<SpanProfiler hz={self.options.hz:g} "
                f"{'running' if running else 'idle'}>")


def _folded_frames(frame, max_depth: int) -> str:
    """One thread's python stack as ``mod.func`` frames, root first."""
    names: list[str] = []
    while frame is not None and len(names) < max_depth:
        code = frame.f_code
        module = Path(code.co_filename).stem
        names.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return ";".join(names)


@contextmanager
def profiled(tracer: Tracer, options: ProfileOptions | bool | None):
    """Attach a profiler iff ``options`` asks for one.

    Yields the :class:`SpanProfiler` (or ``None`` when profiling is
    off) — the engine's one call site for the whole feature.
    """
    coerced = coerce_profile(options)
    if coerced is None:
        yield None
        return
    profiler = SpanProfiler(coerced)
    with profiler.attach(tracer):
        yield profiler

"""Prometheus text exposition of a :class:`MetricsRegistry`.

The serving telemetry plane's export surface: every counter, gauge,
histogram and windowed histogram in a registry rendered in the
Prometheus text exposition format (version 0.0.4), served by
:class:`repro.service.telemetry_http.TelemetryServer` at ``/metrics``
and scraped back by ``repro top``.

The repo's metric names are dotted (``cache.plan.hit``,
``slo.latency_ns.point``); rather than mangling each into a bespoke
Prometheus name, the renderer exposes a small set of *generic metric
families* carrying the original name as a label:

* ``repro_counter{name="cache.plan.hit"} 12``
* ``repro_gauge{name="slowlog.threshold_ms"} 100.0``
* ``repro_histogram_count/_sum/_max{name="span.Execute"} ...``
  (lifetime histograms)
* ``repro_window_count/_sum/_max/_rate_per_s{name=...}`` and
  ``repro_window{name=...,quantile="p50|p95|p99"}``
  (rolling windows — the operational latency view)

Per-shard metrics from the sharded serving plane arrive in the
registry as ``shard.<i>.<name>`` (the coordinator's fold — see
:meth:`repro.service.shards.ShardedDatabase.gather_metrics`); the
renderer lifts the shard ordinal into its own label so one family
carries every shard::

* ``repro_counter{name="session.executions",shard="0"} 41``

This keeps the mapping lossless and mechanical in both directions:
:func:`parse_prometheus` reconstructs
``{counters, gauges, histograms, windows}`` dictionaries from the
text (shard labels folded back into the dotted ``shard.<i>.`` form),
so a scraper sees exactly what an in-process reader sees.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

#: the content type ``/metrics`` responses declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: window quantile labels, in rendering order.
WINDOW_QUANTILES = ("p50", "p95", "p99")


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


#: coordinator-folded per-shard metric names: ``shard.<i>.<name>``.
_SHARD_NAME = re.compile(r"^shard\.(\d+)\.(.+)$")


def split_shard_name(name: str) -> tuple[str, str | None]:
    """``shard.<i>.<rest>`` -> ``(rest, "<i>")``; others ``(name,
    None)``.  (``shard.id``/``shard.pid`` have no inner name and stay
    whole.)"""
    match = _SHARD_NAME.match(name)
    if match is None:
        return name, None
    return match.group(2), match.group(1)


def _name_labels(name: str) -> str:
    """The label set for one dotted metric name (shard lifted out)."""
    base, shard = split_shard_name(name)
    labels = f'name="{_escape_label(base)}"'
    if shard is not None:
        labels += f',shard="{shard}"'
    return labels


def _fmt(value: float) -> str:
    """A float rendered without noise (integers stay integral)."""
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(metrics: MetricsRegistry,
                      extra_gauges: dict[str, float] | None = None
                      ) -> str:
    """The registry as Prometheus text exposition (version 0.0.4).

    ``extra_gauges`` lets the HTTP layer add derived values (uptime,
    cache hit ratios) without writing them into the registry first.
    """
    lines: list[str] = []

    counters = metrics.counters()
    lines.append("# TYPE repro_counter counter")
    for name, value in counters.items():
        lines.append(f'repro_counter{{{_name_labels(name)}}} '
                     f"{_fmt(value)}")

    gauges = dict(metrics.gauges())
    if extra_gauges:
        gauges.update(extra_gauges)
    lines.append("# TYPE repro_gauge gauge")
    for name in sorted(gauges):
        lines.append(f'repro_gauge{{{_name_labels(name)}}} '
                     f"{_fmt(gauges[name])}")

    histograms = metrics.histograms()
    for family in ("count", "sum", "max"):
        lines.append(f"# TYPE repro_histogram_{family} gauge")
        key = {"count": "count", "sum": "total", "max": "max"}[family]
        for name, summary in histograms.items():
            lines.append(
                f'repro_histogram_{family}'
                f'{{{_name_labels(name)}}} '
                f"{_fmt(summary[key])}")

    windows = metrics.windows()
    for family in ("count", "sum", "max", "rate_per_s"):
        lines.append(f"# TYPE repro_window_{family} gauge")
        key = {"count": "count", "sum": "total", "max": "max",
               "rate_per_s": "rate_per_s"}[family]
        for name, summary in windows.items():
            lines.append(
                f'repro_window_{family}'
                f'{{{_name_labels(name)}}} '
                f"{_fmt(summary[key])}")
    lines.append("# TYPE repro_window summary")
    for name, summary in windows.items():
        for quantile in WINDOW_QUANTILES:
            value = summary[quantile]
            if value is None:
                continue
            lines.append(
                f'repro_window{{{_name_labels(name)},'
                f'quantile="{quantile}"}} {_fmt(value)}')
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0:
            break
        key = text[i:eq].strip().lstrip(",").strip()
        # value is a quoted string; find its unescaped closing quote.
        j = eq + 2
        while j < len(text):
            if text[j] == "\\":
                j += 2
                continue
            if text[j] == '"':
                break
            j += 1
        labels[key] = _unescape_label(text[eq + 2:j])
        i = j + 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Reconstruct registry-shaped dictionaries from exposition text.

    Returns ``{"counters": {name: value}, "gauges": {...},
    "histograms": {name: {count,total,max}}, "windows": {name:
    {count,total,max,rate_per_s,p50,p95,p99}}}``.  Lines from foreign
    metric families are ignored, so the parser survives a ``/metrics``
    page that grows new families.
    """
    out: dict = {"counters": {}, "gauges": {},
                 "histograms": {}, "windows": {}}
    window_keys = {"count": "count", "sum": "total", "max": "max",
                   "rate_per_s": "rate_per_s"}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.find("{")
        close = line.rfind("}")
        if brace < 0 or close < brace:
            continue
        family = line[:brace]
        labels = _parse_labels(line[brace + 1:close])
        name = labels.get("name")
        if name is None:
            continue
        shard = labels.get("shard")
        if shard is not None:
            name = f"shard.{shard}.{name}"
        try:
            value = float(line[close + 1:].strip())
        except ValueError:
            continue
        if family == "repro_counter":
            out["counters"][name] = int(value)
        elif family == "repro_gauge":
            out["gauges"][name] = value
        elif family.startswith("repro_histogram_"):
            key = family[len("repro_histogram_"):]
            mapped = window_keys.get(key)
            if mapped:
                out["histograms"].setdefault(name, {})[mapped] = value
        elif family == "repro_window":
            quantile = labels.get("quantile")
            if quantile in WINDOW_QUANTILES:
                out["windows"].setdefault(name, {})[quantile] = value
        elif family.startswith("repro_window_"):
            key = family[len("repro_window_"):]
            mapped = window_keys.get(key)
            if mapped:
                out["windows"].setdefault(name, {})[mapped] = value
    return out

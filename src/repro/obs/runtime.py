"""Process-wide telemetry activation for layers without a handle.

Codecs and storage structures sit below the query engine and would need
a telemetry parameter on every signature to report activity.  Instead,
the engine *activates* its telemetry here for the duration of a run;
the deep layers check ``runtime.ACTIVE`` (one module-global load plus
an ``is None`` test — the entire disabled-mode cost) and report through
the helpers below only when someone is listening.

Activation is reentrant and restores the previous telemetry on exit,
so nested engine calls (e.g. ``explain_analyze`` materializing results)
keep a single registry.
"""

from __future__ import annotations

from contextlib import contextmanager

#: the currently active Telemetry, or None when observability is off.
#: Deep layers read this directly: ``if runtime.ACTIVE is not None:``.
ACTIVE = None

#: the currently active WorkloadCapture, or None when workload
#: recording is off.  Same contract as ``ACTIVE``: deep layers guard
#: with ``if runtime.RECORDER is not None:`` — one module-global load
#: plus an ``is None`` test is the entire disabled-mode cost.
RECORDER = None


def active():
    """The currently active :class:`~repro.obs.telemetry.Telemetry`."""
    return ACTIVE


def recorder():
    """The active :class:`~repro.obs.workload.WorkloadCapture`."""
    return RECORDER


@contextmanager
def activated(telemetry):
    """Make ``telemetry`` the active sink while the block runs.

    A disabled (or ``None``) telemetry deactivates for the block —
    the deep layers then skip all reporting.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = telemetry if telemetry is not None and telemetry.enabled \
        else None
    try:
        yield telemetry
    finally:
        ACTIVE = previous


@contextmanager
def recording(capture):
    """Make ``capture`` the active workload sink while the block runs.

    Reentrant like :func:`activated`: the previous capture is restored
    on exit, so nested engine calls each observe their own run.
    """
    global RECORDER
    previous = RECORDER
    RECORDER = capture
    try:
        yield capture
    finally:
        RECORDER = previous


# -- reporting helpers (call only after checking ACTIVE is not None) ----------

def add(counter: str, n: int = 1) -> None:
    """Increment a counter on the active registry (guarded)."""
    if ACTIVE is not None:
        ACTIVE.metrics.add(counter, n)


def observe(histogram: str, value: float) -> None:
    """Record a histogram observation on the active registry (guarded)."""
    if ACTIVE is not None:
        ACTIVE.metrics.observe(histogram, value)


def record_codec(operation: str, codec_name: str,
                 compressed_bytes: int, plain_chars: int) -> None:
    """Report one codec encode/decode: call count and byte totals.

    ``operation`` is ``"encode"`` or ``"decode"``; ``compressed_bytes``
    is the packed payload size, ``plain_chars`` the plaintext length —
    together they give the compressed-vs-decompressed ratios
    ``explain_analyze`` renders.
    """
    metrics = ACTIVE.metrics
    prefix = f"codec.{codec_name}.{operation}"
    metrics.add(prefix + ".calls")
    metrics.add(prefix + ".compressed_bytes", compressed_bytes)
    metrics.add(prefix + ".plain_chars", plain_chars)


def record_page_reads(n: int) -> None:
    """Report B+-tree node visits (the paper's page reads)."""
    ACTIVE.metrics.add("btree.page_reads", n)


@contextmanager
def span(name: str, **attributes):
    """A span on the active tracer, or a no-op when inactive."""
    telemetry = ACTIVE
    if telemetry is None:
        yield None
        return
    with telemetry.span(name, **attributes) as opened:
        yield opened

"""The append-only workload journal: one JSONL line per query run.

The :class:`~repro.obs.workload.WorkloadRecorder` serializes each
finished :class:`~repro.obs.workload.WorkloadRecord` here; the advisor
(:mod:`repro.advisor`) folds the journal back into observed E/I/D
matrices for cost-model drift analysis.

The journal keeps **one** append-mode file handle for its lifetime,
opened lazily on the first append and reused for every subsequent
record — a serving session journalling thousands of queries pays one
``open()`` total, not one per query (and, unlike the earlier
rewrite-the-whole-file scheme, appending is O(record), not
O(journal)).  Each record is a single ``write()`` of one complete
line followed by a flush: appends of that size are atomic on POSIX,
so a crash mid-run can truncate at most the line being written, never
previously journalled history.  Reads tolerate a trailing partial
line for journals written by foreign appenders.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO

#: journal filename suffix, appended to the repository file name.
JOURNAL_SUFFIX = ".workload.jsonl"


def default_journal_path(repository_path: str | Path) -> Path:
    """The journal that rides along a repository file.

    ``auction.xqc`` journals to ``auction.xqc.workload.jsonl`` in the
    same directory, so shipping the repository directory ships its
    observed workload too.
    """
    repository_path = Path(repository_path)
    return repository_path.with_name(repository_path.name
                                     + JOURNAL_SUFFIX)


class WorkloadJournal:
    """Append-only JSONL store of workload records.

    Records are plain JSON-ready dicts (see
    :meth:`repro.obs.workload.WorkloadRecord.to_dict`); the journal
    itself is schema-agnostic so old journals stay readable as the
    record grows fields.
    """

    GUARDED_BY = {"_handle": "_lock", "opens": "_lock"}

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self._lock = threading.Lock()
        #: how many times the backing file has been opened — a serving
        #: session appending N records must report ``opens == 1``.
        self.opens = 0

    def __len__(self) -> int:
        return len(self.records())

    def exists(self) -> bool:
        """True when the journal file is present on disk."""
        return self.path.exists()

    def _file(self) -> IO[str]:  # holds: _lock
        """The persistent append handle (caller holds the lock)."""
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            self.opens += 1
        return self._handle

    def append(self, record: dict) -> None:
        """Append one record as a single atomic line write.

        The line is serialized outside the lock, written in one
        ``write()`` call on the journal's persistent handle, and
        flushed so concurrent readers (and ``records()``) observe it
        immediately.  Thread-safe: concurrent appenders interleave
        whole lines, never tear them.
        """
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            handle = self._file()
            handle.write(line)
            handle.flush()

    def close(self) -> None:
        """Close the persistent handle (reopened lazily if needed)."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "WorkloadJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def records(self, since: str | None = None) -> list[dict]:
        """All journalled records, oldest first.

        ``since`` (an ISO-8601 timestamp string) keeps only records
        whose ``ts`` compares greater-or-equal — ISO timestamps order
        lexicographically, so no datetime parsing is needed.
        Unparseable lines (e.g. a torn tail from a foreign appender)
        are skipped, never fatal.
        """
        if not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text(
                encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if since is not None and record.get("ts", "") < since:
                continue
            out.append(record)
        return out

    def __repr__(self) -> str:
        return f"<WorkloadJournal {str(self.path)!r}>"

"""The append-only workload journal: one JSONL line per query run.

The :class:`~repro.obs.workload.WorkloadRecorder` serializes each
finished :class:`~repro.obs.workload.WorkloadRecord` here; the advisor
(:mod:`repro.advisor`) folds the journal back into observed E/I/D
matrices for cost-model drift analysis.

Writes are atomic: the journal is re-written through a temp file and
``os.replace`` (:func:`repro.util.atomic.atomic_write_text`), so a
query crashing mid-record can never truncate previously journalled
history.  Reads tolerate a trailing partial line for journals written
by foreign appenders.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.atomic import atomic_write_text

#: journal filename suffix, appended to the repository file name.
JOURNAL_SUFFIX = ".workload.jsonl"


def default_journal_path(repository_path: str | Path) -> Path:
    """The journal that rides along a repository file.

    ``auction.xqc`` journals to ``auction.xqc.workload.jsonl`` in the
    same directory, so shipping the repository directory ships its
    observed workload too.
    """
    repository_path = Path(repository_path)
    return repository_path.with_name(repository_path.name
                                     + JOURNAL_SUFFIX)


class WorkloadJournal:
    """Append-only JSONL store of workload records.

    Records are plain JSON-ready dicts (see
    :meth:`repro.obs.workload.WorkloadRecord.to_dict`); the journal
    itself is schema-agnostic so old journals stay readable as the
    record grows fields.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def __len__(self) -> int:
        return len(self.records())

    def exists(self) -> bool:
        """True when the journal file is present on disk."""
        return self.path.exists()

    def append(self, record: dict) -> None:
        """Append one record atomically (temp file + rename).

        The whole journal is staged — current content plus the new
        line — and renamed over the target, so readers never observe a
        torn line and a crash preserves everything already journalled.
        """
        line = json.dumps(record, sort_keys=True, default=str)
        existing = ""
        if self.path.exists():
            existing = self.path.read_text(encoding="utf-8")
            if existing and not existing.endswith("\n"):
                existing += "\n"
        atomic_write_text(self.path, existing + line + "\n")

    def records(self, since: str | None = None) -> list[dict]:
        """All journalled records, oldest first.

        ``since`` (an ISO-8601 timestamp string) keeps only records
        whose ``ts`` compares greater-or-equal — ISO timestamps order
        lexicographically, so no datetime parsing is needed.
        Unparseable lines (e.g. a torn tail from a foreign appender)
        are skipped, never fatal.
        """
        if not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text(
                encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if since is not None and record.get("ts", "") < since:
                continue
            out.append(record)
        return out

    def __repr__(self) -> str:
        return f"<WorkloadJournal {str(self.path)!r}>"

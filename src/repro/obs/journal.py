"""The append-only workload journal: one JSONL line per query run.

The :class:`~repro.obs.workload.WorkloadRecorder` serializes each
finished :class:`~repro.obs.workload.WorkloadRecord` here; the advisor
(:mod:`repro.advisor`) folds the journal back into observed E/I/D
matrices for cost-model drift analysis.

The journal keeps **one** append-mode file handle for its lifetime,
opened lazily on the first append and reused for every subsequent
record — a serving session journalling thousands of queries pays one
``open()`` total, not one per query (and, unlike the earlier
rewrite-the-whole-file scheme, appending is O(record), not
O(journal)).  Each record is a single ``write()`` of one complete
line followed by a flush: appends of that size are atomic on POSIX,
so a crash mid-run can truncate at most the line being written, never
previously journalled history.  Reads tolerate a trailing partial
line for journals written by foreign appenders.

The journal is also **fork-safe**: a child process inheriting an open
journal must not share the parent's buffered text handle (interleaved
or duplicated lines) nor its possibly-held lock (deadlock).  Every
entry point checks the owning PID and, after a fork, re-initializes
the lock and *abandons* the inherited handle without flushing it — any
partial line sitting in the inherited buffer belongs to the parent,
which will write it itself.  The child then lazily opens its own
append handle, whose single-``write()`` lines interleave safely with
the parent's at the file-descriptor level.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import IO

#: journal filename suffix, appended to the repository file name.
JOURNAL_SUFFIX = ".workload.jsonl"


def default_journal_path(repository_path: str | Path) -> Path:
    """The journal that rides along a repository file.

    ``auction.xqc`` journals to ``auction.xqc.workload.jsonl`` in the
    same directory, so shipping the repository directory ships its
    observed workload too.
    """
    repository_path = Path(repository_path)
    return repository_path.with_name(repository_path.name
                                     + JOURNAL_SUFFIX)


class WorkloadJournal:
    """Append-only JSONL store of workload records.

    Records are plain JSON-ready dicts (see
    :meth:`repro.obs.workload.WorkloadRecord.to_dict`); the journal
    itself is schema-agnostic so old journals stay readable as the
    record grows fields.
    """

    GUARDED_BY = {"_handle": "_lock", "opens": "_lock"}

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self._lock = threading.Lock()
        #: how many times the backing file has been opened — a serving
        #: session appending N records must report ``opens == 1``
        #: (per process: a forked child reopens once for itself).
        self.opens = 0
        #: PID that owns ``_handle`` and ``_lock``; a mismatch means
        #: this journal object crossed a fork.
        self._pid = os.getpid()

    def _check_fork(self) -> None:
        """Re-initialize inherited state after a fork.

        Called *before* taking the lock: the inherited lock may be
        stuck-held by a parent thread that no longer exists in this
        process.  Right after ``fork`` the child is single-threaded,
        so replacing the lock first — and swapping the handle under
        the fresh, uncontended replacement — is race-free.  The
        inherited handle
        is dropped via ``os.close`` on its descriptor — never flushed:
        a partial line in its buffer is the parent's in-flight write,
        and flushing it here would duplicate bytes into the file.
        """
        if self._pid == os.getpid():
            return
        self._lock = threading.Lock()
        with self._lock:
            stale = self._handle
            self._handle = None
        self._pid = os.getpid()
        if stale is not None and not stale.closed:
            try:
                os.close(stale.fileno())
            except (OSError, ValueError):
                pass
            try:
                stale.close()  # marks the wrapper closed; the write of
            except (OSError, ValueError):  # its buffer fails on the
                pass  # already-closed descriptor and is discarded

    def __len__(self) -> int:
        return len(self.records())

    def exists(self) -> bool:
        """True when the journal file is present on disk."""
        return self.path.exists()

    def _file(self) -> IO[str]:  # holds: _lock
        """The persistent append handle (caller holds the lock)."""
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            self.opens += 1
        return self._handle

    def append(self, record: dict) -> None:
        """Append one record as a single atomic line write.

        The line is serialized outside the lock, written in one
        ``write()`` call on the journal's persistent handle, and
        flushed so concurrent readers (and ``records()``) observe it
        immediately.  Thread-safe: concurrent appenders interleave
        whole lines, never tear them.
        """
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        self._check_fork()
        with self._lock:
            handle = self._file()
            handle.write(line)
            handle.flush()

    def close(self) -> None:
        """Close the persistent handle (reopened lazily if needed)."""
        self._check_fork()
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "WorkloadJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def records(self, since: str | None = None) -> list[dict]:
        """All journalled records, oldest first.

        ``since`` (an ISO-8601 timestamp string) keeps only records
        whose ``ts`` compares greater-or-equal — ISO timestamps order
        lexicographically, so no datetime parsing is needed.
        Unparseable lines (e.g. a torn tail from a foreign appender)
        are skipped, never fatal.
        """
        if not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text(
                encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if since is not None and record.get("ts", "") < since:
                continue
            out.append(record)
        return out

    def __repr__(self) -> str:
        return f"<WorkloadJournal {str(self.path)!r}>"

"""Runtime lock-order watchdog: the dynamic half of Tier C.

The static analyzer (:mod:`repro.lint.concurrency`) proves what lock
orders *can* happen from the source; this module observes what orders
*do* happen in a live process and cross-checks the two.  It is opt-in
and proxy-based, like the profiler's span registry: attach a
:class:`LockOrderWatchdog`, wrap the locks you care about (or a whole
:class:`~repro.service.session.Session` via :func:`watch_session`),
run the workload, then ask the watchdog what it saw:

* :meth:`LockOrderWatchdog.violations` — acquisition-order inversions
  actually witnessed: thread A took ``x`` then ``y`` while some thread
  earlier took ``y`` then ``x``.  Under a deterministic schedule (the
  ``tests/concurrency`` harness) these are pinned regressions, not
  flaky warnings;
* :meth:`LockOrderWatchdog.novel_edges` — observed orders the static
  graph has no edge for.  Each one is an analyzer blind spot (dynamic
  dispatch, a callback, monkey-patching) worth a ``GUARDED_BY`` or
  ``# holds:`` annotation;
* :meth:`LockOrderWatchdog.observed_edges` — the raw per-thread
  acquisition orders, for the DESIGN lock-hierarchy table.

The watchdog never changes blocking behaviour: a :class:`WatchedLock`
forwards ``acquire``/``release``/``with`` to the wrapped primitive and
only records bookkeeping *after* the real acquire succeeds, so timing
shifts but lock semantics (including ``RLock`` reentrancy) do not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "LockOrderViolation",
    "LockOrderWatchdog",
    "WatchedLock",
    "watch_session",
]


@dataclass(frozen=True)
class LockOrderViolation:
    """One witnessed inversion: ``edge`` contradicts ``inverse``."""

    edge: tuple[str, str]
    inverse: tuple[str, str]
    thread: str

    def describe(self) -> str:
        return (f"lock-order inversion: thread {self.thread!r} took "
                f"{self.edge[0]} -> {self.edge[1]}, but "
                f"{self.inverse[0]} -> {self.inverse[1]} was also "
                "observed")


class WatchedLock:
    """A forwarding proxy reporting acquire/release to the watchdog.

    Supports the full lock protocol (``with``, ``acquire(blocking,
    timeout)``, ``release``, ``locked``) so it can replace a
    ``threading.Lock``/``RLock`` attribute in place.
    """

    __slots__ = ("identity", "_inner", "_watchdog")

    def __init__(self, inner, identity: str,
                 watchdog: "LockOrderWatchdog"):
        self.identity = identity
        self._inner = inner
        self._watchdog = watchdog

    @property
    def wrapped(self):
        """The real primitive underneath."""
        return self._inner

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog._note_acquire(self.identity)
        return acquired

    def release(self) -> None:
        self._watchdog._note_release(self.identity)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<WatchedLock {self.identity} over {self._inner!r}>"


class LockOrderWatchdog:
    """Records per-thread lock acquisition orders at runtime.

    ``static_edges`` is the analyzer's acquisition graph
    (:meth:`repro.lint.concurrency.ConcurrencyReport.static_edges`);
    when given, :meth:`novel_edges` reports what the analyzer missed.
    All bookkeeping lives behind one internal lock that is only ever
    taken *last* (nothing is called while holding it), keeping the
    watchdog itself at the bottom of the hierarchy it audits.
    """

    GUARDED_BY = {
        "_held": "_lock",
        "_observed": "_lock",
        "_violations": "_lock",
    }

    def __init__(self, static_edges: Iterable[tuple[str, str]]
                 | None = None):
        self.static = set(static_edges) if static_edges is not None \
            else None
        self._lock = threading.Lock()
        #: thread ident -> stack of (identity, depth) acquisitions.
        self._held: dict[int, list[list]] = {}
        #: every (outer, inner) order witnessed, with a sample thread.
        self._observed: dict[tuple[str, str], str] = {}
        self._violations: list[LockOrderViolation] = []
        #: (obj, attr, original) replacements to undo on unwatch_all.
        self._wrapped: list[tuple[object, str, object]] = []

    # -- wrapping -------------------------------------------------------------

    def wrap(self, lock, identity: str) -> WatchedLock:
        """A watched proxy over ``lock`` (the caller installs it)."""
        if isinstance(lock, WatchedLock):
            return lock
        return WatchedLock(lock, identity, self)

    def watch(self, obj, attr: str, identity: str) -> WatchedLock:
        """Replace ``obj.attr`` with a watched proxy in place.

        Safe only while the lock is *unheld* (watch at setup time, not
        mid-workload); undone by :meth:`unwatch_all`.
        """
        original = getattr(obj, attr)
        proxy = self.wrap(original, identity)
        if proxy is not original:
            setattr(obj, attr, proxy)
            self._wrapped.append((obj, attr, original))
        return proxy

    def unwatch_all(self) -> None:
        """Restore every attribute :meth:`watch` replaced."""
        while self._wrapped:
            obj, attr, original = self._wrapped.pop()
            setattr(obj, attr, original)

    def __enter__(self) -> "LockOrderWatchdog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unwatch_all()

    # -- recording (called by WatchedLock) ------------------------------------

    def _note_acquire(self, identity: str) -> None:
        ident = threading.get_ident()
        name = threading.current_thread().name
        with self._lock:
            stack = self._held.setdefault(ident, [])
            for entry in stack:
                if entry[0] == identity:
                    entry[1] += 1  # reentrant re-acquire: no new edge.
                    return
            for outer, _depth in stack:
                edge = (outer, identity)
                if edge not in self._observed:
                    self._observed[edge] = name
                    inverse = (identity, outer)
                    if inverse in self._observed:
                        self._violations.append(LockOrderViolation(
                            edge=edge, inverse=inverse, thread=name))
            stack.append([identity, 1])

    def _note_release(self, identity: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            stack = self._held.get(ident, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] == identity:
                    stack[index][1] -= 1
                    if stack[index][1] == 0:
                        del stack[index]
                    return

    # -- findings -------------------------------------------------------------

    def observed_edges(self) -> set[tuple[str, str]]:
        """Every (outer, inner) acquisition order witnessed so far."""
        with self._lock:
            return set(self._observed)

    def violations(self) -> list[LockOrderViolation]:
        """Witnessed inversions, in discovery order."""
        with self._lock:
            return list(self._violations)

    def novel_edges(self) -> set[tuple[str, str]]:
        """Observed orders the static graph has no edge for.

        Empty when no static graph was provided: there is nothing to
        cross-check against.
        """
        if self.static is None:
            return set()
        return {edge for edge in self.observed_edges()
                if edge not in self.static}

    def report(self) -> dict:
        """JSON-ready summary (edges, violations, cross-check)."""
        return {
            "observed_edges": sorted(
                list(edge) for edge in self.observed_edges()),
            "violations": [v.describe() for v in self.violations()],
            "novel_edges": sorted(
                list(edge) for edge in self.novel_edges()),
        }

    def __repr__(self) -> str:
        return (f"<LockOrderWatchdog "
                f"{len(self.observed_edges())} edges, "
                f"{len(self.violations())} violations>")


def watch_session(watchdog: LockOrderWatchdog, session) -> None:
    """Wrap the serving layer's inventoried locks on one session.

    Covers the locks the Tier-C analyzer names in its DESIGN
    hierarchy: both session locks, both cache locks, the metrics
    registry, and (when present) the recorder and its journal.  Undo
    with ``watchdog.unwatch_all()``.
    """
    watchdog.watch(session, "_activation_lock",
                   "Session._activation_lock")
    watchdog.watch(session, "_engine_lock", "Session._engine_lock")
    watchdog.watch(session.plan_cache, "_lock", "PlanCache._lock")
    watchdog.watch(session.block_cache, "_lock", "BlockCache._lock")
    watchdog.watch(session.metrics, "_lock", "MetricsRegistry._lock")
    if session.recorder is not None:
        watchdog.watch(session.recorder, "_count_lock",
                       "WorkloadRecorder._count_lock")
        watchdog.watch(session.recorder.journal, "_lock",
                       "WorkloadJournal._lock")

"""Exception hierarchy for the XQueC reproduction.

Every error raised by the library derives from :class:`XQueCError`, so that
callers can catch one base class.  Sub-hierarchies mirror the package layout:
XML parsing, compression codecs, the storage layer, and the query processor
each own a branch.
"""

from __future__ import annotations


class XQueCError(Exception):
    """Base class of every exception raised by this library."""


class XMLError(XQueCError):
    """Base class for XML tokenizing/parsing problems."""


class XMLSyntaxError(XMLError):
    """Malformed XML input.

    Carries the byte/char offset and (line, column) of the offending input
    so that callers can point at the problem.
    """

    def __init__(self, message: str, offset: int = -1,
                 line: int = -1, column: int = -1):
        location = ""
        if line >= 0:
            location = f" at line {line}, column {column}"
        elif offset >= 0:
            location = f" at offset {offset}"
        super().__init__(f"{message}{location}")
        self.offset = offset
        self.line = line
        self.column = column


class CompressionError(XQueCError):
    """Base class for codec failures."""


class CodecDomainError(CompressionError):
    """A value outside the domain the codec's source model was built for."""


class CorruptDataError(CompressionError):
    """Compressed bytes do not decode under the given source model."""


class UnknownCodecError(CompressionError):
    """A codec name that is not present in the registry."""


class StorageError(XQueCError):
    """Base class for repository/storage-layer failures."""


class PageError(StorageError):
    """A page file is corrupt, truncated, or carries a bad checksum."""


class NodeNotFoundError(StorageError):
    """A node id that does not exist in the structure tree."""


class ContainerNotFoundError(StorageError):
    """A container path that does not exist in the repository."""


class ServiceError(XQueCError):
    """Base class for serving-plane failures."""


class AdmissionError(ServiceError):
    """The coordinator refused a query: the serving plane is at its
    global in-flight limit or the client exhausted its quota."""


class ShardError(ServiceError):
    """A shard worker failed, died mid-request, or returned a reply
    the coordinator could not decode."""


class QueryError(XQueCError):
    """Base class for query-processing failures."""


class QuerySyntaxError(QueryError):
    """The XQuery text failed to lex or parse."""

    def __init__(self, message: str, position: int = -1):
        location = f" at position {position}" if position >= 0 else ""
        super().__init__(f"{message}{location}")
        self.position = position


class QueryTypeError(QueryError):
    """An operation was applied to a value of the wrong kind."""


class UnsupportedFeatureError(QueryError):
    """The query uses XQuery syntax outside the supported subset."""


class PlanError(QueryError):
    """The optimizer could not build a physical plan for the query."""


class PlanVerificationError(PlanError):
    """The static plan verifier found error-severity violations.

    Raised before a single row flows; ``diagnostics`` carries every
    :class:`repro.lint.PlanDiagnostic` of the failed verification
    (warnings included, for context).
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == "error"]
        lines = [f"plan verification failed "
                 f"({len(errors)} error(s)):"]
        lines += [f"  [{d.rule}] {d.operator_path}: {d.message}"
                  for d in errors]
        super().__init__("\n".join(lines))

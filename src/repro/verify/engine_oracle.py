"""Engine-layer differential oracle.

Runs generated documents × generated queries through two evaluation
paths and diffs the outcomes:

* **compressed-domain** — :class:`~repro.query.engine.QueryEngine`
  over :func:`~repro.storage.loader.load_document`, once with the
  default (ALM) string codec and once forcing Huffman, so both the
  order-preserving and the prefix-code fast paths are exercised;
* **decompress-first reference** — the repository is fully
  reconstructed to XML (``materialize_node`` + serialize) and the
  query is evaluated by the naive plaintext
  :class:`~repro.baselines.galax.GalaxEngine`.

Agreement means byte-equal serialized results, or the same
:class:`~repro.errors.XQueCError` subclass when both sides raise.  A
mismatch is delta-debugged to a minimal entity list and blamed on the
containers the compressed run touched (with their codecs) and the
access-path operator involved.
"""

from __future__ import annotations

import random

from repro.baselines.galax import GalaxEngine
from repro.errors import XQueCError
from repro.obs import runtime
from repro.query.context import EvaluationStats
from repro.query.engine import QueryEngine
from repro.query.options import ExecutionOptions
from repro.storage.loader import load_document
from repro.verify.documents import (
    entity_list,
    from_entity_list,
    generate_entities,
    render_xml,
)
from repro.verify.minimize import ddmin
from repro.verify.queries import generate_queries
from repro.verify.report import Mismatch, VerifyReport
from repro.xmlio.writer import serialize

#: string-codec variants the compressed path runs under.
VARIANTS = ("alm", "huffman")


class _BlameRecorder:
    """Collects the container activity of one compressed run.

    Implements the subset of the workload-capture interface the deep
    layers call (``record_access``/``record_predicate``); anything else
    is a no-op so future recorder methods cannot break the oracle.
    """

    def __init__(self):
        self.accesses: list[tuple[str, str]] = []
        self.predicates: list[tuple[str, str]] = []

    def record_access(self, path: str, kind: str) -> None:
        self.accesses.append((path, kind))

    def record_predicate(self, path: str, kind: str) -> None:
        self.predicates.append((path, kind))

    def __getattr__(self, name: str):
        return lambda *args, **kwargs: None


def _outcome(run) -> tuple[str, str]:
    """Categorized result: ("ok", xml) / ("error", ExcName) / crash."""
    try:
        return ("ok", run())
    except XQueCError as exc:
        return ("error", type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 — crash parity is the point
        return ("crash", f"{type(exc).__name__}: {exc}")


def _reference_xml(repository) -> str:
    """The forced decompress-first document text."""
    engine = QueryEngine(repository)
    return serialize(engine.materialize_node(0, EvaluationStats()))


def _run_pair(xml: str, query: str, codec_variant: str,
              recorder: _BlameRecorder | None = None,
              batch_size: int | None = None
              ) -> tuple[tuple[str, str], tuple[str, str]]:
    repository = load_document(xml, default_string_codec=codec_variant)
    engine = QueryEngine(repository)
    options = ExecutionOptions(batch_size=batch_size)

    def compressed():
        if recorder is None:
            return engine.execute(query, options).to_xml()
        with runtime.recording(recorder):
            return engine.execute(query, options).to_xml()

    compressed_outcome = _outcome(compressed)
    reference = GalaxEngine(_reference_xml(repository))
    reference_outcome = _outcome(lambda: reference.execute_to_xml(query))
    return compressed_outcome, reference_outcome


def _blame(xml: str, query: str, codec_variant: str,
           batch_size: int | None = None
           ) -> tuple[str, str | None, str | None]:
    """(codec, container, plan node) the mismatching run touched."""
    recorder = _BlameRecorder()
    try:
        _run_pair(xml, query, codec_variant, recorder=recorder,
                  batch_size=batch_size)
        repository = load_document(xml,
                                   default_string_codec=codec_variant)
    except Exception:  # noqa: BLE001 — blame is best-effort
        return (codec_variant, None, None)
    paths = {path for path, _ in recorder.accesses}
    paths |= {path for path, _ in recorder.predicates}
    codecs = sorted({
        repository.container(path).codec.name
        for path in paths if path in repository.containers})
    container = ",".join(sorted(paths)) if paths else None
    kinds = {kind for _, kind in recorder.accesses}
    if recorder.predicates or "interval_searches" in kinds:
        plan_node = "ContAccess"
    elif "scans" in kinds:
        plan_node = "ContScan+Select"
    elif "record_reads" in kinds:
        plan_node = "TextContent/Decompress"
    else:
        plan_node = None
    return (",".join(codecs) or codec_variant, container, plan_node)


def check_document(entities: dict, queries: list[str],
                   report: VerifyReport,
                   batch_size: int | None = None) -> None:
    """Diff every query over one document, under every codec variant."""
    xml = render_xml(entities)
    for codec_variant in VARIANTS:
        for query in queries:
            report.checks_run += 1
            compressed, reference = _run_pair(xml, query, codec_variant,
                                              batch_size=batch_size)
            if compressed == reference:
                continue
            minimal = _minimize(entities, query, codec_variant,
                                batch_size=batch_size)
            minimal_xml = render_xml(minimal)
            codec, container, plan_node = _blame(
                minimal_xml, query, codec_variant,
                batch_size=batch_size)
            final_c, final_r = _run_pair(minimal_xml, query,
                                         codec_variant,
                                         batch_size=batch_size)
            report.add(Mismatch(
                layer="engine", check="query", codec=codec,
                container=container, plan_node=plan_node,
                description=(
                    f"compressed {final_c} != reference {final_r} "
                    f"(variant={codec_variant})"),
                reproducer={"query": query, "xml": minimal_xml,
                            "variant": codec_variant,
                            "compressed": list(final_c),
                            "reference": list(final_r)}))


def _minimize(entities: dict, query: str, codec_variant: str,
              batch_size: int | None = None) -> dict:
    """Delta-debug the entity list for one mismatching query."""
    def fails(pairs: list) -> bool:
        subset_xml = render_xml(from_entity_list(pairs))
        compressed, reference = _run_pair(subset_xml, query,
                                          codec_variant,
                                          batch_size=batch_size)
        return compressed != reference

    full = entity_list(entities)
    if not fails(full):   # non-reproducible (should not happen)
        return entities
    return from_entity_list(ddmin(full, fails, max_attempts=400))


def run_engine_oracle(seed: int, docs: int = 25, queries: int = 40,
                      scale: int = 10, progress=None,
                      batch_size: int | None = None) -> VerifyReport:
    """Engine oracle over ``docs`` generated documents.

    ``batch_size`` pins the compressed path to one batch width (``1``
    forces the legacy row path); ``None`` runs the engine default.
    """
    report = VerifyReport(seed=seed)
    for doc_index in range(docs):
        rng = random.Random(f"{seed}/doc/{doc_index}")
        entities = generate_entities(rng, scale=scale)
        doc_queries = generate_queries(entities, rng, queries)
        check_document(entities, doc_queries, report,
                       batch_size=batch_size)
        if progress is not None:
            progress(doc_index + 1, docs, report)
    return report

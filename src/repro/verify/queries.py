"""Query-template generation for the engine oracle.

Templates cover every compressed-domain decision the engine makes:
point equality and range predicates with *numeric* and with *string*
constants, over string and numeric containers (each combination picks
a different fast path or fallback); variable-to-variable comparisons
under one shared source model; ``starts-with`` (the ``wild``
predicate) at arbitrary codeword boundaries; joins; aggregates over
numeric and mixed containers; ``order by``; ``distinct-values`` across
containers.  Constants are drawn from the document's own value pools
plus adversarial neighbours (absent values, fractional bounds over int
containers, the empty string).
"""

from __future__ import annotations

import random


def _pools(entities: dict) -> dict[str, list[str]]:
    people = entities["people"]
    items = entities["items"]
    auctions = entities["auctions"]
    names = [p["name"] for p in people] or [""]
    ages = [p["age"] for p in people] or ["0"]
    cities = [p["city"] for p in people] or [""]
    prices = [a["price"] for a in auctions] or ["1"]
    descriptions = [i["description"] for i in items] or ["gold"]
    return {"names": names, "ages": ages, "cities": cities,
            "prices": prices, "descriptions": descriptions,
            "ids": [p["id"] for p in people] or ["p0"]}


def _string_constant(rng: random.Random, pool: list[str]) -> str:
    choice = rng.random()
    if choice < 0.5:
        return rng.choice(pool)
    if choice < 0.65:
        return ""
    if choice < 0.8:
        base = rng.choice(pool)
        return base[:max(len(base) - 1, 0)] + "z"   # absent neighbour
    return rng.choice(pool)[:2]                      # shared prefix


def _number_constant(rng: random.Random, pool: list[str]) -> str:
    base = rng.choice(pool)
    try:
        anchor = float(base)
    except ValueError:
        anchor = 10.0
    choice = rng.random()
    if choice < 0.4:
        return base                          # exact endpoint
    if choice < 0.7:
        return repr(anchor + 0.5)            # fractional over ints
    return str(int(anchor) + rng.choice((-3, 7)))


_OPS = ("=", "!=", "<", "<=", ">", ">=")


def generate_queries(entities: dict, rng: random.Random,
                     count: int) -> list[str]:
    """``count`` template instantiations for one document."""
    pools = _pools(entities)
    queries: list[str] = []
    makers = (
        lambda: (f'for $p in /site/people/person where '
                 f'$p/age/text() {rng.choice(_OPS)} '
                 f'{_number_constant(rng, pools["ages"])} '
                 f'return $p/@id'),
        lambda: (f'for $p in /site/people/person where '
                 f'$p/age/text() {rng.choice(_OPS)} '
                 f'"{_string_constant(rng, pools["ages"])}" '
                 f'return $p/@id'),
        lambda: (f'for $p in /site/people/person where '
                 f'$p/name/text() {rng.choice(_OPS)} '
                 f'"{_string_constant(rng, pools["names"])}" '
                 f'return $p/@id'),
        lambda: (f'for $a in /site/closed_auctions/auction where '
                 f'$a/price/text() {rng.choice(_OPS)} '
                 f'{_number_constant(rng, pools["prices"])} '
                 f'return $a/quantity/text()'),
        lambda: (f'for $p in /site/people/person where '
                 f'$p/income/text() {rng.choice(_OPS)} '
                 f'{_number_constant(rng, pools["ages"])} '
                 f'return $p/@id'),
        lambda: (f'/site/people/person[starts-with(name/text(), '
                 f'"{_string_constant(rng, pools["names"])}")]/@id'),
        lambda: (f'count(/site/regions/item[contains('
                 f'description/text(), '
                 f'"{_string_constant(rng, pools["descriptions"])[:4]}"'
                 f')])'),
        lambda: ('for $a in /site/people/person '
                 'for $b in /site/people/person where '
                 f'$a/name/text() {rng.choice(("<", "<=", "=", ">"))} '
                 '$b/name/text() return $a/@id'),
        lambda: ('for $a in /site/people/person '
                 'for $b in /site/people/person where '
                 f'$a/age/text() {rng.choice(("<", ">="))} '
                 '$b/age/text() return $b/@id'),
        lambda: ('for $a in /site/closed_auctions/auction '
                 'for $p in /site/people/person where '
                 '$a/buyer/text() = $p/@id '
                 'return $p/name/text()'),
        lambda: ('for $p in /site/people/person order by '
                 f'$p/{rng.choice(("name", "age", "city"))}/text() '
                 'return $p/@id'),
        lambda: rng.choice((
            'sum(/site/closed_auctions/auction/price/text())',
            'sum(/site/closed_auctions/auction/quantity/text())',
            'avg(/site/people/person/age/text())',
            'min(/site/people/person/income/text())',
            'max(/site/people/person/age/text())')),
        lambda: ('distinct-values((/site/people/person/name/text(), '
                 '/site/people/person/city/text(), '
                 f'"{rng.choice(pools["names"])}"))'),
        lambda: (f'for $p in /site/people/person where '
                 f'starts-with($p/city/text(), '
                 f'"{_string_constant(rng, pools["cities"])}") '
                 f'return $p/name/text()'),
        lambda: ('for $a in /site/closed_auctions/auction return '
                 f'$a/price/text() * {rng.randint(1, 3)} + '
                 f'$a/quantity/text()'),
        lambda: (f'count(/site/people/person[age/text() '
                 f'{rng.choice(_OPS)} '
                 f'{_number_constant(rng, pools["ages"])}])'),
        lambda: (f'/site/people/person[@id = '
                 f'"{rng.choice(pools["ids"])}"]/name/text()'),
        lambda: ('for $p in /site/people/person where '
                 'empty($p/name/text()) return $p/@id'),
        lambda: ('string-length(/site/people/person[1]/name/text())'),
        lambda: ('for $p in /site/people/person where '
                 f'$p/age/text() {rng.choice(("<", ">="))} '
                 '$p/city/text() return $p/@id'),
    )
    while len(queries) < count:
        queries.append(rng.choice(makers)())
    return queries

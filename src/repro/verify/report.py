"""Verification results: mismatch records, reports, counterexample corpus.

A :class:`Mismatch` is one verified disagreement between the
compressed-domain evaluation and the plaintext reference, already
minimized and annotated with the codec, container and plan node
responsible.  A :class:`VerifyReport` aggregates a whole oracle run;
:func:`write_corpus` dumps the minimized reproducers as JSON files (the
artifact CI uploads when the ``verify-oracle`` job fails).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Mismatch:
    """One minimized compressed-vs-plaintext disagreement."""

    layer: str                 #: ``"codec"`` or ``"engine"``
    check: str                 #: e.g. ``"round-trip"``, ``"wild"``, ``"query"``
    codec: str                 #: codec name(s) involved
    description: str           #: human-readable one-liner
    container: str | None = None   #: container path, when one is known
    plan_node: str | None = None   #: physical operator blamed
    reproducer: dict = field(default_factory=dict)  #: minimized repro input

    def as_dict(self) -> dict:
        return {
            "layer": self.layer,
            "check": self.check,
            "codec": self.codec,
            "container": self.container,
            "plan_node": self.plan_node,
            "description": self.description,
            "reproducer": self.reproducer,
        }

    def headline(self) -> str:
        where = f" container={self.container}" if self.container else ""
        node = f" plan={self.plan_node}" if self.plan_node else ""
        return (f"[{self.layer}/{self.check}] codec={self.codec}"
                f"{where}{node}: {self.description}")


@dataclass
class VerifyReport:
    """Aggregate outcome of one oracle run."""

    seed: int
    checks_run: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def add(self, mismatch: Mismatch) -> None:
        self.mismatches.append(mismatch)

    def merge(self, other: "VerifyReport") -> None:
        self.checks_run += other.checks_run
        self.mismatches.extend(other.mismatches)
        self.notes.extend(other.notes)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "checks_run": self.checks_run,
            "ok": self.ok,
            "mismatches": [m.as_dict() for m in self.mismatches],
            "notes": self.notes,
        }, indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [f"verify: seed={self.seed} checks={self.checks_run} "
                 f"mismatches={len(self.mismatches)}"]
        lines += [f"  note: {note}" for note in self.notes]
        for mismatch in self.mismatches:
            lines.append("  " + mismatch.headline())
            for key, value in sorted(mismatch.reproducer.items()):
                rendered = repr(value)
                if len(rendered) > 200:
                    rendered = rendered[:200] + "…"
                lines.append(f"    {key}: {rendered}")
        if self.ok:
            lines.append("  all compressed-domain results match the "
                         "plaintext reference")
        return "\n".join(lines)


def write_corpus(report: VerifyReport, directory: Path) -> list[Path]:
    """Dump each minimized counterexample as one JSON file.

    Returns the paths written; also writes a ``summary.json`` with the
    whole report so the CI artifact is self-contained.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for index, mismatch in enumerate(report.mismatches):
        path = directory / (f"counterexample-{index:03d}-"
                            f"{mismatch.layer}-{mismatch.check}.json")
        path.write_text(json.dumps(mismatch.as_dict(), indent=2,
                                   sort_keys=True), encoding="utf-8")
        written.append(path)
    summary = directory / "summary.json"
    summary.write_text(report.to_json(), encoding="utf-8")
    written.append(summary)
    return written

"""Adversarial value-set generation for the codec oracle.

Each generator is deterministic in its :class:`random.Random` instance
and skews toward the inputs that historically break codecs:

* the empty string, and values sharing long common prefixes (the cases
  that stress prefix-``wild`` bit alignment and ALM's dictionary-token
  segmentation);
* non-ASCII text (multi-byte UTF-8 has no special status in the
  codecs: everything is per-character code assignment);
* boundary numerics: zeros, sign changes, adjacent integers, canonical
  vs non-canonical float text, huge magnitudes.
"""

from __future__ import annotations

import random

#: small alphabets make shared prefixes and mid-codeword boundaries
#: overwhelmingly likely.
_ALPHABETS = (
    "ab",
    "abc",
    "abz",
    " ab",           # leading/embedded spaces
    "aàé",           # Latin + accented (2-byte UTF-8)
    "a日本",          # ASCII + CJK (3-byte UTF-8)
    "01.",           # numeric-looking strings that are NOT numbers
)

_SEED_STRINGS = (
    "", "a", "aa", "aaa", "ab", "aba", "abb", "b", "ba",
    "café", "naïve", "日本語", "Ωmega", "über",
    "007", "1e3", "-0", "3.14", " 7", "7 ",
)


def string_values(rng: random.Random, count: int) -> list[str]:
    """An adversarial multiset of strings (duplicates intended)."""
    alphabet = rng.choice(_ALPHABETS)
    values = list(rng.sample(_SEED_STRINGS, k=min(8, len(_SEED_STRINGS))))
    while len(values) < count:
        length = rng.randint(0, 6)
        word = "".join(rng.choice(alphabet) for _ in range(length))
        values.append(word)
        # Shared-prefix pressure: extend an existing value half the time.
        if values and rng.random() < 0.5:
            base = rng.choice(values)
            values.append(base + rng.choice(alphabet))
    rng.shuffle(values)
    return values[:max(count, 1)]


def int_values(rng: random.Random, count: int) -> list[str]:
    """Canonical integer texts with boundary clustering."""
    seeds = [0, 1, -1, 2, 9, 10, 99, 100, -100,
             2**31 - 1, -2**31, 2**63, rng.randint(-10**6, 10**6)]
    values = [str(rng.choice(seeds)) for _ in range(max(count // 2, 4))]
    anchor = rng.randint(-50, 50)
    values += [str(anchor + delta)
               for delta in range(min(count - len(values), 8))]
    while len(values) < count:
        values.append(str(rng.randint(-10**4, 10**4)))
    rng.shuffle(values)
    return values


def float_values(rng: random.Random, count: int) -> list[str]:
    """Canonical float texts (``repr`` round-trip) with boundaries."""
    seeds = [0.0, 0.5, -0.5, 1.5, -1.5, 0.1, -0.1,
             1e-07, 1e15, -1e15, 123456.75]
    values = [repr(rng.choice(seeds)) for _ in range(max(count // 2, 4))]
    while len(values) < count:
        values.append(repr(round(rng.uniform(-1000, 1000), 3)))
    rng.shuffle(values)
    return values


def prefix_probes(values: list[str], rng: random.Random,
                  limit: int = 40) -> list[str]:
    """Probe prefixes for the ``wild`` check.

    Every prefix of every (sampled) value — so true matches at every
    codeword boundary — plus near-misses: a true prefix with its last
    character swapped, which shares leading code *bits* without being a
    string prefix (the false-positive trap).
    """
    probes: set[str] = {""}
    alphabet = sorted({ch for v in values for ch in v})
    pool = list(values)
    rng.shuffle(pool)
    for value in pool[:12]:
        for end in range(1, len(value) + 1):
            probes.add(value[:end])
            if alphabet:
                swapped = value[:end - 1] + rng.choice(alphabet)
                probes.add(swapped)
    if alphabet:
        probes.add(rng.choice(alphabet) * 9)   # longer than any value
    probes.add("ÿ")                       # outside most models
    out = sorted(probes)
    rng.shuffle(out)
    return out[:limit]


def interval_bounds(values: list[str], value_type: str,
                    rng: random.Random, limit: int = 14
                    ) -> list[str | None]:
    """Interval-bound candidates for the ``interval_search`` check.

    Present values (endpoints must hit records exactly), absent
    neighbours, the empty string, and — for numeric containers — bound
    text in the *other* numeric shape: fractional bounds over int
    containers, integer-shaped text over float containers.
    """
    bounds: list[str | None] = [None]
    pool = list(values)
    rng.shuffle(pool)
    bounds += pool[:4]
    if value_type == "int":
        anchors = [int(v) for v in pool[:3]] or [0]
        bounds += [repr(anchor + 0.5) for anchor in anchors[:2]]
        bounds += [str(max(anchors) + 10**7), str(min(anchors) - 10**7)]
    elif value_type == "float":
        anchors = [float(v) for v in pool[:3]] or [0.0]
        bounds += [str(int(anchor) + 1) for anchor in anchors[:2]]
        bounds += ["0", repr(max(anchors) + 1e8)]
    else:
        bounds += [""]
        if pool:
            base = pool[0]
            bounds += [base + "", base[:-1] if base else "z"]
        bounds += ["m"]
    seen: set = set()
    unique: list[str | None] = []
    for bound in bounds:
        if bound not in seen:
            seen.add(bound)
            unique.append(bound)
    return unique[:limit]

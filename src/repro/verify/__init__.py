"""Differential correctness oracle for compressed-domain evaluation.

The paper's central claim (§3–§4) is that predicates run *in the
compressed domain* — Huffman ``eq``/``wild``, ALM ``eq``/``ineq``,
binary search over sorted compressed containers — and that only final
results decompress.  This package proves those paths agree with
plaintext evaluation, at two layers:

* the **codec oracle** (:mod:`repro.verify.codec_oracle`) exercises
  every registered codec with adversarial value sets and checks
  round-trip identity, order preservation, every advertised
  ``eq``/``ineq``/``wild`` predicate, and
  :meth:`~repro.storage.containers.ValueContainer.interval_search`
  end-point semantics against a plaintext reference;
* the **engine oracle** (:mod:`repro.verify.engine_oracle`) runs
  generated XMark-ish documents × generated query templates through
  the compressed-domain :class:`~repro.query.engine.QueryEngine` and
  through a forced decompress-first reference path
  (:class:`~repro.baselines.galax.GalaxEngine` over the reconstructed
  document), and diffs the results.

Failures are delta-debugged down to minimal value sets / documents
(:mod:`repro.verify.minimize`) and reported with the codec, container
and plan node responsible (:mod:`repro.verify.report`).  The ``repro
verify`` CLI subcommand and the ``verify-oracle`` CI job drive
:func:`repro.verify.runner.run_verify` with a fixed seed.
"""

from repro.verify.codec_oracle import run_codec_oracle
from repro.verify.engine_oracle import run_engine_oracle
from repro.verify.minimize import ddmin
from repro.verify.report import Mismatch, VerifyReport, write_corpus
from repro.verify.runner import run_verify

__all__ = [
    "Mismatch",
    "VerifyReport",
    "ddmin",
    "run_codec_oracle",
    "run_engine_oracle",
    "run_verify",
    "write_corpus",
]

"""Codec-layer differential oracle.

For every codec in the registry this checks, against a plaintext
reference computed with ordinary Python string/number operations:

* **round-trip** — ``decode(encode(v)) == v`` and encoding is
  deterministic (compressed-domain ``eq`` relies on it);
* **eq** — when the codec advertises ``eq``: bit-equality of encodings
  iff value equality, and ``try_encode(c) is None`` implies ``c`` was
  not a trained value;
* **ineq** — when the codec advertises ``ineq`` (order preservation):
  sorting by compressed value equals sorting by the plaintext key
  (lexicographic for string codecs, numeric for ``integer``/``float``);
* **wild** — when the codec advertises ``wild``: the bit-prefix test
  :meth:`~repro.compression.base.CompressedValue.starts_with` agrees
  with ``str.startswith`` for every (value, probe) pair, including
  probes whose code ends mid-codeword and mid-byte;
* **interval** — a :class:`~repro.storage.containers.ValueContainer`
  sealed with the codec answers ``interval_search`` exactly like a
  plaintext filter, for every inclusive/exclusive bound combination,
  ``None`` (unbounded) and empty-string bounds, and numeric bounds in
  the "wrong" text shape (fractional over int containers, ``"7"`` over
  float containers).

A failing check is delta-debugged to a minimal value set before being
reported.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.compression.base import Codec
from repro.compression.registry import available_codecs, train_codec
from repro.errors import XQueCError
from repro.storage.containers import ValueContainer
from repro.verify.minimize import ddmin
from repro.verify.report import Mismatch, VerifyReport
from repro.verify.values import (
    float_values,
    int_values,
    interval_bounds,
    prefix_probes,
    string_values,
)

#: elementary type of the values each codec is trained on.
CODEC_DOMAINS: dict[str, str] = {
    "integer": "int",
    "float": "float",
}

_INCLUSIVITY = ((True, True), (True, False), (False, True),
                (False, False))


def _domain_of(codec_name: str) -> str:
    return CODEC_DOMAINS.get(codec_name, "string")


def _reference_key(value_type: str) -> Callable[[str], object]:
    if value_type == "int":
        return lambda text: int(text)
    if value_type == "float":
        return lambda text: float(text)
    return lambda text: text


def _bound_reference_key(value_type: str) -> Callable[[str], object]:
    """Key for interval *bounds* — mirrors the documented contract."""
    if value_type == "int":
        def key(text: str):
            try:
                return int(text)
            except ValueError:
                return float(text)
        return key
    return _reference_key(value_type)


def _values_for(codec_name: str, rng: random.Random,
                count: int) -> list[str]:
    domain = _domain_of(codec_name)
    if domain == "int":
        return int_values(rng, count)
    if domain == "float":
        return float_values(rng, count)
    return string_values(rng, count)


def check_codec(codec_name: str, values: list[str],
                rng: random.Random, report: VerifyReport) -> None:
    """Run every check for one codec over one value set."""
    domain = _domain_of(codec_name)
    try:
        codec = train_codec(codec_name, values)
    except XQueCError as exc:
        report.checks_run += 1
        report.add(_mismatch(codec_name, "round-trip", values,
                             f"training failed: {exc}"))
        return
    checks = [("round-trip", lambda: _check_roundtrip(
        codec_name, codec, values, report))]
    if codec.properties.eq:
        checks.append(("eq", lambda: _check_eq(
            codec_name, codec, values, rng, report)))
    if codec.properties.ineq:
        checks.append(("ineq", lambda: _check_order(
            codec_name, codec, values, domain, report)))
    if codec.properties.wild:
        checks.append(("wild", lambda: _check_wild(
            codec_name, codec, values, rng, report)))
    checks.append(("interval", lambda: _check_interval(
        codec_name, values, domain, rng, report)))
    for check_name, run in checks:
        try:
            run()
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            report.add(_mismatch(
                codec_name, check_name, values,
                f"check crashed: {type(exc).__name__}: {exc}"))


def run_codec_oracle(seed: int, rounds: int = 3,
                     values_per_round: int = 48,
                     codecs: list[str] | None = None) -> VerifyReport:
    """Codec oracle over every registered codec (or ``codecs``)."""
    report = VerifyReport(seed=seed)
    names = codecs if codecs is not None else available_codecs()
    for codec_name in names:
        for round_index in range(rounds):
            rng = random.Random(f"{seed}/{codec_name}/{round_index}")
            values = _values_for(codec_name, rng, values_per_round)
            check_codec(codec_name, values, rng, report)
    return report


# -- individual checks --------------------------------------------------------


def _mismatch(codec_name: str, check: str, values: list[str],
              description: str, **extra) -> Mismatch:
    reproducer = {"values": list(values)}
    reproducer.update(extra)
    return Mismatch(layer="codec", check=check, codec=codec_name,
                    description=description, reproducer=reproducer)


def _shrink(codec_name: str, values: list[str],
            failing: Callable[[list[str]], bool]) -> list[str]:
    """Minimize ``values`` for a failing check (training included)."""
    def wrapped(subset: list[str]) -> bool:
        try:
            return failing(subset)
        except XQueCError:
            return False
    return ddmin(values, wrapped)


def _check_roundtrip(codec_name: str, codec: Codec, values: list[str],
                     report: VerifyReport) -> None:
    report.checks_run += 1

    def fails(subset: list[str]) -> bool:
        trained = train_codec(codec_name, subset)
        return any(trained.decode(trained.encode(v)) != v
                   or trained.encode(v) != trained.encode(v)
                   for v in subset)

    for value in values:
        first = codec.encode(value)
        if codec.decode(first) != value or codec.encode(value) != first:
            minimal = _shrink(codec_name, values, fails)
            report.add(_mismatch(
                codec_name, "round-trip", minimal,
                f"decode(encode({value!r})) != {value!r} or "
                f"non-deterministic encoding"))
            return


def _check_eq(codec_name: str, codec: Codec, values: list[str],
              rng: random.Random, report: VerifyReport) -> None:
    report.checks_run += 1
    encoded = {value: codec.encode(value) for value in set(values)}
    pairs = list(encoded.items())
    for value_a, bits_a in pairs:
        for value_b, bits_b in pairs:
            if (bits_a == bits_b) != (value_a == value_b):
                def fails(subset: list[str]) -> bool:
                    trained = train_codec(codec_name, subset)
                    return value_a in subset and value_b in subset and \
                        (trained.encode(value_a) ==
                         trained.encode(value_b)) != (value_a == value_b)
                minimal = _shrink(codec_name, values, fails)
                report.add(_mismatch(
                    codec_name, "eq", minimal,
                    f"encode({value_a!r}) vs encode({value_b!r}) "
                    f"disagrees with plaintext equality"))
                return
    # Out-of-model constants must never claim equality with a value.
    for probe in ("ÿÿ", "", "completely-absent"):
        compressed = codec.try_encode(probe)
        if compressed is None and probe in encoded:
            report.add(_mismatch(
                codec_name, "eq", values,
                f"try_encode({probe!r}) is None but the value was "
                f"trained — eq would wrongly report 'no match'"))
            return


def _check_order(codec_name: str, codec: Codec, values: list[str],
                 domain: str, report: VerifyReport) -> None:
    report.checks_run += 1
    key = _reference_key(domain)
    by_code = sorted(values, key=codec.encode)
    expected = sorted(key(v) for v in values)
    got = [key(v) for v in by_code]
    if got != expected:
        def fails(subset: list[str]) -> bool:
            trained = train_codec(codec_name, subset)
            ordered = sorted(subset, key=trained.encode)
            return [key(v) for v in ordered] != \
                sorted(key(v) for v in subset)
        minimal = _shrink(codec_name, values, fails)
        report.add(_mismatch(
            codec_name, "ineq", minimal,
            "compressed order diverges from plaintext sorted() "
            "(order-preservation violated)"))


def _check_wild(codec_name: str, codec: Codec, values: list[str],
                rng: random.Random, report: VerifyReport) -> None:
    report.checks_run += 1
    probes = prefix_probes(values, rng)
    unaligned = 0
    for probe in probes:
        encoded_probe = codec.try_encode(probe)
        if encoded_probe is not None and encoded_probe.bits % 8:
            unaligned += 1
        for value in values:
            compressed = codec.encode(value)
            expected = value.startswith(probe)
            if encoded_probe is None:
                # Out-of-model probe: no trained value can start with it.
                got = False
            else:
                got = compressed.starts_with(encoded_probe)
            if got != expected:
                def fails(subset: list[str]) -> bool:
                    trained = train_codec(codec_name, subset)
                    if value not in subset:
                        return False
                    enc = trained.try_encode(probe)
                    res = (False if enc is None
                           else trained.encode(value).starts_with(enc))
                    return res != value.startswith(probe)
                minimal = _shrink(codec_name, values, fails)
                report.add(_mismatch(
                    codec_name, "wild", minimal,
                    f"starts_with({probe!r}) on {value!r}: compressed "
                    f"says {got}, plaintext says {expected}",
                    probe=probe, value=value))
                return
    if not unaligned:
        report.notes.append(
            f"{codec_name}: no non-byte-aligned wild probe generated "
            f"this round (coverage gap, not a mismatch)")


def _build_container(codec_name: str, values: list[str],
                     domain: str) -> ValueContainer:
    container = ValueContainer(f"verify://{codec_name}",
                               value_type=domain)
    for index, value in enumerate(values):
        container.add_value(value, index)
    container.seal(train_codec(codec_name, values))
    return container


def _check_interval(codec_name: str, values: list[str], domain: str,
                    rng: random.Random, report: VerifyReport) -> None:
    report.checks_run += 1
    key = _reference_key(domain)
    bound_key = _bound_reference_key(domain)
    container = _build_container(codec_name, values, domain)
    codec = container.codec
    for low in interval_bounds(values, domain, rng):
        for high in interval_bounds(values, domain, rng):
            for low_inc, high_inc in _INCLUSIVITY:
                got_keys = sorted(
                    key(codec.decode(compressed)) for _, compressed in
                    container.interval_search(low, high, low_inc,
                                              high_inc))
                expected_keys = sorted(
                    key(v) for v in values
                    if _in_reference_interval(
                        key(v), low, high, low_inc, high_inc,
                        bound_key))
                if got_keys != expected_keys:
                    def fails(subset: list[str]) -> bool:
                        sub = _build_container(codec_name, subset,
                                               domain)
                        sub_got = sorted(
                            key(sub.codec.decode(c)) for _, c in
                            sub.interval_search(low, high, low_inc,
                                                high_inc))
                        sub_exp = sorted(
                            key(v) for v in subset
                            if _in_reference_interval(
                                key(v), low, high, low_inc, high_inc,
                                bound_key))
                        return sub_got != sub_exp
                    minimal = _shrink(codec_name, values, fails)
                    report.add(Mismatch(
                        layer="codec", check="interval",
                        codec=codec_name,
                        container=container.path,
                        plan_node="ContAccess",
                        description=(
                            f"interval_search(low={low!r}, "
                            f"high={high!r}, {low_inc}/{high_inc}) "
                            f"disagrees with the plaintext filter"),
                        reproducer={"values": minimal, "low": low,
                                    "high": high,
                                    "low_inclusive": low_inc,
                                    "high_inclusive": high_inc}))
                    return


def _in_reference_interval(value_key, low, high, low_inc, high_inc,
                           bound_key) -> bool:
    if low is not None:
        low_k = bound_key(low)
        if value_key < low_k or (not low_inc and value_key == low_k):
            return False
    if high is not None:
        high_k = bound_key(high)
        if value_key > high_k or (not high_inc and value_key == high_k):
            return False
    return True

"""XMark-ish document generation for the engine oracle.

Documents are generated as an *entity list* first and rendered to XML
second, so the minimizer can drop entities and re-render: a mismatch
shrinks to the fewest people/items/auctions that still reproduce it.

The value distributions are chosen to hit every engine path the sweep
exercises: string containers with shared prefixes, empty and non-ASCII
values (ALM/Huffman ``eq``/``wild``), pure-int and pure-float
containers (numeric codecs, ``ContAccess`` over numeric order), a
*mixed* int/float container (the type-inference edge), and join keys
between auctions and people.
"""

from __future__ import annotations

import random

_NAMES = ("ada", "ada", "adam", "bob", "bo", "eve", "evelyn", "",
          "rené", "andré", "Åsa", "小林", "mallory")
_CITIES = ("rome", "roma", "oslo", "kiev", "kyoto", "", "lyon")
_WORDS = ("gold", "golden", "silver", "old", "bold", "rare", "rarely",
          "fine", "antique", "brass")


def generate_entities(rng: random.Random, scale: int = 10) -> dict:
    """Entity lists for one document; deterministic in ``rng``."""
    people = []
    for index in range(max(2, scale)):
        people.append({
            "id": f"p{index}",
            "name": rng.choice(_NAMES),
            "age": str(rng.choice((5, 7, 9, 10, 12, 31, 47,
                                   rng.randint(0, 99)))),
            "city": rng.choice(_CITIES),
            # Canonical float texts: a pure-float container.
            "income": repr(rng.choice((0.5, 9.25, 100.5, 1200.75,
                                       round(rng.uniform(0, 5e4), 2)))),
        })
    items = []
    for index in range(max(1, scale // 2)):
        words = rng.sample(_WORDS, k=rng.randint(1, 4))
        items.append({
            "id": f"i{index}",
            "name": rng.choice(_WORDS),
            "description": " ".join(words),
        })
    auctions = []
    for index in range(max(1, scale // 2)):
        # price mixes int and float text shapes on purpose (the
        # container must stay string-typed and still answer queries).
        price = rng.choice((str(rng.randint(1, 999)),
                            repr(round(rng.uniform(1, 999), 1))))
        auctions.append({
            "buyer": rng.choice(people)["id"],
            "item": rng.choice(items)["id"],
            "price": price,
            "quantity": str(rng.randint(1, 9)),
        })
    return {"people": people, "items": items, "auctions": auctions}


def entity_list(entities: dict) -> list[tuple[str, dict]]:
    """Flatten to (kind, record) pairs — the minimizer's item list."""
    return ([("person", p) for p in entities["people"]] +
            [("item", i) for i in entities["items"]] +
            [("auction", a) for a in entities["auctions"]])


def from_entity_list(pairs: list[tuple[str, dict]]) -> dict:
    """Inverse of :func:`entity_list` (minimized subsets included)."""
    return {
        "people": [r for kind, r in pairs if kind == "person"],
        "items": [r for kind, r in pairs if kind == "item"],
        "auctions": [r for kind, r in pairs if kind == "auction"],
    }


def render_xml(entities: dict) -> str:
    """Render the entity lists as one XMark-flavoured document."""
    parts = ["<site><people>"]
    for person in entities["people"]:
        parts.append(
            f'<person id="{person["id"]}">'
            f'<name>{person["name"]}</name>'
            f'<age>{person["age"]}</age>'
            f'<city>{person["city"]}</city>'
            f'<income>{person["income"]}</income>'
            f'</person>')
    parts.append("</people><regions>")
    for item in entities["items"]:
        parts.append(
            f'<item id="{item["id"]}">'
            f'<name>{item["name"]}</name>'
            f'<description>{item["description"]}</description>'
            f'</item>')
    parts.append("</regions><closed_auctions>")
    for auction in entities["auctions"]:
        parts.append(
            f'<auction><buyer>{auction["buyer"]}</buyer>'
            f'<itemref>{auction["item"]}</itemref>'
            f'<price>{auction["price"]}</price>'
            f'<quantity>{auction["quantity"]}</quantity>'
            f'</auction>')
    parts.append("</closed_auctions></site>")
    return "".join(parts)

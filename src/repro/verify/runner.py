"""Top-level oracle runs: codec layer + engine layer, one report.

``repro verify --seed 0 --docs 25 --queries 40`` (the CI
``verify-oracle`` job) lands here.  Everything is deterministic in the
seed: value sets, documents and query templates derive their
:class:`random.Random` streams from ``(seed, …)`` tuples, so a CI
failure reproduces locally with the same command line.
"""

from __future__ import annotations

from repro.verify.codec_oracle import run_codec_oracle
from repro.verify.engine_oracle import run_engine_oracle
from repro.verify.report import VerifyReport


def run_verify(seed: int = 0, docs: int = 25, queries: int = 40,
               codec_rounds: int = 3, codec_values: int = 48,
               scale: int = 10, progress=None,
               batch_size: int | None = None) -> VerifyReport:
    """Run both oracle layers and merge their reports.

    ``progress`` (optional) is called as ``progress(stage, done,
    total)`` with ``stage`` in ``{"codec", "engine"}`` — the CLI uses
    it to keep CI logs alive during the fuzz budget.  ``batch_size``
    pins the engine oracle's compressed path to one batch width.
    """
    report = VerifyReport(seed=seed)
    codec_report = run_codec_oracle(seed, rounds=codec_rounds,
                                    values_per_round=codec_values)
    report.merge(codec_report)
    if progress is not None:
        progress("codec", 1, 1)

    def engine_progress(done: int, total: int, _partial) -> None:
        if progress is not None:
            progress("engine", done, total)

    engine_report = run_engine_oracle(seed, docs=docs, queries=queries,
                                      scale=scale,
                                      progress=engine_progress,
                                      batch_size=batch_size)
    report.merge(engine_report)
    return report

"""Delta debugging: shrink a failing input to a minimal one.

Classic ``ddmin`` (Zeller & Hildebrandt, "Simplifying and Isolating
Failure-Inducing Input"): partition the items into chunks, try to
reproduce the failure on each chunk and on each complement, and refine
the granularity until no single item can be removed.

The oracle minimizes two kinds of inputs with this: a codec check's
value set, and an engine check's document entity list (re-rendered to
XML per attempt).  The predicate is arbitrary, so the same routine
serves both.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence


def ddmin(items: Sequence, failing: Callable[[list], bool],
          max_attempts: int = 2000) -> list:
    """Smallest sublist of ``items`` on which ``failing`` still holds.

    ``failing(subset)`` must return True for the full list; the result
    is 1-minimal (removing any single remaining item makes the failure
    disappear) unless ``max_attempts`` predicate evaluations run out
    first, in which case the best reduction so far is returned.
    Predicates that raise are treated as "not failing" so a flaky
    reproducer cannot crash the minimizer.
    """
    current = list(items)
    attempts = 0

    def check(subset: list) -> bool:
        nonlocal attempts
        attempts += 1
        try:
            return bool(failing(subset))
        except Exception:
            return False

    granularity = 2
    while len(current) >= 2 and attempts < max_attempts:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and attempts < max_attempts:
            complement = current[:start] + current[start + chunk:]
            if complement and check(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the front at the same granularity.
                start = 0
                chunk = max(1, len(current) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current

"""Variable-length integer encoding (LEB128-style) and size helpers.

The storage accounting uses varint/delta sizes throughout: node IDs are
dense and document-ordered, so parents, children and summary extents
are small deltas — the compact representation any serious on-disk
format (including the paper's Berkeley DB records) would use.
"""

from __future__ import annotations

from repro.errors import CorruptDataError


def varint_size(value: int) -> int:
    """Bytes a varint encoding of ``value`` occupies (>= 1)."""
    if value < 0:
        value = (-value << 1) | 1  # zigzag for the size estimate
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer (LEB128)."""
    if value < 0:
        raise ValueError("varint encodes non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint; returns (value, next offset)."""
    value = 0
    shift = 0
    i = offset
    while True:
        if i >= len(data):
            raise CorruptDataError("truncated varint")
        byte = data[i]
        i += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, i
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint too long")


def encode_zigzag(value: int) -> bytes:
    """Encode a signed integer via zigzag + varint."""
    return encode_varint(value << 1 if value >= 0
                         else ((-value) << 1) | 1)


def decode_zigzag(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a zigzag varint; returns (value, next offset)."""
    encoded, offset = decode_varint(data, offset)
    if encoded & 1:
        return -(encoded >> 1), offset
    return encoded >> 1, offset


def delta_sizes(sorted_values: list[int]) -> int:
    """Total varint bytes for delta-encoding an ascending id list."""
    total = 0
    previous = 0
    for value in sorted_values:
        total += varint_size(value - previous)
        previous = value
    return total

"""Shared low-level utilities: bit I/O, text helpers, simple statistics."""

from repro.util.bits import BitReader, BitWriter, bits_to_bytes, bytes_to_bits

__all__ = ["BitReader", "BitWriter", "bits_to_bytes", "bytes_to_bits"]

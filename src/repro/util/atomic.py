"""Atomic file replacement for journals and trajectory files.

Observability files are written while queries (or benchmark runs) are
in flight; a crash mid-write must never leave a truncated JSON/JSONL
file behind.  The standard recipe applies: write the full content to a
temporary sibling, fsync it, then ``os.replace`` over the target —
rename within one directory is atomic on POSIX.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a temp file + atomic rename.

    Readers either see the previous complete content or the new
    complete content, never a prefix.  Returns the target path.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    return target

"""Simple descriptive statistics used by the cost model and the reports."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence


def shannon_entropy(values: Iterable[str]) -> float:
    """Per-character Shannon entropy (bits/char) of a string collection.

    This is the lower bound a character-level entropy coder (Huffman,
    arithmetic) can approach; the cost model uses it to estimate storage
    cost per codec.
    """
    counts: Counter = Counter()
    for value in values:
        counts.update(value)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for n in counts.values():
        p = n / total
        entropy -= p * math.log2(p)
    return entropy


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(xs) / len(xs) if xs else 0.0


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    if not xs:
        return 0.0
    log_sum = 0.0
    for x in xs:
        if x <= 0:
            raise ValueError("geometric mean requires positive values")
        log_sum += math.log(x)
    return math.exp(log_sum / len(xs))


def compression_factor(original_size: int, compressed_size: int) -> float:
    """The paper's CF = 1 - cs/os (higher is better, as a fraction)."""
    if original_size <= 0:
        return 0.0
    return 1.0 - compressed_size / original_size

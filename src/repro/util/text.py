"""Small text helpers shared by the codecs and the data generators."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


def char_frequencies(values: Iterable[str]) -> Counter:
    """Count character occurrences over a collection of strings."""
    counts: Counter = Counter()
    for value in values:
        counts.update(value)
    return counts


def char_distribution(values: Iterable[str]) -> dict[str, float]:
    """Normalised character distribution over a collection of strings."""
    counts = char_frequencies(values)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {ch: n / total for ch, n in counts.items()}


def common_prefix(a: str, b: str) -> str:
    """Longest common prefix of two strings."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


def successor_string(s: str, alphabet_max: str = "￿") -> str:
    """Smallest string strictly greater than every string prefixed by ``s``.

    Used to turn a prefix-match predicate into a half-open interval
    ``[s, successor_string(s))`` for range scans over sorted containers.
    """
    for i in range(len(s) - 1, -1, -1):
        if s[i] < alphabet_max:
            return s[:i] + chr(ord(s[i]) + 1)
    return s + alphabet_max


def is_numeric_string(value: str) -> bool:
    """True when ``value`` parses as an int or float (container typing)."""
    text = value.strip()
    if not text:
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True

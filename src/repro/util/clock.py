"""The one monotonic clock every measurement layer shares.

Spans (:mod:`repro.obs.tracer`), workload records
(:mod:`repro.obs.workload`), trajectory points
(:mod:`repro.bench.trajectory`) and the serving smoke benchmark all
time things — and before this module they mixed ``perf_counter()``
seconds with ``perf_counter_ns()`` nanoseconds, so their numbers were
not directly comparable.  Everything now measures in **integer
nanoseconds on the same monotonic clock** and converts to seconds only
at the reporting edge.
"""

from __future__ import annotations

from time import perf_counter_ns

#: nanoseconds per second, for conversions at the reporting edge.
NS_PER_S = 1_000_000_000


def now_ns() -> int:
    """The monotonic clock, in integer nanoseconds."""
    return perf_counter_ns()


def elapsed_ns(start_ns: int) -> int:
    """Nanoseconds elapsed since a ``now_ns()`` reading."""
    return perf_counter_ns() - start_ns


def ns_to_s(ns: int | float) -> float:
    """Convert nanoseconds to float seconds (reporting only)."""
    return ns / NS_PER_S


def s_to_ns(seconds: float) -> int:
    """Convert float seconds to integer nanoseconds."""
    return round(seconds * NS_PER_S)


class Stopwatch:
    """A tiny restartable timer over :func:`now_ns`.

    ``with Stopwatch() as watch: ...`` — afterwards ``watch.ns`` (and
    ``watch.seconds``) hold the block's duration.
    """

    __slots__ = ("start_ns", "ns")

    def __init__(self):
        self.start_ns = 0
        self.ns = 0

    def __enter__(self) -> "Stopwatch":
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.ns = perf_counter_ns() - self.start_ns

    @property
    def seconds(self) -> float:
        return self.ns / NS_PER_S

"""Bit-level I/O used by the entropy coders.

The coders in :mod:`repro.compression` (Huffman, Hu-Tucker, arithmetic, ALM)
all produce variable-length bit strings.  Two small classes provide the
plumbing:

* :class:`BitWriter` accumulates individual bits and flushes them into a
  ``bytes`` payload, recording the exact bit length so that trailing padding
  never decodes as data.
* :class:`BitReader` replays such a payload bit by bit.

Compressed container records additionally need an *order-preserving* byte
representation of a bit string (so that ``memcmp`` order equals bit-string
order even between strings of different lengths).  ``bits_to_bytes`` with
``pad_bit=0`` provides that for prefix-free order-preserving codes: padding
with zeros never reorders two codewords because neither is a prefix of the
other.
"""

from __future__ import annotations

from repro.errors import CorruptDataError


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self):
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0  # bits already placed in ``_current``
        self._length = 0  # total bits written

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        self._length += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_bitstring(self, bits: str) -> None:
        """Append a string of ``'0'``/``'1'`` characters."""
        for ch in bits:
            self.write_bit(1 if ch == "1" else 0)

    def getvalue(self, pad_bit: int = 0) -> bytes:
        """Return the accumulated bits as bytes, padding the tail.

        ``pad_bit=0`` keeps byte-wise lexicographic order consistent with
        bit-string order for prefix-free codes.
        """
        out = bytes(self._buffer)
        if self._filled:
            tail = self._current << (8 - self._filled)
            if pad_bit:
                tail |= (1 << (8 - self._filled)) - 1
            out += bytes([tail])
        return out

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._length


class BitReader:
    """Replays a byte payload bit by bit, most-significant-first."""

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = data
        self._bit_length = (len(data) * 8 if bit_length is None
                            else bit_length)
        if self._bit_length > len(data) * 8:
            raise CorruptDataError(
                f"declared bit length {self._bit_length} exceeds payload "
                f"of {len(data)} bytes")
        self._pos = 0

    def __len__(self) -> int:
        return self._bit_length

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bit_length - self._pos

    def read_bit(self) -> int:
        """Read the next bit; raises :class:`CorruptDataError` at the end."""
        if self._pos >= self._bit_length:
            raise CorruptDataError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as one unsigned integer."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def peek_bit(self) -> int | None:
        """Return the next bit without consuming it, or ``None`` at EOF."""
        if self._pos >= self._bit_length:
            return None
        byte = self._data[self._pos >> 3]
        return (byte >> (7 - (self._pos & 7))) & 1


def bits_to_bytes(bits: str, pad_bit: int = 0) -> bytes:
    """Pack a ``'0'``/``'1'`` string into bytes (MSB first)."""
    writer = BitWriter()
    writer.write_bitstring(bits)
    return writer.getvalue(pad_bit=pad_bit)


def bytes_to_bits(data: bytes, bit_length: int | None = None) -> str:
    """Unpack bytes into a ``'0'``/``'1'`` string of ``bit_length`` bits."""
    if bit_length is None:
        bit_length = len(data) * 8
    reader = BitReader(data, bit_length)
    return "".join(str(reader.read_bit()) for _ in range(bit_length))

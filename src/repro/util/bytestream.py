"""Binary stream helpers: varints, length-prefixed strings, floats.

The building blocks of the repository's on-disk format
(:mod:`repro.storage.serialization`) and the codec source-model
serializers (:mod:`repro.compression.serialization`).
"""

from __future__ import annotations

import struct

from repro.errors import CorruptDataError
from repro.util.varint import decode_varint, encode_varint, encode_zigzag


class ByteWriter:
    """Appends typed fields to a byte buffer."""

    def __init__(self):
        self._buffer = bytearray()

    def varint(self, value: int) -> "ByteWriter":
        self._buffer.extend(encode_varint(value))
        return self

    def signed(self, value: int) -> "ByteWriter":
        """Zigzag-encoded signed integer."""
        self._buffer.extend(encode_zigzag(value))
        return self

    def string(self, text: str) -> "ByteWriter":
        data = text.encode("utf-8")
        self.varint(len(data))
        self._buffer.extend(data)
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self.varint(len(data))
        self._buffer.extend(data)
        return self

    def exact(self, data: bytes) -> "ByteWriter":
        """Bytes without a length prefix (caller knows the length)."""
        self._buffer.extend(data)
        return self

    def float64(self, value: float) -> "ByteWriter":
        self._buffer.extend(struct.pack(">d", value))
        return self

    def byte(self, value: int) -> "ByteWriter":
        self._buffer.append(value & 0xFF)
        return self

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class ByteReader:
    """Reads typed fields back from a byte buffer."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def varint(self) -> int:
        value, self._pos = decode_varint(self._data, self._pos)
        return value

    def signed(self) -> int:
        encoded = self.varint()
        if encoded & 1:
            return -(encoded >> 1)
        return encoded >> 1

    def string(self) -> str:
        return self.raw().decode("utf-8")

    def raw(self) -> bytes:
        return self.exact(self.varint())

    def exact(self, length: int) -> bytes:
        """Read exactly ``length`` bytes (no length prefix)."""
        end = self._pos + length
        if end > len(self._data):
            raise CorruptDataError("truncated byte stream")
        data = self._data[self._pos:end]
        self._pos = end
        return data

    def float64(self) -> float:
        end = self._pos + 8
        if end > len(self._data):
            raise CorruptDataError("truncated byte stream")
        value = struct.unpack_from(">d", self._data, self._pos)[0]
        self._pos = end
        return value

    def byte(self) -> int:
        if self._pos >= len(self._data):
            raise CorruptDataError("truncated byte stream")
        value = self._data[self._pos]
        self._pos += 1
        return value

"""Value containers: per-path, individually compressed value storage.

All data values found under the same root-to-leaf path expression are
stored together (§2.2).  A container is a sequence of *container
records* — (compressed value, parent pointer) — kept in **lexicographic
value order**, not document order, so interval search is a binary
search; this is what makes the ``ContAccess`` access path cheap.

Unlike XMill, every value is compressed on its own and individually
accessible.  For order-preserving codecs the records can be compared —
and binary-searched — directly on their compressed form; for
order-agnostic codecs (Huffman) the records are still value-sorted, and
interval probes decompress O(log n) pivot records instead.

A container whose codec ``is_blob`` degrades to the XMill behaviour:
one compressed chunk, any record access decompresses the whole chunk
(the trade-off the §3 cost model weighs).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

import numpy as np

from repro.compression.base import Codec, CompressedValue
from repro.compression.blob import BlobCodec
from repro.errors import StorageError
from repro.obs import runtime


class ContainerArrays:
    """Array-shaped view of a sealed container (batch engine input).

    ``parent_ids``
        int64 array of parent pointers, in value order (slot *i* of
        the container maps to ``parent_ids[i]``).
    ``records``
        The container's record list (shared, not copied), or ``None``
        for blob containers, which have no per-record compressed form.
    ``sort_keys``
        Lazily decoded numeric keys (int64/float64) when the codec has
        a vectorized kernel; ``None`` otherwise — see
        :mod:`repro.compression.kernels`.
    """

    __slots__ = ("parent_ids", "records", "_codec", "_sort_keys")

    def __init__(self, parent_ids: np.ndarray, records, codec):
        self.parent_ids = parent_ids
        self.records = records
        self._codec = codec
        self._sort_keys = False  # not yet computed (None is a result)

    @property
    def count(self) -> int:
        return len(self.parent_ids)

    @property
    def sort_keys(self) -> np.ndarray | None:
        if self._sort_keys is False:
            from repro.compression.kernels import kernel_for
            kernel = None if self.records is None \
                else kernel_for(self._codec)
            self._sort_keys = None if kernel is None \
                else kernel.decode_keys(self.records)
        return self._sort_keys

    @property
    def nbytes(self) -> int:
        """Array bytes this view pins (block-cache budget accounting)."""
        total = self.parent_ids.nbytes
        if self._sort_keys is not False and self._sort_keys is not None:
            total += self._sort_keys.nbytes
        return total


class ContainerRecord:
    """One (compressed value, parent node id) record."""

    __slots__ = ("compressed", "parent_id")

    def __init__(self, compressed: CompressedValue, parent_id: int):
        self.compressed = compressed
        self.parent_id = parent_id

    def __repr__(self) -> str:
        return (f"ContainerRecord(bits={self.compressed.bits}, "
                f"parent={self.parent_id})")


class ValueContainer:
    """A sealed, sorted container of individually compressed values."""

    def __init__(self, path: str, value_type: str = "string"):
        """``path`` is the root-to-leaf path expression; ``value_type``
        the inferred elementary type (``string``/``int``/``float``)."""
        self.path = path
        self.value_type = value_type
        self._pending: list[tuple[str, int]] = []  # (value, parent id)
        self._codec: Codec | None = None
        self._records: list[ContainerRecord] = []
        self._blob: bytes | None = None
        self._blob_values: list[str] | None = None
        self._blob_parents: list[int] | None = None
        self._insertion_to_sorted: list[int] = []
        self._count = 0
        self._sealed = False
        self._arrays: ContainerArrays | None = None
        self._compressed_keys: list[CompressedValue] | None = None

    def _compare_key(self, value: str):
        """Comparison key honouring the container's elementary type."""
        if self.value_type == "int":
            return int(value)
        if self.value_type == "float":
            return float(value)
        return value

    def _bound_key(self, bound: str):
        """Comparison key for a query-supplied interval *bound*.

        Stored values always parse under the container's elementary
        type (the loader infers ``int``/``float`` only when every value
        round-trips), but bounds arrive from query constants and need
        not: an ``int`` container is legitimately probed with ``"9.5"``
        (``age < 9.5``).  Numeric containers therefore fall back to a
        ``float`` key for non-integer bounds — Python compares ``int``
        and ``float`` keys exactly, so mixing them in one bisect is
        sound.  A bound that does not parse as a number at all violates
        the :meth:`interval_search` contract and raises
        :class:`~repro.errors.StorageError`.
        """
        if self.value_type == "int":
            try:
                return int(bound)
            except ValueError:
                pass
        if self.value_type in ("int", "float"):
            try:
                return float(bound)
            except ValueError:
                raise StorageError(
                    f"container {self.path!r} has {self.value_type} "
                    f"values; interval bound {bound!r} is not numeric"
                ) from None
        return bound

    # -- loading phase ------------------------------------------------------

    def add_value(self, value: str, parent_id: int) -> None:
        """Stage a raw value during document loading."""
        if self._sealed:
            raise StorageError(f"container {self.path!r} already sealed")
        self._pending.append((value, parent_id))

    @property
    def pending_values(self) -> list[str]:
        """Raw staged values (training input for the codec choice)."""
        return [value for value, _ in self._pending]

    def seal(self, codec: Codec) -> None:
        """Sort records lexicographically, compress, and freeze.

        Loading stages values in document order, but the sealed container
        is value-ordered; :meth:`sorted_position` maps a staging index to
        the record's final slot so structure-tree value pointers can be
        fixed up.
        """
        if self._sealed:
            raise StorageError(f"container {self.path!r} already sealed")
        self._codec = codec
        order = sorted(range(len(self._pending)),
                       key=lambda i: self._compare_key(self._pending[i][0]))
        self._insertion_to_sorted = [0] * len(order)
        for sorted_pos, insertion_pos in enumerate(order):
            self._insertion_to_sorted[insertion_pos] = sorted_pos
        ordered = [self._pending[i] for i in order]
        if isinstance(codec, BlobCodec):
            values = [v for v, _ in ordered]
            self._blob = codec.encode_many(values)
            self._blob_values = values
            self._blob_parents = [p for _, p in ordered]
        else:
            self._records = [
                ContainerRecord(codec.encode(value), parent_id)
                for value, parent_id in ordered
            ]
        self._count = len(ordered)
        self._pending = []
        self._sealed = True

    def sorted_position(self, insertion_index: int) -> int:
        """Final slot of the value staged ``insertion_index``-th."""
        self._require_sealed()
        return self._insertion_to_sorted[insertion_index]

    @classmethod
    def from_records(cls, path: str, value_type: str, codec: Codec,
                     records: list[ContainerRecord]) -> "ValueContainer":
        """Rehydrate a sealed record container (deserialization)."""
        container = cls(path, value_type)
        container._codec = codec
        container._records = records
        container._count = len(records)
        container._sealed = True
        return container

    @classmethod
    def from_blob(cls, path: str, value_type: str, codec: Codec,
                  blob: bytes, values: list[str],
                  parents: list[int]) -> "ValueContainer":
        """Rehydrate a sealed blob container (deserialization)."""
        container = cls(path, value_type)
        container._codec = codec
        container._blob = blob
        container._blob_values = values
        container._blob_parents = parents
        container._count = len(values)
        container._sealed = True
        return container

    # -- access phase --------------------------------------------------------

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise StorageError(f"container {self.path!r} not sealed yet")

    @property
    def codec(self) -> Codec:
        """The codec this container was sealed with."""
        self._require_sealed()
        assert self._codec is not None
        return self._codec

    @property
    def is_blob(self) -> bool:
        """True when the container stores one XMill-style chunk."""
        self._require_sealed()
        return self._blob is not None

    def __len__(self) -> int:
        self._require_sealed()
        return self._count

    def scan(self) -> Iterator[tuple[int, CompressedValue]]:
        """``ContScan``: all (parent id, compressed value) pairs.

        For blob containers this decompresses the whole chunk (counted
        by the caller as a full decompression) and re-encodes values
        standalone so downstream operators see a uniform record shape.
        """
        self._require_sealed()
        if runtime.ACTIVE is not None:
            runtime.add("container.scans")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(self.path, "scans")
        if self._blob is not None:
            assert self._blob_values is not None
            assert self._blob_parents is not None
            assert self._codec is not None
            for value, parent in zip(self._blob_values,
                                     self._blob_parents):
                yield parent, self._codec.encode(value)
            return
        for record in self._records:
            yield record.parent_id, record.compressed

    def scan_decoded(self) -> Iterator[tuple[int, str]]:
        """All (parent id, plain value) pairs, decompressing."""
        self._require_sealed()
        if self._blob is not None:
            assert self._blob_values is not None
            assert self._blob_parents is not None
            yield from zip(self._blob_parents, self._blob_values)
            return
        assert self._codec is not None
        for record in self._records:
            yield record.parent_id, self._codec.decode(record.compressed)

    def record_at(self, index: int) -> ContainerRecord:
        """Record by position (value pointers from the structure tree)."""
        self._require_sealed()
        if runtime.ACTIVE is not None:
            runtime.add("container.record_reads")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(self.path, "record_reads")
        if self._blob is not None:
            assert self._blob_values is not None
            assert self._blob_parents is not None
            assert self._codec is not None
            return ContainerRecord(
                self._codec.encode(self._blob_values[index]),
                self._blob_parents[index])
        return self._records[index]

    def value_at(self, index: int) -> str:
        """Plain value by position."""
        self._require_sealed()
        if runtime.ACTIVE is not None:
            runtime.add("container.record_reads")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(self.path, "record_reads")
        if self._blob is not None:
            assert self._blob_values is not None
            return self._blob_values[index]
        assert self._codec is not None
        return self._codec.decode(self._records[index].compressed)

    def as_arrays(self) -> ContainerArrays:
        """Cached array view of the sealed records (DESIGN.md §13).

        Built once per container (records are frozen at seal time);
        the serving layer's block cache additionally charges the view's
        bytes against its budget via
        :class:`repro.service.blocks.CachedContainerView`.
        """
        self._require_sealed()
        if self._arrays is None:
            if self._blob is not None:
                assert self._blob_parents is not None
                parents = np.array(self._blob_parents, dtype=np.int64)
                self._arrays = ContainerArrays(parents, None, self._codec)
            else:
                parents = np.fromiter(
                    (r.parent_id for r in self._records),
                    dtype=np.int64, count=len(self._records))
                self._arrays = ContainerArrays(parents, self._records,
                                               self._codec)
        return self._arrays

    def drop_arrays(self) -> None:
        """Release the memoized :meth:`as_arrays` view.

        The serving layer charges the view's bytes to its block cache;
        a cache invalidation that evicted the charged entry must drop
        this memo too, or the "freed" arrays stay resident here and the
        next :meth:`as_arrays` resurrects them outside any budget
        (the staleness bug pinned by
        ``tests/storage/test_array_staleness.py``).  Safe at any time:
        records are frozen at seal, so a rebuilt view is identical.
        """
        self._arrays = None

    def interval_positions(self, low: str | None, high: str | None,
                           low_inclusive: bool = True,
                           high_inclusive: bool = True
                           ) -> tuple[int, int] | None:
        """Slot range ``[start, end)`` of the interval, or ``None``.

        The positional core of :meth:`interval_search` (same bound
        semantics), without the access-accounting side effects — the
        batch engine turns the range into a boolean mask over record
        slots.  ``None`` means the container is a blob and has no
        positional access path.
        """
        self._require_sealed()
        if self._blob is not None:
            return None
        assert self._codec is not None
        if self._codec.properties.ineq:
            positions = self._positions_compressed(
                low, high, low_inclusive, high_inclusive)
            if positions is not None:
                return positions
        return self._positions_decompressing(
            low, high, low_inclusive, high_inclusive)

    def interval_bounds(self, low: str | None, high: str | None,
                        low_inclusive: bool = True,
                        high_inclusive: bool = True
                        ) -> tuple[int, int] | None:
        """Counted :meth:`interval_positions` (a ``ContAccess`` probe).

        Bumps the same access metrics as :meth:`interval_search`, so a
        batch-mode interval access is indistinguishable from a row-mode
        one in the workload observatory.
        """
        self._require_sealed()
        if runtime.ACTIVE is not None:
            runtime.add("container.interval_searches")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(self.path,
                                           "interval_searches")
        return self.interval_positions(low, high, low_inclusive,
                                       high_inclusive)

    def interval_search(self, low: str | None, high: str | None,
                        low_inclusive: bool = True,
                        high_inclusive: bool = True
                        ) -> Iterator[tuple[int, CompressedValue]]:
        """``ContAccess``: records whose value lies in the interval.

        Contract (the plaintext reference the verify oracle checks
        against):

        * ``low``/``high`` are plain strings (query constants) or
          ``None`` meaning unbounded on that side; ``(None, None)``
          yields every record.  The empty string is an ordinary bound
          (the smallest string), not an "unset" marker.
        * Bounds compare against stored values under the container's
          elementary type: string containers lexicographically, ``int``
          / ``float`` containers numerically.  Numeric containers accept
          any numeric bound text — an ``int`` container probed with
          ``"9.5"`` compares ``value < 9.5`` exactly; a non-numeric
          bound over a numeric container raises
          :class:`~repro.errors.StorageError`.
        * ``low_inclusive``/``high_inclusive`` pick ``<=`` vs ``<`` on
          each side independently; a record equal to an exclusive bound
          is dropped.  Results come back in value order, duplicates
          preserved.

        Order-preserving codecs binary-search on compressed bytes;
        order-agnostic ones binary-search by decompressing the O(log n)
        probe pivots.
        """
        self._require_sealed()
        if runtime.ACTIVE is not None:
            runtime.add("container.interval_searches")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(self.path,
                                           "interval_searches")
        if self._blob is not None:
            # XMill-style chunk: no random access; filter a full scan.
            key = self._compare_key
            k_low = self._bound_key(low) if low is not None else None
            k_high = self._bound_key(high) if high is not None else None
            for parent, value in self.scan_decoded():
                if _in_interval(key(value), k_low, k_high,
                                low_inclusive, high_inclusive):
                    assert self._codec is not None
                    yield parent, self._codec.encode(value)
            return
        start, end = self.interval_positions(
            low, high, low_inclusive, high_inclusive)
        for record in self._records[start:end]:
            yield record.parent_id, record.compressed

    def _positions_compressed(self, low, high, low_inclusive,
                              high_inclusive):
        """Slot range by bisecting compressed bytes; ``None`` when a
        bound cannot be encoded under the source model (the caller
        falls back to decompressing comparisons)."""
        codec = self._codec
        assert codec is not None
        keys = self._compressed_keys
        if keys is None:
            keys = [r.compressed for r in self._records]
            self._compressed_keys = keys
        start = 0
        if low is not None:
            c_low = codec.try_encode(low)
            if c_low is None:
                return None
            start = (bisect.bisect_left(keys, c_low) if low_inclusive
                     else bisect.bisect_right(keys, c_low))
        end = len(keys)
        if high is not None:
            c_high = codec.try_encode(high)
            if c_high is None:
                return None
            end = (bisect.bisect_right(keys, c_high) if high_inclusive
                   else bisect.bisect_left(keys, c_high))
        return start, end

    def _positions_decompressing(self, low, high, low_inclusive,
                                 high_inclusive):
        codec = self._codec
        assert codec is not None

        key = self._compare_key

        class _Probe:
            """Adapter giving bisect a decompressed view of records."""

            def __init__(self, records):
                self._records = records

            def __len__(self):
                return len(self._records)

            def __getitem__(self, index):
                return key(codec.decode(self._records[index].compressed))

        view = _Probe(self._records)
        start = 0
        if low is not None:
            k_low = self._bound_key(low)
            start = (bisect.bisect_left(view, k_low) if low_inclusive
                     else bisect.bisect_right(view, k_low))
        end = len(self._records)
        if high is not None:
            k_high = self._bound_key(high)
            end = (bisect.bisect_right(view, k_high) if high_inclusive
                   else bisect.bisect_left(view, k_high))
        return start, end

    # -- accounting -----------------------------------------------------------

    def data_size_bytes(self) -> int:
        """Compressed payload bytes (values + varint parent pointers)."""
        from repro.util.varint import varint_size
        self._require_sealed()
        if self._blob is not None:
            assert self._blob_parents is not None
            return len(self._blob) + sum(varint_size(p)
                                         for p in self._blob_parents)
        return sum(r.compressed.nbytes + varint_size(r.parent_id)
                   for r in self._records)

    def model_size_bytes(self) -> int:
        """Size of the codec's source model."""
        self._require_sealed()
        assert self._codec is not None
        return self._codec.model_size_bytes()

    def uncompressed_size_bytes(self) -> int:
        """UTF-8 size of the raw values (for per-container CF)."""
        self._require_sealed()
        return sum(len(v.encode("utf-8"))
                   for _, v in self.scan_decoded())

    def __repr__(self) -> str:
        state = "sealed" if self._sealed else "loading"
        return f"<ValueContainer {self.path!r} {state}>"


def _in_interval(value, low, high,
                 low_inclusive: bool, high_inclusive: bool) -> bool:
    """Interval membership over mutually comparable keys."""
    if low is not None:
        if low_inclusive and value < low:
            return False
        if not low_inclusive and value <= low:
            return False
    if high is not None:
        if high_inclusive and value > high:
            return False
        if not high_inclusive and value >= high:
            return False
    return True

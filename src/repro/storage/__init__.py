"""XQueC's compressed storage model (paper §2.2).

An XML document is shredded into:

* a :class:`~repro.storage.name_dictionary.NameDictionary` encoding tag
  and attribute names on ``log2(N_t)`` bits;
* a :class:`~repro.storage.structure.StructureTree` of node records
  (id, tag code, parent, children, value pointers) indexed by a
  :class:`~repro.storage.btree.BPlusTree`;
* one :class:`~repro.storage.containers.ValueContainer` per
  ``<type, root-to-leaf path>``, holding individually compressed values
  in lexicographic order;
* a :class:`~repro.storage.summary.StructureSummary` (path summary)
  whose leaves point at the containers;
* simple fan-out/cardinality statistics.

:class:`~repro.storage.repository.CompressedRepository` ties these
together; :func:`~repro.storage.loader.load_document` is the
loader/compressor.
"""

from repro.storage.containers import ContainerRecord, ValueContainer
from repro.storage.loader import load_document
from repro.storage.name_dictionary import NameDictionary
from repro.storage.repository import CompressedRepository
from repro.storage.structure import NodeRecord, StructureTree
from repro.storage.summary import StructureSummary, SummaryNode

__all__ = [
    "CompressedRepository",
    "ContainerRecord",
    "NameDictionary",
    "NodeRecord",
    "StructureSummary",
    "StructureTree",
    "SummaryNode",
    "ValueContainer",
    "load_document",
]

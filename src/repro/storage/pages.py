"""Paged binary persistence for the compressed repository.

A :class:`PageFile` is a flat file of fixed-size pages, each with a
small header (page type, payload length, CRC32).  On top sits
:class:`PagedWriter`/:class:`PagedReader` — a stream abstraction that
spills a byte stream across as many pages as needed.  The repository
persists each storage structure as one named stream, which also gives
the honest on-disk sizes the compression-factor experiments report.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.errors import PageError

PAGE_SIZE = 4096
_HEADER = struct.Struct(">BHI")  # type, payload length, crc32
_PAYLOAD = PAGE_SIZE - _HEADER.size

#: page types
PT_FREE = 0
PT_DATA = 1
PT_CATALOG = 2


class PageFile:
    """Fixed-size-page file with per-page checksums."""

    def __init__(self, path: str | Path, create: bool = False):
        self._path = Path(path)
        mode = "w+b" if create else "r+b"
        self._file = open(self._path, mode)
        self._file.seek(0, 2)
        self._page_count = self._file.tell() // PAGE_SIZE

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def page_count(self) -> int:
        """Number of pages currently in the file."""
        return self._page_count

    @property
    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return self._page_count * PAGE_SIZE

    def allocate(self) -> int:
        """Append a zeroed page; returns its page number."""
        page_no = self._page_count
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(b"\x00" * PAGE_SIZE)
        self._page_count += 1
        return page_no

    def write_page(self, page_no: int, payload: bytes,
                   page_type: int = PT_DATA) -> None:
        """Write one page's payload (checksummed)."""
        if len(payload) > _PAYLOAD:
            raise PageError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{_PAYLOAD}")
        if not 0 <= page_no < self._page_count:
            raise PageError(f"page {page_no} not allocated")
        crc = zlib.crc32(payload)
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(_HEADER.pack(page_type, len(payload), crc))
        self._file.write(payload)

    def read_page(self, page_no: int) -> tuple[int, bytes]:
        """Read one page; returns (page type, payload); verifies CRC."""
        if not 0 <= page_no < self._page_count:
            raise PageError(f"page {page_no} does not exist")
        self._file.seek(page_no * PAGE_SIZE)
        raw = self._file.read(PAGE_SIZE)
        if len(raw) < _HEADER.size:
            raise PageError(f"page {page_no} truncated")
        page_type, length, crc = _HEADER.unpack_from(raw)
        payload = raw[_HEADER.size:_HEADER.size + length]
        if len(payload) != length:
            raise PageError(f"page {page_no} truncated payload")
        if zlib.crc32(payload) != crc:
            raise PageError(f"page {page_no} fails checksum")
        return page_type, payload


class PagedWriter:
    """Spills a byte stream across data pages; returns the page list."""

    def __init__(self, pagefile: PageFile):
        self._pagefile = pagefile
        self._buffer = bytearray()
        self._pages: list[int] = []

    def write(self, data: bytes) -> None:
        self._buffer.extend(data)
        while len(self._buffer) >= _PAYLOAD:
            self._flush_page(self._buffer[:_PAYLOAD])
            del self._buffer[:_PAYLOAD]

    def _flush_page(self, chunk: bytes) -> None:
        page_no = self._pagefile.allocate()
        self._pagefile.write_page(page_no, bytes(chunk))
        self._pages.append(page_no)

    def finish(self) -> list[int]:
        """Flush the tail; returns the ordered page numbers."""
        if self._buffer:
            self._flush_page(bytes(self._buffer))
            self._buffer.clear()
        return self._pages


class PagedReader:
    """Reassembles a byte stream from an ordered page list."""

    def __init__(self, pagefile: PageFile, pages: list[int]):
        self._pagefile = pagefile
        self._pages = pages

    def read_all(self) -> bytes:
        parts = []
        for page_no in self._pages:
            page_type, payload = self._pagefile.read_page(page_no)
            if page_type != PT_DATA:
                raise PageError(
                    f"page {page_no} is not a data page (type {page_type})")
            parts.append(payload)
        return b"".join(parts)

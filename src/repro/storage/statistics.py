"""Simple fan-out and cardinality statistics gathered at load time.

The paper's loader "gathers simple fan-out and cardinality statistics
(e.g. number of person elements)" (§2.2); the optimizer's cost estimates
read them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class DocumentStatistics:
    """Per-document counters filled in by the loader."""

    element_count: int = 0
    attribute_count: int = 0
    text_count: int = 0
    max_depth: int = 0
    #: elements per tag name, e.g. ``person -> 255``.
    tag_cardinality: Counter = field(default_factory=Counter)
    #: elements per distinct path.
    path_cardinality: Counter = field(default_factory=Counter)
    #: summed child-element count per tag (fan-out numerator).
    _fanout_sum: Counter = field(default_factory=Counter)

    def record_element(self, tag: str, path: str, depth: int) -> None:
        self.element_count += 1
        self.tag_cardinality[tag] += 1
        self.path_cardinality[path] += 1
        if depth > self.max_depth:
            self.max_depth = depth

    def record_child(self, parent_tag: str) -> None:
        self._fanout_sum[parent_tag] += 1

    def average_fanout(self, tag: str) -> float:
        """Mean number of element children of ``tag`` elements."""
        count = self.tag_cardinality.get(tag, 0)
        if count == 0:
            return 0.0
        return self._fanout_sum.get(tag, 0) / count

    def cardinality(self, tag: str) -> int:
        """Number of elements with tag ``tag``."""
        return self.tag_cardinality.get(tag, 0)

    def path_count(self, path: str) -> int:
        """Number of nodes reachable by the exact path ``path``."""
        return self.path_cardinality.get(path, 0)

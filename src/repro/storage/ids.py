"""Node identifier schemes.

The paper's prototype uses *simple unique IDs* — sequential integers in
document order — and names the move to *3-valued IDs* (pre, post, level;
in the spirit of TIMBER / Grust's pre-post encoding / structural joins)
as immediate future work (§5, §6), since simple IDs force a parent-child
join per step.  Both are implemented: the loader assigns simple IDs, and
:class:`StructuralId` supports the structural-join extension operators.
"""

from __future__ import annotations

from dataclasses import dataclass


class SimpleIdAssigner:
    """Sequential document-order integer IDs (the paper's current IDs)."""

    def __init__(self, start: int = 0):
        self._next = start

    def next_id(self) -> int:
        """Allocate the next ID."""
        value = self._next
        self._next += 1
        return value

    @property
    def count(self) -> int:
        """Number of IDs allocated so far."""
        return self._next


@dataclass(frozen=True, slots=True)
class StructuralId:
    """A 3-valued (pre, post, level) identifier.

    ``pre`` is the document-order (preorder) rank — it doubles as the
    simple ID — ``post`` the postorder rank, ``level`` the depth.  With
    these, ancestry is a pair of comparisons instead of a chain of
    parent-child joins.
    """

    pre: int
    post: int
    level: int

    def is_ancestor_of(self, other: "StructuralId") -> bool:
        """Strict ancestorship test in O(1)."""
        return self.pre < other.pre and self.post > other.post

    def is_descendant_of(self, other: "StructuralId") -> bool:
        """Strict descendantship test in O(1)."""
        return other.is_ancestor_of(self)

    def is_parent_of(self, other: "StructuralId") -> bool:
        """Parent test: ancestor exactly one level up."""
        return self.is_ancestor_of(other) and self.level == other.level - 1

    def precedes(self, other: "StructuralId") -> bool:
        """Document-order comparison."""
        return self.pre < other.pre

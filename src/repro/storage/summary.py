"""The structure summary (path summary / dataguide) — paper §2.2.

A small tree of all *distinct* paths in the document.  Every summary
node accessible by path ``p`` stores the list of document node IDs
reachable by ``p`` (its *extent*), in document order; leaf nodes (text
and attribute steps) point to the corresponding value container.

It is the entry point of query evaluation: ``StructureSummaryAccess``
resolves a path expression against the summary — never against the
full structure tree — and hands the engine the extent and the
containers to fetch (Figure 4's selective container access).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.obs import runtime

#: virtual step names for value children.
TEXT_STEP = "#text"


class SummaryNode:
    """One distinct path in the document."""

    __slots__ = ("step", "parent", "children", "extent", "container_path")

    def __init__(self, step: str, parent: "SummaryNode | None" = None):
        self.step = step
        self.parent = parent
        self.children: dict[str, SummaryNode] = {}
        #: document node ids reachable by this path, document order.
        self.extent: list[int] = []
        #: container fed by this path (leaf steps only).
        self.container_path: str | None = None

    @property
    def path(self) -> str:
        """Absolute path expression, e.g. ``/site/people/person/@id``."""
        parts: list[str] = []
        node: SummaryNode | None = self
        while node is not None and node.parent is not None:
            parts.append(node.step)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def child(self, step: str) -> "SummaryNode":
        """Get or create the child summary node for ``step``."""
        node = self.children.get(step)
        if node is None:
            node = SummaryNode(step, self)
            self.children[step] = node
        return node

    def walk(self) -> Iterator["SummaryNode"]:
        """This node and all descendants, preorder."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<SummaryNode {self.path} extent={len(self.extent)}>"


class StructureSummary:
    """Root of the path summary with path-expression resolution."""

    def __init__(self):
        self.root = SummaryNode("")  # virtual document node

    def node_count(self) -> int:
        """Number of distinct paths (excluding the virtual root)."""
        return sum(1 for _ in self.root.walk()) - 1

    def resolve(self, steps: list[tuple[str, str]]) -> list[SummaryNode]:
        """Resolve a path against the summary.

        ``steps`` is a list of (axis, name) pairs with axis ``child`` or
        ``descendant``; ``name`` may be ``*`` (any element step), an
        element/attribute name (attributes prefixed ``@``), or
        ``#text``.  Returns every summary node the path reaches.
        """
        if runtime.ACTIVE is not None:
            runtime.add("summary.resolves")
        frontier = [self.root]
        for axis, name in steps:
            matched: list[SummaryNode] = []
            seen: set[int] = set()
            for node in frontier:
                candidates: Iterator[SummaryNode]
                if axis == "child":
                    candidates = iter(node.children.values())
                elif axis == "descendant":
                    candidates = (n for child in node.children.values()
                                  for n in child.walk())
                else:
                    raise ValueError(f"unknown axis {axis!r}")
                for candidate in candidates:
                    if not _step_matches(candidate.step, name):
                        continue
                    if id(candidate) not in seen:
                        seen.add(id(candidate))
                        matched.append(candidate)
            frontier = matched
            if not frontier:
                break
        return frontier

    def leaves(self) -> list[SummaryNode]:
        """All summary nodes that feed containers."""
        return [n for n in self.root.walk()
                if n.container_path is not None]

    def serialized_size_bytes(self) -> int:
        """Step names + delta-varint extents + child pointers.

        The extents are what makes the summary an *access support
        structure* rather than a pure schema: they are the per-path node
        id lists Figure 4's evaluation jumps through.  They are
        ascending document-order ids, so deltas are small varints.
        """
        from repro.util.varint import delta_sizes
        total = 0
        for node in self.root.walk():
            if node.parent is None:
                continue
            total += len(node.step.encode("utf-8")) + 1
            total += delta_sizes(node.extent)
            total += 2 * len(node.children)
        return total


def _step_matches(step: str, name: str) -> bool:
    if name == "*":
        return not step.startswith("@") and step != TEXT_STEP
    return step == name

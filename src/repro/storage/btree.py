"""A from-scratch B+ tree.

Replaces the Berkeley DB back-end the paper's prototype sits on [25]:
the structure tree keeps a B+ search tree over node records (§2.2), and
order-preserving containers use one for interval (``ContAccess``) search.

Leaves hold (key, value) pairs and are chained left-to-right for range
scans.  Keys may be any mutually comparable values (ints, bytes,
:class:`~repro.compression.base.CompressedValue`).  Duplicate keys are
allowed; ``insert`` appends, ``search`` returns the first match, and
``range_scan`` yields every pair in key order.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.obs import runtime


class _Node:
    __slots__ = ("keys", "leaf")

    def __init__(self, leaf: bool):
        self.keys: list = []
        self.leaf = leaf


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self):
        super().__init__(leaf=True)
        self.values: list = []
        self.next: _Leaf | None = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__(leaf=False)
        # len(children) == len(keys) + 1; keys[i] is the smallest key
        # reachable under children[i + 1].
        self.children: list[_Node] = []


class BPlusTree:
    """In-memory B+ tree with leaf chaining."""

    def __init__(self, order: int = 64):
        """``order`` is the maximum number of keys per node (>= 3)."""
        if order < 3:
            raise ValueError("order must be at least 3")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 = root is a leaf)."""
        return self._height

    # -- construction -----------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert one pair (duplicates allowed)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert(self, node: _Node, key, value):
        if node.leaf:
            assert isinstance(node, _Leaf)
            at = bisect.bisect_right(node.keys, key)
            node.keys.insert(at, key)
            node.values.insert(at, value)
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        slot = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[slot], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Leaf):
        mid = len(node.keys) // 2
        right = _Leaf()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return separator, right

    @classmethod
    def bulk_load(cls, pairs: Iterable[tuple], order: int = 64
                  ) -> "BPlusTree":
        """Build a tree from *sorted* pairs, packing leaves fully.

        Raises :class:`ValueError` when the input is not in key order.
        """
        tree = cls(order=order)
        leaves: list[_Leaf] = []
        current = _Leaf()
        previous_key = None
        count = 0
        for key, value in pairs:
            if previous_key is not None and key < previous_key:
                raise ValueError("bulk_load requires sorted input")
            previous_key = key
            if len(current.keys) == order:
                leaves.append(current)
                fresh = _Leaf()
                current.next = fresh
                current = fresh
            current.keys.append(key)
            current.values.append(value)
            count += 1
        leaves.append(current)
        tree._size = count
        # Build internal levels bottom-up.
        level: list[_Node] = list(leaves)
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), order + 1):
                group = level[start:start + order + 1]
                parent = _Internal()
                parent.children = group
                parent.keys = [tree._smallest_key(child)
                               for child in group[1:]]
                parents.append(parent)
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    @staticmethod
    def _smallest_key(node: _Node):
        while not node.leaf:
            assert isinstance(node, _Internal)
            node = node.children[0]
        return node.keys[0] if node.keys else None

    # -- lookup -----------------------------------------------------------

    def _find_leaf(self, key) -> tuple[_Leaf, int]:
        """Leftmost leaf that may hold ``key``, and the candidate slot.

        Descends with ``bisect_left`` so duplicate runs that span a
        separator are entered at their left end; callers walk the leaf
        chain forward from here.
        """
        node = self._root
        while not node.leaf:
            assert isinstance(node, _Internal)
            node = node.children[bisect.bisect_left(node.keys, key)]
        assert isinstance(node, _Leaf)
        if runtime.ACTIVE is not None:
            # One "page" per node on the root-to-leaf descent.
            runtime.record_page_reads(self._height)
        return node, bisect.bisect_left(node.keys, key)

    def search(self, key):
        """First value stored under ``key``, or ``None``."""
        leaf, slot = self._find_leaf(key)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return leaf.values[slot]
        # The first match may start in the next leaf after duplicates.
        if slot == len(leaf.keys) and leaf.next is not None:
            nxt = leaf.next
            if nxt.keys and nxt.keys[0] == key:
                return nxt.values[0]
        return None

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def search_all(self, key) -> list:
        """All values stored under ``key`` (duplicates), in order."""
        return [v for _, v in self.range_scan(key, key, inclusive=True)]

    def range_scan(self, low=None, high=None,
                   inclusive: bool = True) -> Iterator[tuple]:
        """Yield (key, value) pairs with ``low <= key (<|<=) high``.

        ``None`` bounds are open ends; ``inclusive`` controls the upper
        bound only (interval search for ``ContAccess``).
        """
        if low is None:
            node: _Node = self._root
            while not node.leaf:
                assert isinstance(node, _Internal)
                node = node.children[0]
            assert isinstance(node, _Leaf)
            leaf, slot = node, 0
        else:
            leaf, slot = self._find_leaf(low)
        while leaf is not None:
            if runtime.ACTIVE is not None:
                # Each leaf visited by the scan is one page read.
                runtime.record_page_reads(1)
            keys = leaf.keys
            for i in range(slot, len(keys)):
                key = keys[i]
                if low is not None and key < low:
                    continue  # landed one leaf early; skip forward
                if high is not None:
                    if inclusive and high < key:
                        return
                    if not inclusive and not key < high:
                        return
                yield key, leaf.values[i]
            leaf = leaf.next
            slot = 0

    def items(self) -> Iterator[tuple]:
        """All pairs in key order."""
        return self.range_scan()

    # -- accounting -------------------------------------------------------

    def node_count(self) -> tuple[int, int]:
        """(internal nodes, leaves) — for storage-size estimates."""
        internal = 0
        leaves = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                leaves += 1
            else:
                internal += 1
                assert isinstance(node, _Internal)
                stack.extend(node.children)
        return internal, leaves

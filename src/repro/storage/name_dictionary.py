"""Dictionary encoding of element and attribute names (paper §2.2).

With ``N_t`` distinct names each name is a code of ``ceil(log2 N_t)``
bits — the paper's XMark example: 92 names on 7 bits.  Attribute names
are stored with a ``@`` prefix so they never collide with element names.
"""

from __future__ import annotations

import math


class NameDictionary:
    """Bidirectional name <-> code mapping."""

    def __init__(self):
        self._codes: dict[str, int] = {}
        self._names: list[str] = []

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._codes

    def intern(self, name: str) -> int:
        """Return the code for ``name``, allocating one if new."""
        code = self._codes.get(name)
        if code is None:
            code = len(self._names)
            self._codes[name] = code
            self._names.append(name)
        return code

    def code_of(self, name: str) -> int | None:
        """Code for a known name, or ``None``."""
        return self._codes.get(name)

    def name_of(self, code: int) -> str:
        """Name for a code; raises :class:`IndexError` for bad codes."""
        return self._names[code]

    @property
    def code_bits(self) -> int:
        """Bits per code: ``ceil(log2 N_t)`` (minimum 1)."""
        if len(self._names) <= 1:
            return 1
        return math.ceil(math.log2(len(self._names)))

    def serialized_size_bytes(self) -> int:
        """UTF-8 names + one length byte each."""
        return sum(len(n.encode("utf-8")) + 1 for n in self._names)

    def names(self) -> list[str]:
        """All names in code order."""
        return list(self._names)

"""The compressed repository: everything one document shreds into.

Provides the compressed data access methods and the compression-specific
utilities the query processor builds on (paper §1.1, module 2), plus the
size accounting behind the compression-factor experiments (§5) and the
occupancy breakdown of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ContainerNotFoundError
from repro.obs import runtime
from repro.storage.containers import ValueContainer
from repro.storage.name_dictionary import NameDictionary
from repro.storage.statistics import DocumentStatistics
from repro.storage.structure import StructureTree
from repro.storage.summary import TEXT_STEP, StructureSummary, SummaryNode


@dataclass(frozen=True)
class SizeReport:
    """Byte sizes of each storage component (paper §2.2 accounting)."""

    name_dictionary: int
    structure_records: int
    structure_index: int
    container_data: int
    source_models: int
    summary: int
    original: int
    #: bytes of the redundant parent pointers inside structure records
    #: and containers — "backward edges", part of the access support.
    backward_edges: int = 0

    @property
    def total(self) -> int:
        """Everything, access-support structures included."""
        return (self.name_dictionary + self.structure_records
                + self.structure_index + self.container_data
                + self.source_models + self.summary)

    @property
    def essential(self) -> int:
        """Without access support (§2.2): no B+ index, no structure
        summary, no backward edges — the configuration the paper says
        shrinks the database by a factor of 3 to 4 at the price of
        deteriorated query performance."""
        return max(self.total - self.structure_index - self.summary
                   - self.backward_edges, 0)

    @property
    def compression_factor(self) -> float:
        """The paper's CF = 1 - cs/os over the full repository."""
        if self.original <= 0:
            return 0.0
        return 1.0 - self.total / self.original


class CompressedRepository:
    """One compressed, queryable document."""

    def __init__(self, dictionary: NameDictionary,
                 structure: StructureTree,
                 summary: StructureSummary,
                 containers: dict[str, ValueContainer],
                 statistics: DocumentStatistics,
                 original_size_bytes: int):
        self.dictionary = dictionary
        self.structure = structure
        self.summary = summary
        self._containers = containers
        self.statistics = statistics
        self.original_size_bytes = original_size_bytes

    # -- container access ---------------------------------------------------

    def container(self, path: str) -> ValueContainer:
        """Container by path expression; raises ContainerNotFoundError."""
        container = self._containers.get(path)
        if container is None:
            raise ContainerNotFoundError(
                f"no container for path {path!r}")
        if runtime.ACTIVE is not None:
            runtime.add("repository.container_lookups")
        return container

    def containers(self) -> list[ValueContainer]:
        """All containers, sorted by path."""
        return [self._containers[p] for p in sorted(self._containers)]

    def container_paths(self) -> list[str]:
        """All container path expressions, sorted."""
        return sorted(self._containers)

    # -- node-level utilities used by operators and serialization ------------

    def text_of(self, node_id: int) -> str:
        """Concatenated decompressed text of a node's *direct* text
        children (not descendants)."""
        record = self.structure.record(node_id)
        parts = []
        for path, index in record.value_pointers:
            if path.endswith("/" + TEXT_STEP):
                parts.append(self._containers[path].value_at(index))
        return "".join(parts)

    def full_text_of(self, node_id: int) -> str:
        """Concatenated text of the node's whole subtree (string value)."""
        parts = [self.text_of(node_id)]
        record = self.structure.record(node_id)
        for child in record.children:
            parts.append(self.full_text_of(child))
        return "".join(parts)

    def attribute_of(self, node_id: int, name: str) -> str | None:
        """Decompressed value of attribute ``name``, or ``None``."""
        record = self.structure.record(node_id)
        suffix = "/@" + name
        for path, index in record.value_pointers:
            if path.endswith(suffix):
                return self._containers[path].value_at(index)
        return None

    def tag_of(self, node_id: int) -> str:
        """Element name of a node."""
        return self.dictionary.name_of(
            self.structure.record(node_id).tag_code)

    def resolve_path(self, steps: list[tuple[str, str]]
                     ) -> list[SummaryNode]:
        """Resolve a path against the structure summary."""
        return self.summary.resolve(steps)

    def drop_array_views(self) -> None:
        """Release every container's memoized array view.

        Part of serving-layer cache invalidation: the block cache
        charges :meth:`ValueContainer.as_arrays
        <repro.storage.containers.ValueContainer.as_arrays>` views to
        its byte budget, so flushing that cache must also drop the
        memos or the bytes stay resident unaccounted."""
        for container in self._containers.values():
            container.drop_arrays()

    # -- accounting -----------------------------------------------------------

    def size_report(self) -> SizeReport:
        """Byte sizes of every storage component."""
        container_data = sum(c.data_size_bytes()
                             for c in self._containers.values())
        # Shared source models must be counted once, not per container.
        seen_models: set[int] = set()
        source_models = 0
        for container in self._containers.values():
            codec_id = id(container.codec)
            if codec_id not in seen_models:
                seen_models.add(codec_id)
                source_models += container.model_size_bytes()
        from repro.util.varint import varint_size
        container_parent_bytes = 0
        for container in self._containers.values():
            for parent_id, _ in container.scan_decoded():
                container_parent_bytes += varint_size(parent_id)
        return SizeReport(
            name_dictionary=self.dictionary.serialized_size_bytes(),
            structure_records=self.structure.serialized_size_bytes(
                tag_bits=self.dictionary.code_bits),
            structure_index=self.structure.index_size_bytes(),
            container_data=container_data,
            source_models=source_models,
            summary=self.summary.serialized_size_bytes(),
            original=self.original_size_bytes,
            backward_edges=self.structure.backward_edge_bytes()
            + container_parent_bytes,
        )

    @property
    def compression_factor(self) -> float:
        """CF = 1 - cs/os including all access structures (paper §5)."""
        return self.size_report().compression_factor

    def __repr__(self) -> str:
        return (f"<CompressedRepository {len(self.structure)} nodes, "
                f"{len(self._containers)} containers>")

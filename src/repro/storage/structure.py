"""The structure tree: one record per non-value XML node (paper §2.2).

Each record holds its own ID, the tag code, the IDs of its children,
(redundantly) the parent ID, and pointers to its attribute and text
children in their containers.  A B+ search tree over the records is the
paper's access-support structure; ``Parent``/``Child`` operators resolve
through it.

IDs are assigned in document order, so iterating records by ascending ID
is document order — the property the order-preserving operators (§4)
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NodeNotFoundError
from repro.storage.btree import BPlusTree
from repro.storage.ids import StructuralId


@dataclass(slots=True)
class NodeRecord:
    """One structure-tree node record."""

    node_id: int
    tag_code: int
    parent_id: int  # -1 for the root
    children: list[int] = field(default_factory=list)
    #: (container name, record index) pointers to value children —
    #: attribute values and text nodes living in containers.
    value_pointers: list[tuple[str, int]] = field(default_factory=list)
    #: arrival order of element children and text values, as
    #: ``("elem", child id)`` / ``("text", value_pointers index)`` —
    #: what lets XMLSerialize rebuild mixed content exactly.
    content_sequence: list[tuple[str, int]] = field(default_factory=list)
    #: 3-valued ID (pre == node_id); filled by the loader.
    post: int = -1
    level: int = -1

    @property
    def structural_id(self) -> StructuralId:
        """The (pre, post, level) identifier of this node."""
        return StructuralId(self.node_id, self.post, self.level)


class StructureTree:
    """All node records of one document plus the B+ index over them."""

    def __init__(self):
        self._records: list[NodeRecord] = []
        self._index: BPlusTree | None = None
        self._parents = None  # cached parent-id array (lazy)

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: NodeRecord) -> None:
        """Append a record; IDs must arrive dense and in order."""
        if record.node_id != len(self._records):
            raise ValueError(
                f"node ids must be dense/sequential; expected "
                f"{len(self._records)}, got {record.node_id}")
        self._records.append(record)
        self._index = None  # invalidated; rebuilt lazily
        self._parents = None

    def record(self, node_id: int) -> NodeRecord:
        """The record for ``node_id``; raises NodeNotFoundError."""
        if not 0 <= node_id < len(self._records):
            raise NodeNotFoundError(f"no node with id {node_id}")
        return self._records[node_id]

    def __iter__(self):
        return iter(self._records)

    @property
    def index(self) -> BPlusTree:
        """B+ search tree over node id -> record (built lazily)."""
        if self._index is None:
            self._index = BPlusTree.bulk_load(
                ((r.node_id, r) for r in self._records))
        return self._index

    def parent_array(self):
        """int64 array of parent ids by node id (-1 at the root).

        Cached until the next :meth:`add`; the batch engine's
        vectorized ``Parent`` steps and ancestor climbs index it
        directly instead of calling :meth:`parent_of` per node.
        """
        if self._parents is None:
            import numpy as np
            self._parents = np.fromiter(
                (r.parent_id for r in self._records),
                dtype=np.int64, count=len(self._records))
        return self._parents

    # -- navigation primitives used by the physical operators -------------

    def parent_of(self, node_id: int) -> int | None:
        """Parent id, or ``None`` at the root."""
        parent = self.record(node_id).parent_id
        return None if parent < 0 else parent

    def children_of(self, node_id: int,
                    tag_code: int | None = None) -> list[int]:
        """Child ids in document order, optionally filtered by tag."""
        children = self.record(node_id).children
        if tag_code is None:
            return list(children)
        records = self._records
        return [c for c in children if records[c].tag_code == tag_code]

    def descendants_of(self, node_id: int,
                       tag_code: int | None = None) -> list[int]:
        """Descendant ids in document order (pre/post interval scan)."""
        record = self.record(node_id)
        # Descendants of a preorder node are exactly the dense ID range
        # (node_id, x] where x is found via the post numbers.
        result = []
        records = self._records
        for candidate in range(node_id + 1, len(records)):
            if records[candidate].post > record.post:
                break
            if tag_code is None or records[candidate].tag_code == tag_code:
                result.append(candidate)
        return result

    # -- accounting --------------------------------------------------------

    def record_size_bytes(self, record: NodeRecord,
                          tag_bits: int = 8) -> int:
        """Serialized size of one record in a compact binary layout.

        IDs are dense and document-ordered, so they are implicit (the
        record's position); the parent is a backward delta varint, the
        children forward delta varints, the post number a varint, and
        each value pointer a (container-id, offset) varint pair.  This
        is the representation a production record format would use —
        the 4-bytes-everything estimate would dominate the document and
        make the paper's compression factors unreachable.
        """
        from repro.util.varint import varint_size
        tag_bytes = (tag_bits + 7) // 8
        size = tag_bytes
        size += varint_size(record.node_id - record.parent_id
                            if record.parent_id >= 0 else 0)
        # post numbers track preorder ranks closely (they differ by the
        # open-ancestor count), so the zigzag delta is ~1 byte.
        size += varint_size(abs(record.post - record.node_id) * 2 + 1
                            if record.post >= 0 else 0)
        size += varint_size(len(record.children))
        previous = record.node_id
        for child in record.children:
            size += varint_size(child - previous)
            previous = child
        for _, offset in record.value_pointers:
            size += 1 + varint_size(offset)  # container id + slot
        return size

    def backward_edge_bytes(self) -> int:
        """Bytes spent on the redundant parent pointers (§2.2: part of
        the access support that can be dropped to shrink the store)."""
        from repro.util.varint import varint_size
        return sum(
            varint_size(r.node_id - r.parent_id)
            for r in self._records if r.parent_id >= 0)

    def serialized_size_bytes(self, tag_bits: int = 8) -> int:
        """Total serialized record bytes (without the B+ index)."""
        return sum(self.record_size_bytes(r, tag_bits)
                   for r in self._records)

    def index_size_bytes(self) -> int:
        """Approximate serialized size of the B+ search tree.

        The leaf payload *is* the record sequence (already counted by
        :meth:`serialized_size_bytes`); the index proper is the internal
        separator levels.
        """
        internal, _ = self.index.node_count()
        return internal * 512

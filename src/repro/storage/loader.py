"""The loader/compressor: XML text -> compressed repository (paper §1.1).

Streams SAX-like events (never materialising a DOM), assigning document-
order IDs, building the structure tree, the structure summary with its
extents, the per-path value containers, and the statistics.  Containers
are then *sealed*: their elementary type is inferred (XPRESS-style), a
compression configuration decides codec and source-model sharing, and
every value is individually compressed.

Codec choice without a workload follows §2.1: ALM for strings (so that
any later inequality predicate stays in the compressed domain), typed
codecs for canonical numeric containers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.compression.registry import train_codec
from repro.storage.name_dictionary import NameDictionary
from repro.storage.repository import CompressedRepository
from repro.storage.statistics import DocumentStatistics
from repro.storage.structure import NodeRecord, StructureTree
from repro.storage.summary import TEXT_STEP, StructureSummary
from repro.storage.containers import ValueContainer
from repro.xmlio.events import (
    Characters,
    EndElement,
    StartElement,
    iter_events,
)

#: default string codec when no workload is given (paper §2.1).
DEFAULT_STRING_CODEC = "alm"


def infer_value_type(values: Iterable[str]) -> str:
    """XPRESS-style elementary type inference for a container.

    ``int``/``float`` only when *every* value round-trips canonically,
    so compression stays lossless.  A container mixing the two text
    forms (``"500"`` and ``"5.5"``) stays ``string``: the float codec's
    canonical domain would rewrite ``"500"`` to ``"500.0"`` on decode,
    which is lossy, and the reference comparison semantics for untyped
    text are lexicographic anyway.
    """
    from repro.compression.numeric import (
        is_canonical_float,
        is_canonical_int,
    )
    saw_any = False
    all_int = True
    all_float = True
    for value in values:
        saw_any = True
        if all_int and not is_canonical_int(value):
            all_int = False
        if all_float and not is_canonical_float(value):
            all_float = False
        if not all_int and not all_float:
            return "string"
    if not saw_any:
        return "string"
    if all_int:
        return "int"
    if all_float:
        return "float"
    return "string"


def load_document(xml_text: str, configuration=None,
                  default_string_codec: str = DEFAULT_STRING_CODEC
                  ) -> CompressedRepository:
    """Parse, shred and compress one XML document.

    ``configuration`` is an optional
    :class:`repro.partitioning.config.CompressionConfiguration` produced
    by the workload-driven search; without one, the §2.1 defaults apply.
    """
    dictionary = NameDictionary()
    structure = StructureTree()
    summary = StructureSummary()
    statistics = DocumentStatistics()
    containers: dict[str, ValueContainer] = {}

    # Parsing state: stacks of open elements.
    id_stack: list[int] = []
    summary_stack = [summary.root]
    next_id = 0
    next_post = 0
    original_size = len(xml_text.encode("utf-8"))

    def container_for(summary_node) -> ValueContainer:
        path = summary_node.path
        container = containers.get(path)
        if container is None:
            container = ValueContainer(path)
            containers[path] = container
            summary_node.container_path = path
        return container

    for event in iter_events(xml_text):
        if isinstance(event, StartElement):
            node_id = next_id
            next_id += 1
            parent_id = id_stack[-1] if id_stack else -1
            tag_code = dictionary.intern(event.name)
            record = NodeRecord(node_id, tag_code, parent_id,
                                level=len(id_stack))
            structure.add(record)
            if parent_id >= 0:
                parent_record = structure.record(parent_id)
                parent_record.children.append(node_id)
                parent_record.content_sequence.append(("elem", node_id))
                statistics.record_child(
                    dictionary.name_of(parent_record.tag_code))
            summary_node = summary_stack[-1].child(event.name)
            summary_node.extent.append(node_id)
            statistics.record_element(event.name, summary_node.path,
                                      len(id_stack) + 1)
            id_stack.append(node_id)
            summary_stack.append(summary_node)
            for attr_name, attr_value in event.attributes:
                dictionary.intern("@" + attr_name)
                attr_summary = summary_node.child("@" + attr_name)
                attr_summary.extent.append(node_id)
                container = container_for(attr_summary)
                record.value_pointers.append(
                    (container.path, len(container.pending_values)))
                container.add_value(attr_value, node_id)
                statistics.attribute_count += 1
        elif isinstance(event, EndElement):
            node_id = id_stack.pop()
            structure.record(node_id).post = next_post
            next_post += 1
            summary_stack.pop()
        elif isinstance(event, Characters):
            if not id_stack:
                continue
            parent_id = id_stack[-1]
            text_summary = summary_stack[-1].child(TEXT_STEP)
            text_summary.extent.append(parent_id)
            container = container_for(text_summary)
            parent_record = structure.record(parent_id)
            parent_record.content_sequence.append(
                ("text", len(parent_record.value_pointers)))
            parent_record.value_pointers.append(
                (container.path, len(container.pending_values)))
            container.add_value(event.text, parent_id)
            statistics.text_count += 1

    _seal_containers(containers, configuration, default_string_codec)
    # Sealing sorted the containers by value; remap the structure tree's
    # value pointers from staging order to final record slots.
    for record in structure:
        if record.value_pointers:
            record.value_pointers = [
                (path, containers[path].sorted_position(index))
                for path, index in record.value_pointers
            ]
    return CompressedRepository(
        dictionary=dictionary,
        structure=structure,
        summary=summary,
        containers=containers,
        statistics=statistics,
        original_size_bytes=original_size,
    )


def _seal_containers(containers: dict[str, ValueContainer],
                     configuration,
                     default_string_codec: str) -> None:
    """Choose codecs (configuration or defaults) and seal everything."""
    remaining = dict(containers)
    if configuration is not None:
        for group in configuration.groups:
            members = [remaining.pop(path) for path in group.container_paths
                       if path in remaining]
            if not members:
                continue
            # One shared source model per group (§3): train on the union
            # of the members' values.
            training = [v for c in members for v in c.pending_values]
            codec = train_codec(group.algorithm, training)
            for container in members:
                # Workload groups always use string codecs, so the
                # container keeps string ordering: the lexicographic
                # record order must match the codec's compressed order.
                container.seal(codec)
    for container in remaining.values():
        values = container.pending_values
        container.value_type = infer_value_type(values)
        if container.value_type == "int":
            codec = train_codec("integer", values)
        elif container.value_type == "float":
            codec = train_codec("float", values)
        else:
            codec = train_codec(default_string_codec, values)
        container.seal(codec)



"""Repository persistence: save/load over the paged file format.

The paper's prototype keeps its structures in Berkeley DB; ours
persists to a single :class:`~repro.storage.pages.PageFile` with one
checksummed stream per storage component and a catalog page (page 0)
mapping streams to their page ranges.  The format is fully binary —
varints, length-prefixed strings, serialized codec models — and loads
back into a repository whose compressed values are bit-identical (a
requirement for compressed-domain equality across sessions).

::

    save_repository(repo, "auction.xqc")
    repo = load_repository("auction.xqc")
"""

from __future__ import annotations

from pathlib import Path

from repro.compression.serialization import (
    deserialize_codec,
    serialize_codec,
)
from repro.compression.base import CompressedValue
from repro.errors import PageError
from repro.storage.containers import ContainerRecord, ValueContainer
from repro.storage.name_dictionary import NameDictionary
from repro.storage.pages import PageFile, PagedReader, PagedWriter, \
    PT_CATALOG
from repro.storage.repository import CompressedRepository
from repro.storage.statistics import DocumentStatistics
from repro.storage.structure import NodeRecord, StructureTree
from repro.storage.summary import StructureSummary, SummaryNode
from repro.util.bytestream import ByteReader, ByteWriter

_MAGIC = b"XQC1"
_STREAMS = ("meta", "dictionary", "codecs", "containers", "structure",
            "summary", "statistics")


def save_repository(repository: CompressedRepository,
                    path: str | Path) -> None:
    """Write the repository to ``path`` (overwrites)."""
    container_paths = repository.container_paths()
    path_index = {p: i for i, p in enumerate(container_paths)}
    codec_blobs, codec_of_container = _collect_codecs(repository,
                                                      container_paths)
    streams = {
        "meta": _write_meta(repository),
        "dictionary": _write_dictionary(repository.dictionary),
        "codecs": _write_codecs(codec_blobs),
        "containers": _write_containers(repository, container_paths,
                                        codec_of_container),
        "structure": _write_structure(repository.structure, path_index),
        "summary": _write_summary(repository.summary, path_index),
        "statistics": _write_statistics(repository.statistics),
    }
    with PageFile(path, create=True) as pagefile:
        catalog_page = pagefile.allocate()  # reserve page 0
        ranges: dict[str, tuple[int, int]] = {}
        for name in _STREAMS:
            writer = PagedWriter(pagefile)
            writer.write(streams[name])
            pages = writer.finish()
            first = pages[0] if pages else 0
            ranges[name] = (first, len(pages))
        catalog = ByteWriter()
        catalog.raw(_MAGIC)
        catalog.varint(len(_STREAMS))
        for name in _STREAMS:
            first, count = ranges[name]
            catalog.string(name)
            catalog.varint(first)
            catalog.varint(count)
        pagefile.write_page(catalog_page, catalog.getvalue(),
                            page_type=PT_CATALOG)


def load_repository(path: str | Path) -> CompressedRepository:
    """Read a repository previously written by :func:`save_repository`."""
    with PageFile(path) as pagefile:
        page_type, payload = pagefile.read_page(0)
        if page_type != PT_CATALOG:
            raise PageError("page 0 is not a catalog page")
        catalog = ByteReader(payload)
        if catalog.raw() != _MAGIC:
            raise PageError("not an XQueC repository file")
        ranges: dict[str, tuple[int, int]] = {}
        for _ in range(catalog.varint()):
            name = catalog.string()
            first = catalog.varint()
            count = catalog.varint()
            ranges[name] = (first, count)
        streams = {}
        for name in _STREAMS:
            if name not in ranges:
                raise PageError(f"stream {name!r} missing from catalog")
            first, count = ranges[name]
            pages = list(range(first, first + count))
            streams[name] = PagedReader(pagefile, pages).read_all()

    original_size = _read_meta(streams["meta"])
    dictionary = _read_dictionary(streams["dictionary"])
    codecs = _read_codecs(streams["codecs"])
    containers, container_paths = _read_containers(
        streams["containers"], codecs)
    structure = _read_structure(streams["structure"], container_paths)
    summary = _read_summary(streams["summary"], container_paths)
    statistics = _read_statistics(streams["statistics"])
    return CompressedRepository(
        dictionary=dictionary,
        structure=structure,
        summary=summary,
        containers=containers,
        statistics=statistics,
        original_size_bytes=original_size,
    )


# -- per-stream writers/readers ------------------------------------------------

def _write_meta(repository: CompressedRepository) -> bytes:
    return ByteWriter().varint(repository.original_size_bytes) \
        .getvalue()


def _read_meta(data: bytes) -> int:
    return ByteReader(data).varint()


def _write_dictionary(dictionary: NameDictionary) -> bytes:
    writer = ByteWriter()
    names = dictionary.names()
    writer.varint(len(names))
    for name in names:
        writer.string(name)
    return writer.getvalue()


def _read_dictionary(data: bytes) -> NameDictionary:
    reader = ByteReader(data)
    dictionary = NameDictionary()
    for _ in range(reader.varint()):
        dictionary.intern(reader.string())
    return dictionary


def _collect_codecs(repository: CompressedRepository,
                    container_paths: list[str]
                    ) -> tuple[list[bytes], dict[str, int]]:
    """Dedup shared source models: one blob per distinct codec."""
    blobs: list[bytes] = []
    index_by_id: dict[int, int] = {}
    codec_of_container: dict[str, int] = {}
    for path in container_paths:
        codec = repository.container(path).codec
        key = id(codec)
        if key not in index_by_id:
            index_by_id[key] = len(blobs)
            blobs.append(serialize_codec(codec))
        codec_of_container[path] = index_by_id[key]
    return blobs, codec_of_container


def _write_codecs(blobs: list[bytes]) -> bytes:
    writer = ByteWriter()
    writer.varint(len(blobs))
    for blob in blobs:
        writer.raw(blob)
    return writer.getvalue()


def _read_codecs(data: bytes) -> list:
    reader = ByteReader(data)
    return [deserialize_codec(reader.raw())
            for _ in range(reader.varint())]


def _write_containers(repository: CompressedRepository,
                      container_paths: list[str],
                      codec_of_container: dict[str, int]) -> bytes:
    writer = ByteWriter()
    writer.varint(len(container_paths))
    for path in container_paths:
        container = repository.container(path)
        writer.string(path)
        writer.string(container.value_type)
        writer.varint(codec_of_container[path])
        if container.is_blob:
            writer.byte(1)
            writer.raw(container._blob)  # sealed blob bytes
            assert container._blob_parents is not None
            writer.varint(len(container._blob_parents))
            for parent in container._blob_parents:
                writer.varint(parent)
        else:
            writer.byte(0)
            writer.varint(len(container))
            for record in container._records:
                # Payload length is implied by the bit count.
                writer.varint(record.compressed.bits)
                writer.exact(record.compressed.data)
                writer.varint(record.parent_id)
    return writer.getvalue()


def _read_containers(data: bytes, codecs: list
                     ) -> tuple[dict[str, ValueContainer], list[str]]:
    reader = ByteReader(data)
    containers: dict[str, ValueContainer] = {}
    paths: list[str] = []
    for _ in range(reader.varint()):
        path = reader.string()
        value_type = reader.string()
        codec = codecs[reader.varint()]
        paths.append(path)
        if reader.byte():
            blob = reader.raw()
            parents = [reader.varint()
                       for _ in range(reader.varint())]
            values = codec.decode_many(blob)
            containers[path] = ValueContainer.from_blob(
                path, value_type, codec, blob, values, parents)
        else:
            records = []
            for _ in range(reader.varint()):
                bits = reader.varint()
                payload = reader.exact((bits + 7) // 8)
                parent = reader.varint()
                records.append(ContainerRecord(
                    CompressedValue(payload, bits), parent))
            containers[path] = ValueContainer.from_records(
                path, value_type, codec, records)
    return containers, paths


def _write_structure(structure: StructureTree,
                     path_index: dict[str, int]) -> bytes:
    writer = ByteWriter()
    writer.varint(len(structure))
    for record in structure:
        writer.varint(record.tag_code)
        writer.varint(record.node_id - record.parent_id
                      if record.parent_id >= 0 else 0)
        writer.varint(record.post)
        writer.varint(record.level)
        writer.varint(len(record.value_pointers))
        for path, offset in record.value_pointers:
            writer.varint(path_index[path])
            writer.varint(offset)
        writer.varint(len(record.content_sequence))
        for kind, ref in record.content_sequence:
            writer.byte(0 if kind == "elem" else 1)
            writer.varint(ref)
    return writer.getvalue()


def _read_structure(data: bytes,
                    container_paths: list[str]) -> StructureTree:
    reader = ByteReader(data)
    structure = StructureTree()
    count = reader.varint()
    for node_id in range(count):
        tag_code = reader.varint()
        parent_delta = reader.varint()
        parent_id = node_id - parent_delta if parent_delta else -1
        if node_id == 0:
            parent_id = -1
        post = reader.varint()
        level = reader.varint()
        pointers = []
        for _ in range(reader.varint()):
            pointers.append((container_paths[reader.varint()],
                             reader.varint()))
        content = []
        for _ in range(reader.varint()):
            kind = "elem" if reader.byte() == 0 else "text"
            content.append((kind, reader.varint()))
        record = NodeRecord(node_id, tag_code, parent_id, post=post,
                            level=level, value_pointers=pointers,
                            content_sequence=content)
        structure.add(record)
        if parent_id >= 0:
            structure.record(parent_id).children.append(node_id)
    return structure


def _write_summary(summary: StructureSummary,
                   path_index: dict[str, int]) -> bytes:
    writer = ByteWriter()

    def write_node(node: SummaryNode) -> None:
        writer.string(node.step)
        writer.varint(len(node.extent))
        previous = 0
        for value in node.extent:
            writer.varint(value - previous)
            previous = value
        writer.signed(path_index[node.container_path]
                      if node.container_path is not None else -1)
        writer.varint(len(node.children))
        for step in sorted(node.children):
            write_node(node.children[step])

    write_node(summary.root)
    return writer.getvalue()


def _read_summary(data: bytes,
                  container_paths: list[str]) -> StructureSummary:
    reader = ByteReader(data)
    summary = StructureSummary()

    def read_into(node: SummaryNode) -> None:
        node.step = reader.string()
        extent = []
        previous = 0
        for _ in range(reader.varint()):
            previous += reader.varint()
            extent.append(previous)
        node.extent = extent
        container = reader.signed()
        if container >= 0:
            node.container_path = container_paths[container]
        for _ in range(reader.varint()):
            child = SummaryNode("", node)
            read_into(child)
            node.children[child.step] = child

    read_into(summary.root)
    return summary


def _write_statistics(statistics: DocumentStatistics) -> bytes:
    writer = ByteWriter()
    writer.varint(statistics.element_count)
    writer.varint(statistics.attribute_count)
    writer.varint(statistics.text_count)
    writer.varint(statistics.max_depth)
    for counter in (statistics.tag_cardinality,
                    statistics.path_cardinality,
                    statistics._fanout_sum):
        writer.varint(len(counter))
        for key, value in sorted(counter.items()):
            writer.string(key)
            writer.varint(value)
    return writer.getvalue()


def _read_statistics(data: bytes) -> DocumentStatistics:
    reader = ByteReader(data)
    statistics = DocumentStatistics(
        element_count=reader.varint(),
        attribute_count=reader.varint(),
        text_count=reader.varint(),
        max_depth=reader.varint(),
    )
    for counter in (statistics.tag_cardinality,
                    statistics.path_cardinality,
                    statistics._fanout_sum):
        for _ in range(reader.varint()):
            key = reader.string()
            counter[key] = reader.varint()
    return statistics

"""The XQueC system facade (the paper's primary contribution)."""

from repro.core.system import XQueCSystem

__all__ = ["XQueCSystem"]

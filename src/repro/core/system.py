"""``XQueCSystem``: loader/compressor + repository + query processor.

The one-stop public API mirroring the paper's three modules (§1.1):

1. the *loader and compressor* — :meth:`XQueCSystem.load`, optionally
   driven by a query workload through the §3 cost-based greedy search;
2. the *compressed repository* — :attr:`XQueCSystem.repository`;
3. the *query processor* — :meth:`XQueCSystem.query`.

Typical use::

    system = XQueCSystem.load(xml_text, workload_queries=[q1, q2])
    result = system.query(q1)
    print(result.to_xml(), system.compression_factor)
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.partitioning.cost import ContainerProfile
from repro.partitioning.search import DEFAULT_ALGORITHMS, greedy_search
from repro.partitioning.workload import Predicate, Workload
from repro.query.ast import (
    Comparison,
    Expression,
    FLWOR,
    FunctionCall,
    PathExpr,
    Step,
    StringLiteral,
    NumberLiteral,
    VarRef,
)
from repro.query.engine import QueryResult
from repro.query.options import ExecutionOptions, coerce_options
from repro.query.parser import parse_query
from repro.storage.loader import load_document
from repro.storage.repository import CompressedRepository, SizeReport


class XQueCSystem:
    """A loaded, compressed, queryable XML document.

    Query evaluation goes through an internal serving
    :class:`~repro.service.session.Session`, so repeated queries hit
    the prepared-plan cache and the decoded-block cache; the session
    (and its metrics registry with the ``cache.*`` counters) is exposed
    as :attr:`session`.
    """

    def __init__(self, repository: CompressedRepository,
                 configuration: CompressionConfiguration | None = None,
                 workload: Workload | None = None,
                 collection: dict[str, CompressedRepository]
                 | None = None):
        from repro.service.session import Session
        self.repository = repository
        self.configuration = configuration
        self.workload = workload
        self.session = Session(repository, collection)

    @property
    def _engine(self):
        """The session's engine (kept for existing internal callers)."""
        return self.session.engine

    # -- loading -------------------------------------------------------------

    @classmethod
    def load(cls, xml_text: str,
             workload_queries: Sequence[str] | None = None,
             algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
             similarity_grouping: bool = False,
             similarity_threshold: float = 0.55,
             seed: int = 0) -> "XQueCSystem":
        """Compress a document, optionally workload-driven.

        With ``workload_queries``, the documents are first shredded to
        discover the containers, the queries' predicates are extracted
        into a :class:`Workload`, the §3.3 greedy search picks a
        configuration, and the document is loaded under it.  Without a
        workload, the §2.1 defaults apply (ALM strings, typed numeric
        codecs); ``similarity_grouping`` additionally shares one ALM
        source model among string containers whose similarity-matrix
        entries exceed ``similarity_threshold`` (fewer, better-trained
        models at no queryability cost).
        """
        if not workload_queries:
            if not similarity_grouping:
                return cls(load_document(xml_text))
            return cls(*_load_similarity_grouped(
                xml_text, similarity_threshold))
        probe = load_document(xml_text)
        workload = extract_workload(workload_queries, probe)
        profiles = [
            ContainerProfile.from_values(
                container.path,
                [v for _, v in container.scan_decoded()])
            for container in probe.containers()
            if container.path in workload.touched_paths()
        ]
        configuration, _ = greedy_search(profiles, workload,
                                         algorithms=algorithms,
                                         seed=seed)
        # Containers no query touches are outside the cost model
        # (§3.2 footnote); give them an order-unaware algorithm with a
        # good ratio — bzip2 — as §3.3 suggests.  String containers
        # only: numeric ones keep their typed codecs.
        covered = set(configuration.paths())
        extra_groups = []
        for container in probe.containers():
            if container.path in covered:
                continue
            if container.value_type != "string":
                continue
            extra_groups.append(
                ContainerGroup((container.path,), "bzip2"))
        configuration = CompressionConfiguration(
            configuration.groups + extra_groups)
        repository = load_document(xml_text,
                                   configuration=configuration)
        return cls(repository, configuration, workload)

    @classmethod
    def load_collection(cls, documents: dict[str, str],
                        default: str | None = None) -> "XQueCSystem":
        """Compress several documents; queries select them with
        ``document("name")/...`` and may join across them.

        ``default`` names the document bare ``/...`` paths address
        (the first one if omitted).
        """
        if not documents:
            raise ValueError("load_collection needs at least one "
                             "document")
        repositories = {name: load_document(text)
                        for name, text in documents.items()}
        default_name = default if default is not None \
            else next(iter(documents))
        return cls(repositories[default_name],
                   collection=repositories)

    # -- querying --------------------------------------------------------------

    def query(self, query_text: str | Expression,
              options: ExecutionOptions | None = None,
              **legacy) -> QueryResult:
        """Evaluate a query over the compressed repository.

        ``options`` is an
        :class:`~repro.query.options.ExecutionOptions`; the legacy
        ``telemetry=`` keyword still works behind a
        ``DeprecationWarning``.  Runs go through the internal session,
        so re-running a query hits the plan cache.
        """
        options = coerce_options(options, legacy, "XQueCSystem.query")
        return self.session.execute(query_text, options)

    def prepare(self, query_text: str | Expression):
        """Parse + verify once; returns a re-runnable
        :class:`~repro.service.session.PreparedQuery`."""
        return self.session.prepare(query_text)

    def explain(self, query_text: str | Expression) -> str:
        """Describe the evaluation strategy without running the query."""
        return self.session.explain(query_text)

    def explain_analyze(self, query_text: str | Expression) -> str:
        """Run the query and render the plan with actual counts."""
        return self.session.explain_analyze(query_text)

    def build_fulltext_index(self, container_path: str):
        """Register a §6 full-text index on one container."""
        return self.session.build_fulltext_index(container_path)

    # -- accounting -------------------------------------------------------------

    @property
    def compression_factor(self) -> float:
        """CF = 1 - cs/os, access structures included (§5)."""
        return self.repository.compression_factor

    def size_report(self) -> SizeReport:
        """Per-component storage breakdown (§2.2)."""
        return self.repository.size_report()


def _load_similarity_grouped(xml_text: str, threshold: float
                             ) -> tuple[CompressedRepository,
                                        CompressionConfiguration]:
    """No-workload loading with similarity-clustered source models."""
    from repro.partitioning.similarity import cluster_by_similarity
    probe = load_document(xml_text)
    string_containers = [c for c in probe.containers()
                         if c.value_type == "string"]
    value_lists = [[v for _, v in c.scan_decoded()]
                   for c in string_containers]
    clusters = cluster_by_similarity(value_lists, threshold)
    groups = [ContainerGroup(
        tuple(string_containers[i].path for i in cluster), "alm")
        for cluster in clusters if len(cluster) > 1]
    configuration = CompressionConfiguration(groups)
    repository = load_document(xml_text, configuration=configuration)
    return repository, configuration


def extract_workload(queries: Sequence[str | Expression],
                     repository: CompressedRepository) -> Workload:
    """Extract E/I/D predicates from queries against loaded containers.

    Walks each query's comparisons and ``contains``/``starts-with``
    calls, resolves the operand paths to container paths via the
    structure summary, and classifies each as ``eq``/``ineq``/``wild``
    — the input of the §3.2 cost model.
    """
    workload = Workload()
    for query in queries:
        ast = parse_query(query) if isinstance(query, str) else query
        resolver = _PathResolver(repository)
        resolver.walk(ast)
        for kind, left, right in resolver.predicates:
            for left_path in left or [None]:
                if left_path is None:
                    continue
                if right:
                    for right_path in right:
                        workload.add(Predicate(kind, left_path,
                                               right_path))
                else:
                    workload.add(Predicate(kind, left_path))
    return workload


class _PathResolver:
    """Resolves comparison operands to container paths, per variable."""

    def __init__(self, repository: CompressedRepository):
        self._repository = repository
        #: variable -> absolute summary steps it ranges over.
        self._bindings: dict[str, list[tuple[str, str]]] = {}
        #: (kind, left container paths, right container paths)
        self.predicates: list[tuple[str, list[str], list[str]]] = []

    def walk(self, expr: Expression) -> None:
        if isinstance(expr, FLWOR):
            for clause in expr.clauses:
                steps = self._absolute_steps(clause.source)
                if steps is not None:
                    self._bindings[clause.var] = steps
                self.walk(clause.source)
            if expr.where is not None:
                self.walk(expr.where)
            self.walk(expr.result)
        elif isinstance(expr, Comparison):
            kind = "eq" if expr.op in ("=", "!=") else "ineq"
            self.predicates.append((
                kind,
                self._container_paths(expr.left),
                self._container_paths(expr.right)))
        elif isinstance(expr, FunctionCall):
            # starts-with is the prefix-match ("wild") predicate kind;
            # contains() is full-text — no algorithm evaluates it in
            # the compressed domain, so it adds no E/I/D entry.
            if expr.name == "starts-with" and expr.args:
                self.predicates.append((
                    "wild", self._container_paths(expr.args[0]), []))
            for arg in expr.args:
                self.walk(arg)
        elif hasattr(expr, "__dataclass_fields__"):
            for field in expr.__dataclass_fields__:
                value = getattr(expr, field)
                if isinstance(value, Expression):
                    self.walk(value)
                elif isinstance(value, tuple):
                    for element in value:
                        if isinstance(element, Expression):
                            self.walk(element)

    def _absolute_steps(self, expr) -> list[tuple[str, str]] | None:
        if not isinstance(expr, PathExpr):
            return None
        if isinstance(expr.start, VarRef):
            base = self._bindings.get(expr.start.name)
            if base is None:
                return None
            return base + [_summary_step(s) for s in expr.steps]
        if expr.start is None:
            return [_summary_step(s) for s in expr.steps]
        return None

    def _container_paths(self, expr) -> list[str]:
        if isinstance(expr, (StringLiteral, NumberLiteral)):
            return []
        steps = self._absolute_steps(expr)
        if steps is None:
            return []
        nodes = self._repository.resolve_path(steps)
        return [n.container_path for n in nodes
                if n.container_path is not None]


def _summary_step(step: Step) -> tuple[str, str]:
    if step.axis == "attribute":
        return ("child", "@" + step.test)
    if step.test == "text()":
        return (step.axis, "#text")
    return (step.axis, step.test)

"""Serialize a DOM tree (or event stream) back to XML text."""

from __future__ import annotations

from repro.xmlio.dom import Document, Element, Node, Text
from repro.xmlio.escape import escape_attribute, escape_text


def serialize(node: Document | Node, indent: str | None = None) -> str:
    """Serialize a document, element, or text node to XML text.

    ``indent=None`` produces compact output whose parse round-trips exactly
    (no synthetic whitespace); passing e.g. ``"  "`` pretty-prints.
    """
    parts: list[str] = []
    if isinstance(node, Document):
        node = node.root
    _write(node, parts, indent, 0)
    return "".join(parts)


def _write(node: Node, parts: list[str], indent: str | None,
           depth: int) -> None:
    pad = "" if indent is None else indent * depth
    newline = "" if indent is None else "\n"
    if isinstance(node, Text):
        parts.append(escape_text(node.value))
        return
    assert isinstance(node, Element)
    parts.append(f"{pad}<{node.name}")
    for attr in node.attributes:
        parts.append(f' {attr.name}="{escape_attribute(attr.value)}"')
    if not node.children:
        parts.append(f"/>{newline}")
        return
    only_text = all(isinstance(c, Text) for c in node.children)
    if only_text:
        parts.append(">")
        for child in node.children:
            _write(child, parts, None, 0)
        parts.append(f"</{node.name}>{newline}")
        return
    parts.append(f">{newline}")
    for child in node.children:
        if isinstance(child, Text) and indent is not None:
            if not child.value.strip():
                continue
            parts.append(f"{pad}{indent}{escape_text(child.value)}{newline}")
        else:
            _write(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.name}>{newline}")

"""A lightweight in-memory XML tree.

Used by the uncompressed-engine baseline ("Galax" stand-in), the data
generators, and tests.  The XQueC loader itself streams events and never
materialises this tree.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.xmlio.events import (
    Characters,
    EndElement,
    StartElement,
    iter_events,
)


class Node:
    """Common base so that callers can type-switch on tree nodes."""

    __slots__ = ("parent",)

    def __init__(self):
        self.parent: Element | None = None


class Text(Node):
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"Text({self.value!r})"


class Attribute(Node):
    """An attribute node (owned by an :class:`Element`)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str):
        super().__init__()
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}={self.value!r})"


class Element(Node):
    """An element with attributes and ordered children."""

    __slots__ = ("name", "attributes", "children")

    def __init__(self, name: str,
                 attributes: list[Attribute] | None = None,
                 children: list[Node] | None = None):
        super().__init__()
        self.name = name
        self.attributes: list[Attribute] = attributes or []
        self.children: list[Node] = children or []
        for attr in self.attributes:
            attr.parent = self
        for child in self.children:
            child.parent = self

    # -- construction -----------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append a child node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def set_attribute(self, name: str, value: str) -> Attribute:
        """Add (or replace) an attribute and return it."""
        for attr in self.attributes:
            if attr.name == name:
                attr.value = value
                return attr
        attr = Attribute(name, value)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    # -- navigation -------------------------------------------------------

    def attribute(self, name: str) -> str | None:
        """Value of attribute ``name``, or ``None``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return None

    def child_elements(self, name: str | None = None) -> list[Element]:
        """Element children, optionally filtered by tag name."""
        return [c for c in self.children
                if isinstance(c, Element) and (name is None or c.name == name)]

    def descendants(self, name: str | None = None) -> Iterator[Element]:
        """All descendant elements in document order (self excluded)."""
        for child in self.children:
            if isinstance(child, Element):
                if name is None or child.name == name:
                    yield child
                yield from child.descendants(name)

    def text(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            elif isinstance(child, Element):
                parts.append(child.text())
        return "".join(parts)

    def __repr__(self) -> str:
        return (f"Element({self.name!r}, {len(self.attributes)} attrs, "
                f"{len(self.children)} children)")


class Document:
    """The document node: a single root element."""

    __slots__ = ("root",)

    def __init__(self, root: Element):
        self.root = root

    def iter_elements(self) -> Iterator[Element]:
        """Root followed by every descendant element in document order."""
        yield self.root
        yield from self.root.descendants()

    def __repr__(self) -> str:
        return f"Document(root=<{self.root.name}>)"


def parse(text: str, keep_whitespace: bool = False) -> Document:
    """Parse XML text into a :class:`Document`."""
    root: Element | None = None
    stack: list[Element] = []
    for event in iter_events(text, keep_whitespace=keep_whitespace):
        if isinstance(event, StartElement):
            element = Element(
                event.name,
                [Attribute(n, v) for n, v in event.attributes])
            if stack:
                stack[-1].append(element)
            else:
                root = element
            stack.append(element)
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Characters):
            stack[-1].append(Text(event.text))
    assert root is not None  # iter_events guarantees one root
    return Document(root)

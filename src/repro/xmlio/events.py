"""SAX-like event stream with well-formedness (tag balance) checking.

:func:`iter_events` adapts the flat token stream of
:mod:`repro.xmlio.tokenizer` into structural events, enforcing that end
tags match start tags, that there is exactly one root element, and that no
character data (other than whitespace) appears outside the root.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import XMLSyntaxError
from repro.xmlio.tokenizer import Tokenizer, TokenType


@dataclass(frozen=True, slots=True)
class StartDocument:
    """Emitted once before any other event."""


@dataclass(frozen=True, slots=True)
class EndDocument:
    """Emitted once after the root element closes."""


@dataclass(frozen=True, slots=True)
class StartElement:
    """An opening (or self-closing) tag with its attributes."""

    name: str
    attributes: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class EndElement:
    """A closing tag."""

    name: str


@dataclass(frozen=True, slots=True)
class Characters:
    """Character data between tags (entities already resolved)."""

    text: str


Event = StartDocument | EndDocument | StartElement | EndElement | Characters


def iter_events(text: str, keep_whitespace: bool = False) -> Iterator[Event]:
    """Yield structural events for an XML document string.

    ``keep_whitespace`` controls whether whitespace-only character data
    between elements is reported; value-only documents in this corpus never
    need it, and dropping it matches how XPRESS-style compressors treat
    ignorable whitespace.
    """
    yield StartDocument()
    stack: list[str] = []
    saw_root = False
    for token in Tokenizer(text):
        kind = token.type
        if kind in (TokenType.COMMENT, TokenType.PI, TokenType.DOCTYPE):
            continue
        if kind == TokenType.START_TAG or kind == TokenType.EMPTY_TAG:
            if not stack and saw_root:
                raise XMLSyntaxError(
                    f"second root element <{token.value}>", token.offset)
            saw_root = True
            yield StartElement(token.value, token.attributes)
            if kind == TokenType.EMPTY_TAG:
                yield EndElement(token.value)
            else:
                stack.append(token.value)
        elif kind == TokenType.END_TAG:
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.value}>", token.offset)
            expected = stack.pop()
            if expected != token.value:
                raise XMLSyntaxError(
                    f"end tag </{token.value}> does not match "
                    f"<{expected}>", token.offset)
            yield EndElement(token.value)
        elif kind in (TokenType.TEXT, TokenType.CDATA):
            if not stack:
                if token.value.strip():
                    raise XMLSyntaxError(
                        "character data outside the root element",
                        token.offset)
                continue
            if not keep_whitespace and not token.value.strip():
                continue
            yield Characters(token.value)
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1]}>")
    if not saw_root:
        raise XMLSyntaxError("document has no root element")
    yield EndDocument()

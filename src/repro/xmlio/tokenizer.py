"""A from-scratch XML tokenizer.

Produces a flat stream of :class:`Token` objects from XML text.  Supports
the constructs the corpus needs: prolog/XML declaration, processing
instructions, comments, CDATA sections, elements with attributes
(single- or double-quoted), character data with entity references, and
DOCTYPE declarations (skipped, internal subsets included).

The tokenizer is strict about well-formedness at the lexical level
(tag syntax, attribute quoting, entity syntax); tag *balance* is enforced
one level up by :mod:`repro.xmlio.events`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import unescape

_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")

_WHITESPACE = " \t\r\n"


class TokenType(Enum):
    """Lexical classes emitted by :class:`Tokenizer`."""

    START_TAG = auto()      # <name attr="v" ...>
    END_TAG = auto()        # </name>
    EMPTY_TAG = auto()      # <name attr="v" .../>
    TEXT = auto()           # character data (entities resolved)
    COMMENT = auto()        # <!-- ... -->
    PI = auto()             # <?target data?>
    CDATA = auto()          # <![CDATA[ ... ]]>
    DOCTYPE = auto()        # <!DOCTYPE ...> (content skipped)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``value`` is the tag name for tags, the text payload for TEXT/CDATA/
    COMMENT, and the raw declaration body for PI/DOCTYPE.  ``attributes``
    is a tuple of (name, value) pairs in document order (tags only).
    """

    type: TokenType
    value: str
    attributes: tuple[tuple[str, str], ...] = ()
    offset: int = 0


class Tokenizer:
    """Single-pass tokenizer over an XML string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._n = len(text)

    def __iter__(self):
        return self

    def __next__(self) -> Token:
        token = self.next_token()
        if token is None:
            raise StopIteration
        return token

    def _error(self, message: str, offset: int | None = None) -> XMLSyntaxError:
        at = self._pos if offset is None else offset
        line = self._text.count("\n", 0, at) + 1
        column = at - (self._text.rfind("\n", 0, at) + 1) + 1
        return XMLSyntaxError(message, at, line, column)

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` at end of input."""
        if self._pos >= self._n:
            return None
        if self._text[self._pos] == "<":
            return self._read_markup()
        return self._read_text()

    # -- markup -----------------------------------------------------------

    def _read_markup(self) -> Token:
        text = self._text
        start = self._pos
        if text.startswith("<!--", start):
            return self._read_comment(start)
        if text.startswith("<![CDATA[", start):
            return self._read_cdata(start)
        if text.startswith("<!DOCTYPE", start):
            return self._read_doctype(start)
        if text.startswith("<?", start):
            return self._read_pi(start)
        if text.startswith("</", start):
            return self._read_end_tag(start)
        return self._read_start_tag(start)

    def _read_comment(self, start: int) -> Token:
        end = self._text.find("-->", start + 4)
        if end == -1:
            raise self._error("unterminated comment", start)
        self._pos = end + 3
        return Token(TokenType.COMMENT, self._text[start + 4:end],
                     offset=start)

    def _read_cdata(self, start: int) -> Token:
        end = self._text.find("]]>", start + 9)
        if end == -1:
            raise self._error("unterminated CDATA section", start)
        self._pos = end + 3
        return Token(TokenType.CDATA, self._text[start + 9:end],
                     offset=start)

    def _read_doctype(self, start: int) -> Token:
        # Skip to the matching '>' while honouring an internal subset [...].
        depth = 0
        i = start + 9
        while i < self._n:
            ch = self._text[i]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self._pos = i + 1
                return Token(TokenType.DOCTYPE,
                             self._text[start + 9:i].strip(), offset=start)
            i += 1
        raise self._error("unterminated DOCTYPE declaration", start)

    def _read_pi(self, start: int) -> Token:
        end = self._text.find("?>", start + 2)
        if end == -1:
            raise self._error("unterminated processing instruction", start)
        self._pos = end + 2
        return Token(TokenType.PI, self._text[start + 2:end], offset=start)

    def _read_end_tag(self, start: int) -> Token:
        self._pos = start + 2
        name = self._read_name()
        self._skip_whitespace()
        if self._pos >= self._n or self._text[self._pos] != ">":
            raise self._error(f"malformed end tag </{name}")
        self._pos += 1
        return Token(TokenType.END_TAG, name, offset=start)

    def _read_start_tag(self, start: int) -> Token:
        self._pos = start + 1
        name = self._read_name()
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            if self._pos >= self._n:
                raise self._error(f"unterminated start tag <{name}", start)
            ch = self._text[self._pos]
            if ch == ">":
                self._pos += 1
                return Token(TokenType.START_TAG, name, tuple(attributes),
                             offset=start)
            if ch == "/":
                if not self._text.startswith("/>", self._pos):
                    raise self._error("expected '/>'")
                self._pos += 2
                return Token(TokenType.EMPTY_TAG, name, tuple(attributes),
                             offset=start)
            attr_name, attr_value = self._read_attribute()
            if attr_name in seen:
                raise self._error(
                    f"duplicate attribute {attr_name!r} on <{name}>", start)
            seen.add(attr_name)
            attributes.append((attr_name, attr_value))

    def _read_attribute(self) -> tuple[str, str]:
        name = self._read_name()
        self._skip_whitespace()
        if self._pos >= self._n or self._text[self._pos] != "=":
            raise self._error(f"attribute {name!r} missing '='")
        self._pos += 1
        self._skip_whitespace()
        if self._pos >= self._n or self._text[self._pos] not in "\"'":
            raise self._error(f"attribute {name!r} value must be quoted")
        quote = self._text[self._pos]
        self._pos += 1
        end = self._text.find(quote, self._pos)
        if end == -1:
            raise self._error(f"unterminated value for attribute {name!r}")
        raw = self._text[self._pos:end]
        if "<" in raw:
            raise self._error(f"'<' in value of attribute {name!r}")
        self._pos = end + 1
        return name, unescape(raw)

    def _read_name(self) -> str:
        start = self._pos
        if start >= self._n or self._text[start] not in _NAME_START:
            raise self._error("expected an XML name")
        i = start + 1
        while i < self._n and self._text[i] in _NAME_CHARS:
            i += 1
        self._pos = i
        return self._text[start:i]

    def _skip_whitespace(self) -> None:
        while self._pos < self._n and self._text[self._pos] in _WHITESPACE:
            self._pos += 1

    # -- character data ---------------------------------------------------

    def _read_text(self) -> Token:
        start = self._pos
        end = self._text.find("<", start)
        if end == -1:
            end = self._n
        raw = self._text[start:end]
        self._pos = end
        return Token(TokenType.TEXT, unescape(raw), offset=start)


def tokenize(text: str) -> list[Token]:
    """Tokenize a whole document into a list (convenience for tests)."""
    return list(Tokenizer(text))

"""From-scratch XML layer: tokenizer, event stream, DOM, serializer.

The XQueC loader consumes the event stream (:func:`iter_events`); the
"Galax" baseline and the examples use the small DOM (:func:`parse`).
"""

from repro.xmlio.dom import Attribute, Document, Element, Text, parse
from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    iter_events,
)
from repro.xmlio.writer import serialize

__all__ = [
    "Attribute",
    "Characters",
    "Document",
    "Element",
    "EndDocument",
    "EndElement",
    "StartDocument",
    "StartElement",
    "Text",
    "iter_events",
    "parse",
    "serialize",
]

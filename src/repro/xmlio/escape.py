"""Entity escaping and unescaping for XML text and attribute values."""

from __future__ import annotations

from repro.errors import XMLSyntaxError

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;"))


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace('"', "&quot;"))


def resolve_entity(name: str, offset: int = -1) -> str:
    """Resolve a named or numeric character reference (without ``&``/``;``)."""
    if name in _NAMED_ENTITIES:
        return _NAMED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except (ValueError, OverflowError):
            raise XMLSyntaxError(f"bad character reference &{name};", offset)
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except (ValueError, OverflowError):
            raise XMLSyntaxError(f"bad character reference &{name};", offset)
    raise XMLSyntaxError(f"unknown entity &{name};", offset)


def unescape(text: str) -> str:
    """Replace entity and character references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", i)
        out.append(resolve_entity(text[i + 1:end], i))
        i = end + 1
    return "".join(out)

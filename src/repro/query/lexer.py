"""Tokenizer for the XQuery subset.

Hand-written, position-tracking, with one context-sensitivity handled
here: ``<`` starts a direct element constructor only where an
*expression* may begin, which the parser knows — so the lexer exposes
raw-position access (:meth:`Lexer.mark` / :meth:`Lexer.reset`) and the
parser re-enters constructor scanning itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import QuerySyntaxError

KEYWORDS = {"for", "let", "where", "return", "in", "and", "or",
            "div", "mod", "document"}

_PUNCTUATION = (
    ("//", "DSLASH"), (":=", "ASSIGN"), ("!=", "NE"), ("<=", "LE"),
    (">=", "GE"), ("/", "SLASH"), ("(", "LPAREN"), (")", "RPAREN"),
    ("[", "LBRACKET"), ("]", "RBRACKET"), ("{", "LBRACE"),
    ("}", "RBRACE"), (",", "COMMA"), ("=", "EQ"), ("<", "LT"),
    (">", "GT"), ("@", "AT"), ("$", "DOLLAR"), ("*", "STAR"),
    ("+", "PLUS"), ("-", "MINUS"),
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.:")


class TokenType(Enum):
    NAME = auto()
    KEYWORD = auto()
    STRING = auto()
    NUMBER = auto()
    PUNCT = auto()
    EOF = auto()


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_punct(self, name: str) -> bool:
        return self.type == TokenType.PUNCT and self.value == name

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word


class Lexer:
    """Pull-based tokenizer with arbitrary lookahead and rewind."""

    def __init__(self, text: str):
        self.text = text
        self._pos = 0
        self._peeked: list[Token] = []

    # -- raw position control (for constructor parsing) --------------------

    def mark(self) -> int:
        """Current raw position (before any peeked tokens)."""
        if self._peeked:
            return self._peeked[0].position
        self._skip_whitespace()
        return self._pos

    def reset(self, position: int) -> None:
        """Rewind to a previously marked raw position."""
        self._pos = position
        self._peeked.clear()

    # -- token access --------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        while len(self._peeked) <= ahead:
            self._peeked.append(self._scan())
        return self._peeked[ahead]

    def next(self) -> Token:
        if self._peeked:
            return self._peeked.pop(0)
        return self._scan()

    def expect_punct(self, name: str) -> Token:
        token = self.next()
        if not token.is_punct(name):
            raise QuerySyntaxError(
                f"expected {name!r}, got {token.value!r}", token.position)
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not token.is_keyword(word):
            raise QuerySyntaxError(
                f"expected keyword {word!r}, got {token.value!r}",
                token.position)
        return token

    def expect_name(self) -> Token:
        token = self.next()
        if token.type not in (TokenType.NAME, TokenType.KEYWORD):
            raise QuerySyntaxError(
                f"expected a name, got {token.value!r}", token.position)
        return token

    # -- scanning ----------------------------------------------------------------

    def _skip_whitespace(self) -> None:
        text = self.text
        n = len(text)
        while self._pos < n:
            ch = text[self._pos]
            if ch in " \t\r\n":
                self._pos += 1
            elif text.startswith("(:", self._pos):
                end = text.find(":)", self._pos + 2)
                if end == -1:
                    raise QuerySyntaxError("unterminated comment",
                                           self._pos)
                self._pos = end + 2
            else:
                break

    def _scan(self) -> Token:
        self._skip_whitespace()
        text = self.text
        if self._pos >= len(text):
            return Token(TokenType.EOF, "", self._pos)
        start = self._pos
        ch = text[start]
        if ch in "\"'":
            return self._scan_string(start, ch)
        if ch.isdigit() or (ch == "." and start + 1 < len(text)
                            and text[start + 1].isdigit()):
            return self._scan_number(start)
        if ch in _NAME_START:
            return self._scan_name(start)
        for literal, name in _PUNCTUATION:
            if text.startswith(literal, start):
                self._pos = start + len(literal)
                return Token(TokenType.PUNCT, name, start)
        raise QuerySyntaxError(f"unexpected character {ch!r}", start)

    def _scan_string(self, start: int, quote: str) -> Token:
        end = self.text.find(quote, start + 1)
        if end == -1:
            raise QuerySyntaxError("unterminated string literal", start)
        self._pos = end + 1
        return Token(TokenType.STRING, self.text[start + 1:end], start)

    def _scan_number(self, start: int) -> Token:
        i = start
        text = self.text
        n = len(text)
        while i < n and (text[i].isdigit() or text[i] == "."):
            i += 1
        if i < n and text[i] in "eE":
            i += 1
            if i < n and text[i] in "+-":
                i += 1
            while i < n and text[i].isdigit():
                i += 1
        self._pos = i
        return Token(TokenType.NUMBER, text[start:i], start)

    def _scan_name(self, start: int) -> Token:
        i = start + 1
        text = self.text
        n = len(text)
        while i < n and text[i] in _NAME_CHARS:
            i += 1
        self._pos = i
        word = text[start:i]
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, start)
        return Token(TokenType.NAME, word, start)

"""Query analysis and access-path selection.

The full cost-based optimizer is ongoing work in the paper (§5 notes the
measured plans do not use it); what the engine does apply — and what
this module provides — are the §4 evaluation strategies:

* **conjunct analysis** of ``where`` clauses, so equality joins between
  binding variables are executed with hash/merge joins instead of
  nested loops (the Figure 5 three-way join shape);
* **access-path selection**: a comparison between a variable's
  root-to-leaf path and a constant turns into a ``ContAccess`` interval
  search on the sorted container, followed by ``Parent`` steps back up —
  bottom-up evaluation — instead of scanning the variable's whole
  extent top-down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    FunctionCall,
    Logical,
    NumberLiteral,
    PathExpr,
    SequenceExpr,
    Step,
    StringLiteral,
    VarRef,
)


def free_vars(expression: Expression | None) -> frozenset[str]:
    """Variables an expression references but does not bind."""
    if expression is None:
        return frozenset()
    names: set[str] = set()
    _collect_free(expression, set(), names)
    return frozenset(names)


def _collect_free(expr: Expression, bound: set[str],
                  names: set[str]) -> None:
    if isinstance(expr, VarRef):
        if expr.name not in bound:
            names.add(expr.name)
    elif isinstance(expr, PathExpr):
        if expr.start is not None:
            _collect_free(expr.start, bound, names)
        for step in expr.steps:
            for predicate in step.predicates:
                _collect_free(predicate, bound, names)
    elif isinstance(expr, (Comparison, Logical, Arithmetic)):
        _collect_free(expr.left, bound, names)
        _collect_free(expr.right, bound, names)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _collect_free(arg, bound, names)
    elif isinstance(expr, SequenceExpr):
        for item in expr.items:
            _collect_free(item, bound, names)
    elif isinstance(expr, FLWOR):
        inner_bound = set(bound)
        for clause in expr.clauses:
            _collect_free(clause.source, inner_bound, names)
            inner_bound.add(clause.var)
        if expr.where is not None:
            _collect_free(expr.where, inner_bound, names)
        for spec in expr.order:
            _collect_free(spec.key, inner_bound, names)
        _collect_free(expr.result, inner_bound, names)
    elif isinstance(expr, ElementConstructor):
        for _, parts in expr.attributes:
            for part in parts:
                _collect_free(part, bound, names)
        for item in expr.content:
            _collect_free(item, bound, names)
    # Literals, TextLiteral, ContextItem: nothing to collect.


def flatten_conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a where clause into its top-level ``and`` conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, Logical) and expression.op == "and":
        return (flatten_conjuncts(expression.left)
                + flatten_conjuncts(expression.right))
    return [expression]


@dataclass(frozen=True)
class JoinPlan:
    """An equality conjunct usable as a hash join at one for-clause.

    ``build_expr`` references only the clause's variable (plus nothing
    else), so its key index can be cached across outer bindings;
    ``probe_expr`` references only already-bound variables.
    """

    conjunct: Comparison
    build_expr: Expression
    probe_expr: Expression


def find_join_plan(conjunct: Expression, clause_var: str,
                   bound_vars: set[str]) -> JoinPlan | None:
    """Classify a conjunct as a hash-joinable equality, if it is one."""
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    left_vars = free_vars(conjunct.left)
    right_vars = free_vars(conjunct.right)
    # The probe side must actually reference bound variables; a
    # variable-vs-constant equality is a selection (RangePlan), not a
    # join.
    if left_vars == {clause_var} and right_vars and \
            right_vars <= bound_vars:
        return JoinPlan(conjunct, conjunct.left, conjunct.right)
    if right_vars == {clause_var} and left_vars and \
            left_vars <= bound_vars:
        return JoinPlan(conjunct, conjunct.right, conjunct.left)
    return None


@dataclass(frozen=True)
class RangePlan:
    """A constant comparison turned into a container interval search.

    ``leaf_steps`` navigates from the clause variable down to the value
    (all plain child/attribute/text steps); ``low``/``high`` bound the
    sorted container; ``ascend`` counts the ``Parent`` hops from the
    container's parent elements back up to the variable's nodes.
    """

    leaf_steps: tuple[Step, ...]
    low: str | None
    high: str | None
    low_inclusive: bool
    high_inclusive: bool
    ascend: int
    #: "string" or "number" — the access path is only sound when the
    #: container's sort order matches the constant's comparison order.
    constant_kind: str = "string"


def find_range_plan(conjunct: Expression, clause_var: str
                    ) -> RangePlan | None:
    """Turn ``$v/simple/path <op> constant`` into a RangePlan."""
    if not isinstance(conjunct, Comparison):
        return None
    candidates = [(conjunct.left, conjunct.right, conjunct.op),
                  (conjunct.right, conjunct.left, _flip(conjunct.op))]
    for path_side, const_side, op in candidates:
        constant = _constant_string(const_side)
        if constant is None:
            continue
        steps = _simple_value_steps(path_side, clause_var)
        if steps is None:
            continue
        kind = ("number" if isinstance(const_side, NumberLiteral)
                else "string")
        ascend = sum(1 for s in steps if s.axis == "child"
                     and s.test not in ("text()",))
        if op == "=":
            return RangePlan(steps, constant, constant, True, True,
                             ascend, kind)
        if op == "<":
            return RangePlan(steps, None, constant, True, False,
                             ascend, kind)
        if op == "<=":
            return RangePlan(steps, None, constant, True, True,
                             ascend, kind)
        if op == ">":
            return RangePlan(steps, constant, None, False, True,
                             ascend, kind)
        if op == ">=":
            return RangePlan(steps, constant, None, True, True,
                             ascend, kind)
    return None


def _constant_string(expr: Expression) -> str | None:
    if isinstance(expr, StringLiteral):
        return expr.value
    if isinstance(expr, NumberLiteral):
        value = expr.value
        if value == int(value):
            return str(int(value))
        return repr(value)
    return None


def _simple_value_steps(expr: Expression, clause_var: str
                        ) -> tuple[Step, ...] | None:
    """``$v/a/b/text()`` or ``$v/@id`` -> its steps; else ``None``.

    Only predicate-free child/attribute/text chains qualify — those are
    exactly the root-to-leaf paths that have their own container.
    """
    if not isinstance(expr, PathExpr):
        return None
    if not isinstance(expr.start, VarRef) or expr.start.name != clause_var:
        return None
    if not expr.steps:
        return None
    for step in expr.steps:
        if step.predicates:
            return None
        if step.axis not in ("child", "attribute"):
            return None
    last = expr.steps[-1]
    if last.axis == "attribute" or last.test == "text()":
        return expr.steps
    return None


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[op]


@dataclass(frozen=True)
class FullTextPlan:
    """A ``word-contains($v/path, "w")`` conjunct answerable by a
    full-text index (§6 extension)."""

    leaf_steps: tuple[Step, ...]
    words: tuple[str, ...]
    ascend: int


def find_fulltext_plan(conjunct: Expression, clause_var: str
                       ) -> FullTextPlan | None:
    """Classify an indexable whole-word containment conjunct."""
    if not isinstance(conjunct, FunctionCall) or \
            conjunct.name != "word-contains":
        return None
    if len(conjunct.args) != 2:
        return None
    path_arg, needle_arg = conjunct.args
    if not isinstance(needle_arg, StringLiteral):
        return None
    steps = _simple_value_steps(path_arg, clause_var)
    if steps is None:
        return None
    ascend = sum(1 for s in steps if s.axis == "child"
                 and s.test not in ("text()",))
    words = tuple(needle_arg.value.split())
    if not words:
        return None
    return FullTextPlan(steps, words, ascend)


def is_absolute_simple_path(expr: Expression) -> bool:
    """Absolute, predicate-free element path (summary-resolvable)."""
    if not isinstance(expr, PathExpr) or expr.start is not None:
        return False
    return all(not s.predicates and s.axis in ("child", "descendant")
               and s.test != "text()" for s in expr.steps)


def context_free(expr: Expression) -> bool:
    """True when the expression never touches the context item."""
    if isinstance(expr, ContextItem):
        return False
    if isinstance(expr, PathExpr):
        if expr.start is not None and not context_free(expr.start):
            return False
        return all(context_free(p) for s in expr.steps
                   for p in s.predicates)
    if isinstance(expr, (Comparison, Logical, Arithmetic)):
        return context_free(expr.left) and context_free(expr.right)
    if isinstance(expr, FunctionCall):
        return all(context_free(a) for a in expr.args)
    if isinstance(expr, SequenceExpr):
        return all(context_free(i) for i in expr.items)
    if isinstance(expr, FLWOR):
        return (all(context_free(c.source) for c in expr.clauses)
                and (expr.where is None or context_free(expr.where))
                and all(context_free(s.key) for s in expr.order)
                and context_free(expr.result))
    if isinstance(expr, ElementConstructor):
        return (all(context_free(p) for _, parts in expr.attributes
                    for p in parts)
                and all(context_free(c) for c in expr.content))
    return True

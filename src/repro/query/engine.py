"""The XQueC query evaluation engine.

Evaluates the supported XQuery subset directly over a
:class:`~repro.storage.repository.CompressedRepository`, keeping values
compressed for as long as possible:

* absolute paths resolve through the structure summary
  (``StructureSummaryAccess``) — never by walking the full structure
  tree (Figure 4);
* value predicates against constants compile to ``ContAccess`` interval
  searches on the sorted containers, navigating back up with ``Parent``
  (bottom-up strategy), when the optimizer finds a
  :class:`~repro.query.optimizer.RangePlan`;
* equality joins between binding variables run as hash joins with
  cacheable build sides (:class:`~repro.query.optimizer.JoinPlan`) —
  in the compressed domain when both sides share a source model;
* everything that reaches the query result passes through an explicit
  decompression step, counted in
  :class:`~repro.query.context.EvaluationStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.errors import QueryError, QueryTypeError
from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Logical,
    NumberLiteral,
    PathExpr,
    SequenceExpr,
    Step,
    StringLiteral,
    TextLiteral,
    VarRef,
)
from repro.query.context import (
    CompressedItem,
    EvaluationStats,
    NodeItem,
    _format_number,
    compare_items,
    effective_boolean,
    number_value,
    string_value,
)
from repro.query.functions import FUNCTIONS
from repro.query.options import ExecutionOptions, coerce_options
from repro.query.optimizer import (
    context_free,
    find_join_plan,
    find_range_plan,
    flatten_conjuncts,
    free_vars,
)
from repro.query.parser import parse_query
from repro.storage.repository import CompressedRepository
from repro.storage.summary import TEXT_STEP
from repro.xmlio.dom import Element, Text
from repro.xmlio.writer import serialize


class QueryResult:
    """The evaluated sequence plus serialization and statistics.

    The uniform return type of the whole execution API — engine,
    session and system all hand one back.  It implements the sequence
    protocol over the *materialized* items (``len``, indexing,
    iteration), so callers never need to reach into engine internals
    to consume a result.
    """

    def __init__(self, items: list, stats: EvaluationStats,
                 engine: "QueryEngine",
                 telemetry: Telemetry | None = None):
        self._raw_items = items
        self._materialized: list | None = None
        self.stats = stats
        self._engine = engine
        #: the run's tracer + metrics (disabled unless requested).
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry(enabled=False, metrics=stats.registry)

    @property
    def items(self) -> list:
        """Fully decompressed result items (str/float/bool/Element).

        Materialized once and memoised — repeated access (``to_xml``
        after ``values``, the sequence protocol) must not redo — or
        double-count — the final Decompress step.
        """
        if self._materialized is not None:
            return self._materialized
        if not self.telemetry.enabled:
            # No global activation on the disabled path: thread-pooled
            # batch runs materialize concurrently without touching the
            # process-wide runtime slot.
            self._materialized = [
                self._engine.materialize_item(item, self.stats)
                for item in self._raw_items]
            return self._materialized
        # Materialization is the final Decompress step; keep it under
        # the run's telemetry so codec activity lands in one registry.
        with runtime.activated(self.telemetry):
            with self.telemetry.span("Decompress"):
                self._materialized = [
                    self._engine.materialize_item(item, self.stats)
                    for item in self._raw_items]
        return self._materialized

    def values(self) -> list:
        """Items with Elements serialized to XML strings."""
        out = []
        for item in self.items:
            if isinstance(item, Element):
                out.append(serialize(item))
            else:
                out.append(item)
        return out

    def ship(self) -> bytes:
        """Package the result *without decompressing* (§1: compressed
        results spare network bandwidth); unpack with
        :func:`repro.query.shipping.receive`."""
        from repro.query.shipping import ship
        return ship(self)

    def to_xml(self) -> str:
        """Serialize the whole result sequence as XML/text."""
        parts = []
        for item in self.items:
            if isinstance(item, Element):
                parts.append(serialize(item))
            elif isinstance(item, float):
                parts.append(_format_number(item))
            else:
                parts.append(str(item))
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self._raw_items)

    def __getitem__(self, index):
        return self.items[index]

    def __iter__(self):
        return iter(self.items)


class QueryEngine:
    """Compiles and evaluates queries over compressed repositories.

    ``repository`` is the default document; ``collection`` optionally
    maps further document names to repositories, dispatched through
    ``document("name")/...`` paths (joins across documents included).
    """

    GUARDED_BY = {"_verify_cache": "_verify_lock"}

    def __init__(self, repository: CompressedRepository,
                 collection: dict[str, CompressedRepository]
                 | None = None, telemetry_enabled: bool = False,
                 verify_plans: bool = True, recorder=None):
        self.repository = repository
        self.collection = collection or {}
        #: when True, every ``execute`` records spans and histograms;
        #: counters are always kept (they back ``QueryResult.stats``).
        self.telemetry_enabled = telemetry_enabled
        #: optional :class:`~repro.obs.workload.WorkloadRecorder`;
        #: when attached and enabled, every ``execute`` appends one
        #: observation to its workload journal.
        self.recorder = recorder
        #: when True, the Tier-A plan verifier gates every ``execute``:
        #: error diagnostics raise
        #: :class:`~repro.errors.PlanVerificationError` before any row
        #: is produced; warnings flow into the run's telemetry.
        self.verify_plans = verify_plans
        self._fulltext_indexes: dict[str, "FullTextIndex"] = {}
        #: verifier results per parsed query (the AST is kept alive so
        #: its id() cannot be reused by a different expression).  LRU
        #: bounded: a long-lived serving engine must not pin every AST
        #: it ever verified.
        self._verify_cache: OrderedDict[int, tuple[Expression, list]] \
            = OrderedDict()
        self._verify_cache_capacity = 256
        self._verify_lock = threading.Lock()

    def repository_of(self, doc: str | None) -> CompressedRepository:
        """Repository for a document name (default when unknown)."""
        if doc is None:
            return self.repository
        return self.collection.get(doc, self.repository)

    def build_fulltext_index(self, container_path: str):
        """Build (and register) a §6 full-text index on a container.

        Subsequent ``word-contains`` conjuncts over that container use
        the inverted index as an access path.
        """
        from repro.query.fulltext import FullTextIndex
        index = FullTextIndex.build(
            self.repository.container(container_path))
        self._fulltext_indexes[container_path] = index
        return index

    def execute(self, query: str | Expression,
                options: ExecutionOptions | None = None,
                *, diagnostics: list | None = None,
                label: str | None = None,
                **legacy) -> QueryResult:
        """Parse (if needed) and evaluate a query.

        ``options`` is an :class:`~repro.query.options.ExecutionOptions`
        carrying the run's telemetry, recording and binding knobs; the
        legacy ``telemetry=`` keyword still works behind a
        ``DeprecationWarning``.  ``diagnostics`` lets a caller that
        already verified the query (a prepared plan from the session's
        plan cache) pass the verifier's findings in, skipping the
        static verification step entirely.  ``label`` names the run in
        spans and workload records when ``query`` is a pre-parsed
        expression (the session passes the original query text).
        """
        options = coerce_options(options, legacy, "QueryEngine.execute")
        ast = parse_query(query) if isinstance(query, str) else query
        # Profiling needs open spans to attribute samples to, so a
        # profile request implies an enabled telemetry for the run.
        telemetry = options.resolve_telemetry(
            self.telemetry_enabled or bool(options.profile))
        if self.verify_plans:
            if diagnostics is None:
                diagnostics = self.verify(ast)
            errors = [d for d in diagnostics if d.severity == "error"]
            if errors:
                from repro.errors import PlanVerificationError
                raise PlanVerificationError(diagnostics)
            telemetry.diagnostics.extend(diagnostics)
            for diagnostic in diagnostics:
                telemetry.metrics.add(f"lint.{diagnostic.severity}")
        evaluator = _Evaluator(self.repository, self._fulltext_indexes,
                               self.collection, telemetry=telemetry,
                               batch_size=options.resolve_batch_size())
        query_text = query if isinstance(query, str) else \
            (label if label is not None else type(ast).__name__)
        base_env = options.binding_environment()

        def run() -> list:
            if not telemetry.enabled:
                return evaluator.eval(ast, base_env)
            from repro.obs.profiler import profiled
            with runtime.activated(telemetry):
                with profiled(telemetry.tracer,
                              options.profile) as profiler:
                    with telemetry.span("Execute", query=query_text):
                        items = evaluator.eval(ast, base_env)
                if profiler is not None:
                    telemetry.profile = profiler.profile
                return items

        record = options.record
        if record is None:
            record = self.recorder is not None and self.recorder.enabled
        elif record and self.recorder is None:
            raise QueryError(
                "recording requested but no workload recorder is "
                "attached to this engine")
        if record:
            with self.recorder.capture(query_text, ast,
                                       self.repository, telemetry):
                items = run()
        else:
            items = run()
        return QueryResult(items, evaluator.stats, self,
                           telemetry=telemetry)

    def verify(self, query: str | Expression) -> list:
        """Statically verify the plans a query would evaluate as.

        Compiles the optimizer's decisions into plan sketches and runs
        the Tier-A verifier over them; returns the
        :class:`~repro.lint.PlanDiagnostic` list (LRU-cached per parsed
        expression — ``execute`` calls this on every run).
        """
        ast = parse_query(query) if isinstance(query, str) else query
        with self._verify_lock:
            cached = self._verify_cache.get(id(ast))
            if cached is not None and cached[0] is ast:
                self._verify_cache.move_to_end(id(ast))
                return cached[1]
        from repro.lint.compile import verify_query
        diagnostics = verify_query(ast, self.repository,
                                   self.collection)
        with self._verify_lock:
            self._verify_cache[id(ast)] = (ast, diagnostics)
            while len(self._verify_cache) > self._verify_cache_capacity:
                self._verify_cache.popitem(last=False)
        return diagnostics

    def explain(self, query: str | Expression) -> str:
        """Describe the evaluation strategy without running the query."""
        from repro.query.explain import explain
        return explain(query)

    def explain_analyze(self, query: str | Expression) -> str:
        """Run the query and render the plan with actual counts/timings.

        See :func:`repro.query.analyze.explain_analyze`; use that
        directly to also get the :class:`QueryResult` and telemetry.
        """
        from repro.query.analyze import explain_analyze
        return explain_analyze(query, self).text

    # -- result materialization ------------------------------------------------

    def materialize_item(self, item, stats: EvaluationStats):
        """Decompress one result item (the final Decompress step)."""
        if isinstance(item, CompressedItem):
            return item.decode(stats)
        if isinstance(item, NodeItem):
            return self.materialize_node(item.node_id, stats,
                                         doc=item.doc)
        return item

    def materialize_node(self, node_id: int,
                         stats: EvaluationStats,
                         doc: str | None = None) -> Element:
        """Rebuild a repository node as an XML element (XMLSerialize)."""
        repo = self.repository_of(doc)
        record = repo.structure.record(node_id)
        element = Element(repo.tag_of(node_id))
        for path, index in record.value_pointers:
            step = path.rsplit("/", 1)[-1]
            if step.startswith("@"):
                stats.decompressions += 1
                element.set_attribute(
                    step[1:], repo.container(path).value_at(index))
        for kind, ref in record.content_sequence:
            if kind == "elem":
                element.append(self.materialize_node(ref, stats,
                                                     doc=doc))
            else:
                path, index = record.value_pointers[ref]
                stats.decompressions += 1
                element.append(Text(repo.container(path).value_at(index)))
        return element


class _Evaluator:
    def __init__(self, repository: CompressedRepository,
                 fulltext_indexes: dict | None = None,
                 collection: dict[str, CompressedRepository]
                 | None = None, telemetry: Telemetry | None = None,
                 batch_size: int | None = None):
        from repro.query.batch import DEFAULT_BATCH_SIZE
        self.repository = repository
        self._collection = collection or {}
        self._fulltext_indexes = fulltext_indexes or {}
        #: rows per batch for array-shaped access paths; 1 keeps every
        #: evaluation step on the legacy scalar path.
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None \
            else batch_size
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry(enabled=False)
        # The stats view and the telemetry share one registry, so
        # explain_analyze's rendered counters are EvaluationStats'.
        self.stats = EvaluationStats(registry=self.telemetry.metrics)
        #: cached sequences for binding-independent source expressions.
        self._source_cache: dict[int, list] = {}
        #: cached hash-join build indexes, keyed by conjunct identity.
        self._index_cache: dict[tuple[int, int], "_JoinIndex"] = {}

    def _repo(self, doc: str | None) -> CompressedRepository:
        if doc is None:
            return self.repository
        return self._collection.get(doc, self.repository)

    # -- dispatch -------------------------------------------------------------

    def eval(self, expr: Expression, env: dict) -> list:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise QueryError(f"cannot evaluate {type(expr).__name__}")
        return method(self, expr, env)

    def _eval_string(self, expr: StringLiteral, env: dict) -> list:
        return [expr.value]

    def _eval_number(self, expr: NumberLiteral, env: dict) -> list:
        return [expr.value]

    def _eval_text_literal(self, expr: TextLiteral, env: dict) -> list:
        return [expr.value]

    def _eval_var(self, expr: VarRef, env: dict) -> list:
        try:
            return env[expr.name]
        except KeyError:
            raise QueryError(f"unbound variable ${expr.name}") from None

    def _eval_context(self, expr: ContextItem, env: dict) -> list:
        try:
            return [env["."]]
        except KeyError:
            raise QueryError("no context item here") from None

    def _eval_sequence(self, expr: SequenceExpr, env: dict) -> list:
        result: list = []
        for item in expr.items:
            result.extend(self.eval(item, env))
        return result

    def _eval_logical(self, expr: Logical, env: dict) -> list:
        left = effective_boolean(self.eval(expr.left, env))
        if expr.op == "and":
            if not left:
                return [False]
            return [effective_boolean(self.eval(expr.right, env))]
        if left:
            return [True]
        return [effective_boolean(self.eval(expr.right, env))]

    def _eval_comparison(self, expr: Comparison, env: dict) -> list:
        left = self._atomize_sequence(self.eval(expr.left, env))
        right = self._atomize_sequence(self.eval(expr.right, env))
        for l_item in left:
            for r_item in right:
                if compare_items(expr.op, l_item, r_item, self.stats):
                    return [True]
        return [False]

    def _eval_arithmetic(self, expr: Arithmetic, env: dict) -> list:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if not left or not right:
            return []
        a = number_value(self._atomize(left[0]), self.stats)
        b = number_value(self._atomize(right[0]), self.stats)
        if expr.op == "+":
            return [a + b]
        if expr.op == "-":
            return [a - b]
        if expr.op == "*":
            return [a * b]
        if expr.op == "div":
            if b == 0.0:
                raise QueryTypeError("division by zero in div")
            return [a / b]
        if expr.op == "mod":
            if b == 0.0:
                raise QueryTypeError("division by zero in mod")
            return [a % b]
        raise QueryError(f"unknown arithmetic operator {expr.op!r}")

    #: functions that operate on raw sequences — atomizing their
    #: arguments would decompress values for nothing (count of nodes
    #: must not decode the nodes' text).
    _SEQUENCE_FUNCTIONS = frozenset(("count", "empty", "not",
                                     "zero-or-one"))

    def _eval_function(self, expr: FunctionCall, env: dict) -> list:
        function = FUNCTIONS.get(expr.name)
        if function is None:
            raise QueryError(f"unknown function {expr.name}()")
        if expr.name in self._SEQUENCE_FUNCTIONS:
            args = [self.eval(arg, env) for arg in expr.args]
        else:
            args = [self._atomize_sequence(self.eval(arg, env))
                    for arg in expr.args]
        return function(args, self.stats)

    # -- FLWOR ---------------------------------------------------------------------

    def _eval_flwor(self, expr: FLWOR, env: dict) -> list:
        conjuncts = flatten_conjuncts(expr.where)
        if not expr.order:
            results: list = []
            sink = (lambda bound_env:
                    results.extend(self.eval(expr.result, bound_env)))
            self._flwor_clause(expr, 0, dict(env), conjuncts, set(env),
                               sink)
            return results
        # order by: collect (sort keys, result items) per binding,
        # then stable-sort from the last key to the first.
        keyed: list[tuple[tuple, list]] = []

        def ordered_sink(bound_env: dict) -> None:
            keys = tuple(self._order_key(spec.key, bound_env)
                         for spec in expr.order)
            keyed.append((keys, self.eval(expr.result, bound_env)))

        self._flwor_clause(expr, 0, dict(env), conjuncts, set(env),
                           ordered_sink)
        for position in range(len(expr.order) - 1, -1, -1):
            keyed.sort(key=lambda pair, p=position: pair[0][p],
                       reverse=expr.order[position].descending)
        out: list = []
        for _, items in keyed:
            out.extend(items)
        return out

    def _order_key(self, key_expr: Expression, env: dict) -> tuple:
        """A totally ordered sort key: empty < numbers < strings."""
        sequence = self.eval(key_expr, env)
        if not sequence:
            return (-1, 0.0, "")
        atom = self._atomize(sequence[0])
        try:
            return (0, number_value(atom, self.stats), "")
        except (ValueError, TypeError, QueryError):
            return (1, 0.0, string_value(atom, self.stats))

    def _flwor_clause(self, flwor: FLWOR, index: int, env: dict,
                      pending: list[Expression], bound: set[str],
                      results) -> None:
        if index == len(flwor.clauses):
            for conjunct in pending:
                if not effective_boolean(self.eval(conjunct, env)):
                    return
            results(env)
            return
        clause = flwor.clauses[index]
        if isinstance(clause, LetClause):
            env = dict(env)
            env[clause.var] = self.eval(clause.source, env)
            self._flwor_clause(flwor, index + 1, env, pending,
                               bound | {clause.var}, results)
            return
        assert isinstance(clause, ForClause)
        # Partition the pending conjuncts into those decidable once this
        # clause's variable is bound, and the rest (pushed down later).
        decidable: list[Expression] = []
        later: list[Expression] = []
        new_bound = bound | {clause.var}
        for conjunct in pending:
            if free_vars(conjunct) <= new_bound:
                decidable.append(conjunct)
            else:
                later.append(conjunct)
        # Hash-join path: an equality conjunct between this variable and
        # already-bound ones, over a binding-independent source.
        join_plan = None
        for conjunct in decidable:
            join_plan = find_join_plan(conjunct, clause.var, bound)
            if join_plan is not None:
                join_conjunct = conjunct
                break
        if join_plan is not None and \
                not (free_vars(clause.source) & bound):
            items = self._clause_items(clause, env, bound)
            join_index = self._join_index(join_plan, clause, items)
            probe_keys = self._key_strings(join_plan.probe_expr, env)
            rest = [c for c in decidable if c is not join_conjunct]
            for key in probe_keys:
                for item in join_index.lookup(key):
                    self._bind_and_descend(flwor, index, env, clause,
                                           item, rest, later, new_bound,
                                           results)
            return
        items = self._clause_items(clause, env, bound,
                                   conjuncts=decidable)
        for item in items:
            self._bind_and_descend(flwor, index, env, clause, item,
                                   decidable, later, new_bound, results)

    def _bind_and_descend(self, flwor: FLWOR, index: int, env: dict,
                          clause: ForClause, item,
                          decidable: list[Expression],
                          later: list[Expression], bound: set[str],
                          results: list) -> None:
        child_env = dict(env)
        child_env[clause.var] = [item]
        for conjunct in decidable:
            if not effective_boolean(self.eval(conjunct, child_env)):
                return
        self._flwor_clause(flwor, index + 1, child_env, later, bound,
                           results)

    def _clause_items(self, clause: ForClause, env: dict,
                      bound: set[str],
                      conjuncts: list[Expression] | None = None) -> list:
        """Items for a for-clause, picking the best access path.

        A conjunct of the form ``$v/leaf/path <op> constant`` over an
        absolute source turns into a ``ContAccess`` interval search plus
        ``Parent`` hops (the bottom-up strategy); that conjunct still
        gets re-checked afterwards, which keeps this a pure access-path
        optimization.
        """
        if conjuncts:
            from repro.query.optimizer import find_fulltext_plan
            for conjunct in conjuncts:
                if free_vars(conjunct) != {clause.var}:
                    continue
                plan = find_range_plan(conjunct, clause.var)
                if plan is not None:
                    items = self._range_access(clause.source, plan, env)
                    if items is not None:
                        return items
                ft_plan = find_fulltext_plan(conjunct, clause.var)
                if ft_plan is not None:
                    items = self._fulltext_access(clause.source,
                                                  ft_plan)
                    if items is not None:
                        return items
        if free_vars(clause.source) & bound or \
                not context_free(clause.source):
            return self.eval(clause.source, env)
        cache_key = id(clause.source)
        cached = self._source_cache.get(cache_key)
        if cached is None:
            cached = self.eval(clause.source, env)
            self._source_cache[cache_key] = cached
        return cached

    def _range_access(self, source: Expression, plan, env) -> list | None:
        """ContAccess + Parent-hops evaluation of a ranged for-clause."""
        from repro.query.optimizer import is_absolute_simple_path
        if not is_absolute_simple_path(source):
            return None
        if not self.telemetry.enabled:
            return self._range_access_inner(source, plan, env)
        with self.telemetry.span("ContAccess", low=plan.low,
                                 high=plan.high) as span:
            items = self._range_access_inner(source, plan, env)
            span.set_attribute("rows", len(items)
                               if items is not None else "fallback")
            return items

    def _range_access_inner(self, source: Expression, plan,
                            env) -> list | None:
        assert isinstance(source, PathExpr)
        repo = self._repo(source.document)
        summary_steps = [_summary_step(s) for s in source.steps] + \
            [_summary_step(s) for s in plan.leaf_steps]
        leaves = repo.resolve_path(summary_steps)
        if not leaves:
            return []
        self.stats.summary_accesses += 1
        structure = repo.structure
        matched: set[int] = set()
        for leaf in leaves:
            if leaf.container_path is None:
                return None  # the path does not end at a container
            container = repo.container(leaf.container_path)
            numeric = container.value_type in ("int", "float")
            if numeric:
                if plan.constant_kind == "string":
                    # A string constant orders lexicographically
                    # against untyped text; the container's numeric
                    # sort order cannot answer it — fall back.
                    return None
                # Numeric sort order: every bound must parse as a number.
                for bound in (plan.low, plan.high):
                    if bound is None:
                        continue
                    try:
                        float(bound)
                    except ValueError:
                        return None
            elif plan.constant_kind == "number":
                # A numeric comparison over untyped text compares by
                # value ("07" = 7); the lexicographic container order
                # cannot answer it — fall back to plain evaluation.
                return None
            self.stats.container_accesses += 1
            if runtime.RECORDER is not None:
                runtime.RECORDER.record_predicate(
                    leaf.container_path,
                    _interval_kind(plan.low, plan.high,
                                   plan.low_inclusive,
                                   plan.high_inclusive))
            if self.batch_size > 1 and not container.is_blob:
                # Batch path (DESIGN.md §13): the interval is one slot
                # range of the sorted container, the owning elements
                # one array slice, and the Parent hops one gather per
                # ascend level — no per-record Python at all.
                start, end = container.interval_bounds(
                    plan.low, plan.high, plan.low_inclusive,
                    plan.high_inclusive)
                ids = container.as_arrays().parent_ids[start:end]
                if plan.ascend and len(ids):
                    parents = structure.parent_array()
                    ids = np.unique(ids)
                    for _ in range(plan.ascend):
                        up = parents[ids]
                        # A node whose parent is the virtual root (-1)
                        # stops climbing, like the scalar break below.
                        ids = np.where(up >= 0, up, ids)
                matched.update(int(i) for i in np.unique(ids))
                continue
            for parent_id, _ in container.interval_search(
                    plan.low, plan.high, plan.low_inclusive,
                    plan.high_inclusive):
                # The record's parent is the element *owning* the value;
                # one Parent hop per element step climbs back to the
                # clause variable's node.
                node_id = parent_id
                for _ in range(plan.ascend):
                    up = structure.parent_of(node_id)
                    if up is None:
                        break
                    node_id = up
                matched.add(node_id)
        return [NodeItem(node_id, source.document)
                for node_id in sorted(matched)]

    def _fulltext_access(self, source: Expression, plan) -> list | None:
        """Inverted-index evaluation of a word-contains conjunct.

        Whole-word semantics make the index exact, so the candidate
        set *is* the answer set for the conjunct (which is still
        re-checked upstream, harmlessly).
        """
        from repro.query.optimizer import is_absolute_simple_path
        if not is_absolute_simple_path(source):
            return None
        if not self.telemetry.enabled:
            return self._fulltext_access_inner(source, plan)
        with self.telemetry.span("FullTextAccess",
                                 words=sorted(plan.words)) as span:
            items = self._fulltext_access_inner(source, plan)
            span.set_attribute("rows", len(items)
                               if items is not None else "fallback")
            return items

    def _fulltext_access_inner(self, source: Expression,
                               plan) -> list | None:
        assert isinstance(source, PathExpr)
        if source.document is not None:
            return None  # indexes are registered on the default document
        summary_steps = [_summary_step(s) for s in source.steps] + \
            [_summary_step(s) for s in plan.leaf_steps]
        leaves = self.repository.resolve_path(summary_steps)
        if not leaves:
            return []
        structure = self.repository.structure
        matched: set[int] = set()
        for leaf in leaves:
            if leaf.container_path is None:
                return None
            index = self._fulltext_indexes.get(leaf.container_path)
            if index is None:
                return None  # no index on this container: evaluate plainly
            self.stats.container_accesses += 1
            for parent_id in index.lookup_all(list(plan.words)):
                node_id = parent_id
                for _ in range(plan.ascend):
                    up = structure.parent_of(node_id)
                    if up is None:
                        break
                    node_id = up
                matched.add(node_id)
        self.stats.summary_accesses += 1
        return [NodeItem(node_id) for node_id in sorted(matched)]

    # -- hash joins -------------------------------------------------------------------

    def _join_index(self, plan, clause: ForClause, items: list
                    ) -> "_JoinIndex":
        cache_key = (id(plan.conjunct), id(items))
        index = self._index_cache.get(cache_key)
        if index is None:
            index = _JoinIndex()
            self.stats.hash_joins += 1
            with self.telemetry.span("HashJoin.build",
                                     rows=len(items)):
                for item in items:
                    child_env = {clause.var: [item]}
                    for key in self._key_strings(plan.build_expr,
                                                 child_env):
                        index.add(key, item)
            self._index_cache[cache_key] = index
        return index

    def _key_strings(self, expr: Expression, env: dict) -> list[str]:
        """Join-key values of an expression, as canonical strings."""
        keys = []
        for item in self._atomize_sequence(self.eval(expr, env)):
            keys.append(string_value(item, self.stats))
        return keys

    # -- paths ------------------------------------------------------------------------

    def _eval_path(self, expr: PathExpr, env: dict) -> list:
        if expr.start is not None:
            start_items = self.eval(expr.start, env)
            return self._apply_steps(start_items, expr.steps, env)
        repo = self._repo(expr.document)
        if not len(repo.structure):
            return []
        steps = list(expr.steps)
        # StructureSummaryAccess fast path: resolve the longest
        # predicate-free element-step prefix against the path summary
        # and jump straight to its extents (Figure 4) instead of
        # navigating the structure tree.
        prefix: list[Step] = []
        while steps and not steps[0].predicates and \
                steps[0].axis in ("child", "descendant") and \
                steps[0].test != "text()":
            prefix.append(steps.pop(0))
        if prefix:
            self.stats.summary_accesses += 1
            summary_steps = [(s.axis, s.test) for s in prefix]
            with self.telemetry.span("StructureSummaryAccess") as span:
                nodes = repo.resolve_path(summary_steps)
                ids = sorted({i for n in nodes for i in n.extent})
                span.set_attribute("rows", len(ids))
            context: list = [NodeItem(i, expr.document) for i in ids]
        else:
            context = self._document_step(steps.pop(0), env,
                                          expr.document)
        return self._apply_steps(context, steps, env)

    def _document_step(self, step: Step, env: dict,
                       doc: str | None) -> list:
        """First step of an absolute path, from the document node."""
        repo = self._repo(doc)
        root_tag = repo.tag_of(0)
        items: list = []
        if step.axis == "child":
            if _test_matches_root(step, root_tag):
                items = [NodeItem(0, doc)]
        elif step.axis == "descendant":
            ids = []
            if _test_matches_root(step, root_tag):
                ids.append(0)
            tag_code = (None if step.test == "*"
                        else repo.dictionary.code_of(step.test))
            if step.test == "*" or tag_code is not None:
                ids.extend(repo.structure.descendants_of(0, tag_code))
            items = [NodeItem(i, doc) for i in sorted(set(ids))]
        if step.predicates:
            items = self._filter_predicates(items, step.predicates, env)
        return items

    def _apply_steps(self, context: list, steps, env: dict) -> list:
        for step in steps:
            context = self._apply_step(context, step, env)
        return context

    def _apply_step(self, context: list, step: Step, env: dict) -> list:
        output: list = []
        seen: set[int] = set()
        for item in context:
            if isinstance(item, NodeItem):
                for result in self._step_from_node(item, step):
                    if isinstance(result, NodeItem):
                        key = (result.node_id, result.doc)
                        if key in seen:
                            continue
                        seen.add(key)
                    output.append(result)
            elif isinstance(item, Element):
                output.extend(self._step_from_element(item, step))
            # Atomic items have no children: step yields nothing.
        if step.predicates:
            output = self._filter_predicates(output, step.predicates, env)
        return output

    def _step_from_node(self, item: NodeItem, step: Step) -> list:
        repo = self._repo(item.doc)
        structure = repo.structure
        node_id = item.node_id
        if step.axis == "attribute":
            return self._node_values(item, "@" + step.test)
        if step.test == "text()":
            if step.axis == "descendant":
                items: list = []
                for descendant in [node_id] + \
                        structure.descendants_of(node_id):
                    items.extend(self._node_values(
                        NodeItem(descendant, item.doc), TEXT_STEP))
                return items
            return self._node_values(item, TEXT_STEP)
        tag_code = (None if step.test == "*"
                    else repo.dictionary.code_of(step.test))
        if step.test != "*" and tag_code is None:
            return []
        self.stats.nodes_visited += 1
        if step.axis == "child":
            ids = structure.children_of(node_id, tag_code)
        else:
            ids = structure.descendants_of(node_id, tag_code)
        return [NodeItem(i, item.doc) for i in ids]

    def _node_values(self, item: NodeItem, step_name: str) -> list:
        """Attribute/text values of one node, as CompressedItems."""
        repo = self._repo(item.doc)
        record = repo.structure.record(item.node_id)
        suffix = "/" + step_name
        items: list = []
        for path, index in record.value_pointers:
            if path.endswith(suffix):
                container = repo.container(path)
                items.append(CompressedItem(
                    container.record_at(index).compressed,
                    container.codec, container.value_type))
        return items

    def _step_from_element(self, element: Element, step: Step) -> list:
        if step.axis == "attribute":
            value = element.attribute(step.test)
            return [] if value is None else [value]
        if step.test == "text()":
            return [child.value for child in element.children
                    if isinstance(child, Text)]
        if step.axis == "child":
            candidates = element.child_elements(
                None if step.test == "*" else step.test)
        else:
            candidates = list(element.descendants(
                None if step.test == "*" else step.test))
        return list(candidates)

    def _filter_predicates(self, items: list, predicates, env: dict
                           ) -> list:
        for predicate in predicates:
            if isinstance(predicate, NumberLiteral):
                position = int(predicate.value)
                items = ([items[position - 1]]
                         if 1 <= position <= len(items) else [])
                continue
            filtered = []
            for item in items:
                child_env = dict(env)
                child_env["."] = item
                if effective_boolean(self.eval(predicate, child_env)):
                    filtered.append(item)
            items = filtered
        return items

    # -- constructors --------------------------------------------------------------------

    def _eval_constructor(self, expr: ElementConstructor,
                          env: dict) -> list:
        element = Element(expr.name)
        for name, parts in expr.attributes:
            rendered = []
            for part in parts:
                if isinstance(part, TextLiteral):
                    rendered.append(part.value)
                else:
                    rendered.append(" ".join(
                        string_value(self._atomize(i), self.stats)
                        for i in self.eval(part, env)))
            element.set_attribute(name, "".join(rendered))
        for content in expr.content:
            if isinstance(content, TextLiteral):
                element.append(Text(content.value))
                continue
            for item in self.eval(content, env):
                self._append_content(element, item)
        return [element]

    def _append_content(self, element: Element, item) -> None:
        if isinstance(item, NodeItem):
            engine = QueryEngine(self.repository, self._collection)
            element.append(
                engine.materialize_node(item.node_id, self.stats,
                                        doc=item.doc))
        elif isinstance(item, Element):
            element.append(item)
        elif isinstance(item, Text):
            element.append(item)
        else:
            element.append(Text(string_value(
                self._atomize(item), self.stats)))

    # -- atomization --------------------------------------------------------------------

    def _atomize(self, item):
        """Typed value of one item; nodes atomize to their text.

        A node with exactly one text child atomizes to the *compressed*
        item, keeping later comparisons in the compressed domain.
        """
        if isinstance(item, NodeItem):
            values = self._node_values(item, TEXT_STEP)
            repo = self._repo(item.doc)
            if len(values) == 1 and not \
                    repo.structure.record(item.node_id).children:
                return values[0]
            self.stats.decompressions += 1
            return repo.full_text_of(item.node_id)
        if isinstance(item, Element):
            return item.text()
        return item

    def _atomize_sequence(self, items: list) -> list:
        return [self._atomize(item) for item in items]

    _DISPATCH = {
        StringLiteral: _eval_string,
        NumberLiteral: _eval_number,
        TextLiteral: _eval_text_literal,
        VarRef: _eval_var,
        ContextItem: _eval_context,
        SequenceExpr: _eval_sequence,
        Logical: _eval_logical,
        Comparison: _eval_comparison,
        Arithmetic: _eval_arithmetic,
        FunctionCall: _eval_function,
        FLWOR: _eval_flwor,
        PathExpr: _eval_path,
        ElementConstructor: _eval_constructor,
    }


class _JoinIndex:
    """String-keyed build index for FLWOR hash joins."""

    def __init__(self):
        self._buckets: dict[str, list] = {}

    def add(self, key: str, item) -> None:
        self._buckets.setdefault(key, []).append(item)

    def lookup(self, key: str) -> list:
        return self._buckets.get(key, [])


def _interval_kind(low, high, low_inclusive: bool,
                   high_inclusive: bool) -> str:
    """E/I/D kind of an interval probe: a point probe is ``eq``."""
    if low is not None and low == high and low_inclusive \
            and high_inclusive:
        return "eq"
    return "ineq"


def _summary_step(step: Step) -> tuple[str, str]:
    if step.axis == "attribute":
        return ("child", "@" + step.test)
    if step.test == "text()":
        return (step.axis, TEXT_STEP)
    return (step.axis, step.test)


def _test_matches_root(step: Step, root_tag: str) -> bool:
    return step.test == "*" or step.test == root_tag



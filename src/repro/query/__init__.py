"""The XQueC query processor (paper §4).

A query parser for the FLWOR subset the paper's experiments use, a
physical algebra whose operators work directly on the compressed
repository (``ContScan``, ``ContAccess``, ``StructureSummaryAccess``,
``Parent``, ``Child``, ``TextContent``, joins, and explicit
``Decompress``), an access-path optimizer, and the evaluation engine.

Predicates are pushed into the compressed domain whenever the container
codec supports them; decompression happens only at serialization time.
"""

from repro.query.engine import QueryEngine, QueryResult
from repro.query.parser import parse_query

__all__ = ["QueryEngine", "QueryResult", "parse_query"]

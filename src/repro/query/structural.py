"""Structural joins over 3-valued IDs — the paper's §6 extension.

The measured prototype uses *simple unique IDs*, which force a
parent-child join per path step (the reason Q2/Q3/Q16 trail Galax in
Figure 7).  The paper names the fix as immediate future work: 3-valued
``(pre, post, level)`` IDs in the spirit of TIMBER / Grust's
pre-post encoding / the structural-join primitive [26, 27, 28].

This module implements that extension:

* the loader already assigns ``pre`` (= the simple ID), ``post`` and
  ``level`` to every node record;
* :class:`StructuralJoin` is the classic *stack-tree-descendant* merge:
  both inputs arrive in document (pre) order, a stack carries the open
  ancestors, and every ancestor/descendant (or parent/child) pair is
  emitted in one pass — no per-step navigation, no quadratic blowup.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.query.context import EvaluationStats, NodeItem
from repro.query.physical import Operator, Row
from repro.storage.structure import StructureTree


class StructuralJoin(Operator):
    """Stack-based merge join on the ancestor/descendant axis.

    ``ancestors`` and ``descendants`` are row iterables whose
    ``ancestor_column``/``descendant_column`` hold :class:`NodeItem`s
    in document order (as ``StructureSummaryAccess`` emits them).
    ``axis`` is ``"descendant"`` or ``"child"``.  Output pairs are
    ordered by the descendant's document order.
    """

    def __init__(self, ancestors: Iterable[Row],
                 descendants: Iterable[Row],
                 structure: StructureTree,
                 ancestor_column: str, descendant_column: str,
                 axis: str = "descendant",
                 stats: EvaluationStats | None = None):
        if axis not in ("descendant", "child"):
            raise ValueError(f"unsupported axis {axis!r}")
        self._ancestors = ancestors
        self._descendants = descendants
        self._structure = structure
        self._ancestor_column = ancestor_column
        self._descendant_column = descendant_column
        self._axis = axis
        self._stats = stats

    def _batches(self, size: int):
        # Stack-based holistic join: output order depends on a shared
        # stack across the whole descendant stream, so the batch form
        # chunks the row algorithm rather than splitting the stack.
        return self._compat_batches(size)

    def _rows(self) -> Iterator[Row]:
        structure = self._structure
        a_column = self._ancestor_column
        d_column = self._descendant_column
        child_only = self._axis == "child"

        def annotated(rows: Iterable[Row], column: str):
            out = []
            for row in rows:
                record = structure.record(row[column].node_id)
                out.append((record.node_id, record.post, record.level,
                            row))
            return out

        ancestors = annotated(self._ancestors, a_column)
        descendants = annotated(self._descendants, d_column)
        if self._stats is not None:
            self._stats.nodes_visited += len(ancestors) \
                + len(descendants)

        a_index = 0
        a_count = len(ancestors)
        # Stack entries: (post, level, row), innermost on top.
        stack: list[tuple[int, int, Row]] = []
        for d_pre, d_post, d_level, d_row in descendants:
            # Push every ancestor candidate that starts before d,
            # first popping entries whose subtree ended (the stack
            # invariant: each entry contains the next).
            while a_index < a_count:
                a_pre, a_post, a_level, a_row = ancestors[a_index]
                if a_pre >= d_pre:
                    break
                while stack and stack[-1][0] < a_post:
                    stack.pop()
                stack.append((a_post, a_level, a_row))
                a_index += 1
            # Pop candidates whose subtree ended before d.
            while stack and stack[-1][0] < d_post:
                stack.pop()
            # Everything left on the stack contains d.
            for _, a_level, a_row in stack:
                if child_only and a_level != d_level - 1:
                    continue
                yield {**a_row, **d_row}


def structural_pairs(structure: StructureTree,
                     ancestor_ids: list[int],
                     descendant_ids: list[int],
                     axis: str = "descendant"
                     ) -> list[tuple[int, int]]:
    """Convenience wrapper joining two plain id lists."""
    join = StructuralJoin(
        [{"a": NodeItem(i)} for i in sorted(ancestor_ids)],
        [{"d": NodeItem(i)} for i in sorted(descendant_ids)],
        structure, "a", "d", axis=axis)
    return [(row["a"].node_id, row["d"].node_id) for row in join]


def navigation_pairs(structure: StructureTree,
                     ancestor_ids: list[int],
                     descendant_ids: list[int],
                     axis: str = "descendant"
                     ) -> list[tuple[int, int]]:
    """The simple-ID baseline: per-descendant parent-chain walking.

    This is what the measured prototype effectively does (its data
    model "imposes a large number of parent-child joins", §5) — each
    descendant climbs its parent chain testing membership.
    """
    ancestors = set(ancestor_ids)
    pairs: list[tuple[int, int]] = []
    for descendant in sorted(descendant_ids):
        node = structure.parent_of(descendant)
        hops = 1
        while node is not None:
            if node in ancestors and (axis == "descendant" or hops == 1):
                pairs.append((node, descendant))
            node = structure.parent_of(node)
            hops += 1
    return pairs

"""Shipping compressed query results — the paper's network argument.

§1 and the conclusion: "the possibility of obtaining compressed query
results allows to spare network bandwidth when sending these results
to a remote location" / "can be a huge advantage when query results
must be shipped around a network".

:func:`ship` packages a query's *raw* result sequence without
decompressing it: still-compressed values travel as their code bits
plus one serialized source model per distinct codec; nodes are
materialized (they must be serialized as XML anyway) and atomics go as
text.  :func:`receive` unpacks on the other side, decoding with the
shipped models.
"""

from __future__ import annotations

from repro.compression.serialization import (
    deserialize_codec,
    serialize_codec,
)
from repro.errors import CorruptDataError
from repro.compression.base import CompressedValue
from repro.query.context import CompressedItem, EvaluationStats, NodeItem
from repro.util.bytestream import ByteReader, ByteWriter
from repro.xmlio.dom import Element
from repro.xmlio.writer import serialize

_KIND_COMPRESSED = 0
_KIND_TEXT = 1
_KIND_XML = 2
_KIND_NUMBER = 3
_KIND_BOOLEAN = 4


def ship(result) -> bytes:
    """Package a :class:`~repro.query.engine.QueryResult` compressed.

    Values that are still compressed stay compressed; each distinct
    source model ships exactly once.
    """
    writer = ByteWriter()
    models: list = []
    model_index: dict[int, int] = {}
    body = ByteWriter()
    items = result._raw_items
    body.varint(len(items))
    for item in items:
        if isinstance(item, CompressedItem):
            key = id(item.codec)
            if key not in model_index:
                model_index[key] = len(models)
                models.append(serialize_codec(item.codec))
            body.byte(_KIND_COMPRESSED)
            body.varint(model_index[key])
            body.varint(item.compressed.bits)
            body.exact(item.compressed.data)
        elif isinstance(item, NodeItem):
            engine = result._engine
            element = engine.materialize_node(
                item.node_id, EvaluationStats(), doc=item.doc)
            body.byte(_KIND_XML)
            body.string(serialize(element))
        elif isinstance(item, Element):
            body.byte(_KIND_XML)
            body.string(serialize(item))
        elif isinstance(item, bool):
            body.byte(_KIND_BOOLEAN)
            body.byte(1 if item else 0)
        elif isinstance(item, float):
            body.byte(_KIND_NUMBER)
            body.float64(item)
        else:
            body.byte(_KIND_TEXT)
            body.string(str(item))
    writer.varint(len(models))
    for model in models:
        writer.raw(model)
    writer.exact(body.getvalue())
    return writer.getvalue()


def receive(payload: bytes) -> list:
    """Unpack a shipped result into plain values/XML strings."""
    reader = ByteReader(payload)
    codecs = [deserialize_codec(reader.raw())
              for _ in range(reader.varint())]
    out: list = []
    for _ in range(reader.varint()):
        kind = reader.byte()
        if kind == _KIND_COMPRESSED:
            codec = codecs[reader.varint()]
            bits = reader.varint()
            data = reader.exact((bits + 7) // 8)
            out.append(codec.decode(CompressedValue(data, bits)))
        elif kind == _KIND_TEXT:
            out.append(reader.string())
        elif kind == _KIND_XML:
            out.append(reader.string())
        elif kind == _KIND_NUMBER:
            out.append(reader.float64())
        elif kind == _KIND_BOOLEAN:
            out.append(reader.byte() == 1)
        else:
            raise CorruptDataError(f"unknown shipped item kind {kind}")
    return out

"""Shipping compressed query results — the paper's network argument.

§1 and the conclusion: "the possibility of obtaining compressed query
results allows to spare network bandwidth when sending these results
to a remote location" / "can be a huge advantage when query results
must be shipped around a network".

:func:`ship` packages a query's *raw* result sequence without
decompressing it: still-compressed values travel as their code bits
plus one serialized source model per distinct codec; nodes are
materialized (they must be serialized as XML anyway) and atomics go as
text.  :func:`receive` unpacks on the other side, decoding with the
shipped models.

On top of the item payload, :func:`ship_result` / :func:`receive_result`
add the **result-set frame** the sharded serving plane moves between
worker and coordinator processes: a magic/version header, the run's
:class:`~repro.query.context.EvaluationStats` counters, and the item
payload — so a gathered result still knows how it was computed, and
the coordinator can account bytes-on-the-wire against what plain
(decompressed) shipping would have cost.

Error contract: a payload that does not decode — truncated stream,
unknown codec id, garbage code bits, trailing junk — raises
:class:`~repro.errors.CorruptDataError`, never a low-level
``struct.error``/``KeyError``, and never returns a partially
materialized result.
"""

from __future__ import annotations

from repro.compression.serialization import (
    deserialize_codec,
    serialize_codec,
)
from repro.errors import CorruptDataError, XQueCError
from repro.compression.base import CompressedValue
from repro.query.context import (
    CompressedItem,
    EvaluationStats,
    NodeItem,
    _format_number,
)
from repro.util.bytestream import ByteReader, ByteWriter
from repro.xmlio.dom import Element
from repro.xmlio.writer import serialize

_KIND_COMPRESSED = 0
_KIND_TEXT = 1
_KIND_XML = 2
_KIND_NUMBER = 3
_KIND_BOOLEAN = 4

#: result-set frame header (:func:`ship_result`).
FRAME_MAGIC = b"XQRS"
FRAME_VERSION = 1


def ship(result) -> bytes:
    """Package a :class:`~repro.query.engine.QueryResult` compressed.

    Values that are still compressed stay compressed; each distinct
    source model ships exactly once.
    """
    writer = ByteWriter()
    models: list = []
    model_index: dict[int, int] = {}
    body = ByteWriter()
    items = result._raw_items
    body.varint(len(items))
    for item in items:
        if isinstance(item, CompressedItem):
            key = id(item.codec)
            if key not in model_index:
                model_index[key] = len(models)
                models.append(serialize_codec(item.codec))
            body.byte(_KIND_COMPRESSED)
            body.varint(model_index[key])
            body.varint(item.compressed.bits)
            body.exact(item.compressed.data)
        elif isinstance(item, NodeItem):
            engine = result._engine
            element = engine.materialize_node(
                item.node_id, EvaluationStats(), doc=item.doc)
            body.byte(_KIND_XML)
            body.string(serialize(element))
        elif isinstance(item, Element):
            body.byte(_KIND_XML)
            body.string(serialize(item))
        elif isinstance(item, bool):
            body.byte(_KIND_BOOLEAN)
            body.byte(1 if item else 0)
        elif isinstance(item, float):
            body.byte(_KIND_NUMBER)
            body.float64(item)
        else:
            body.byte(_KIND_TEXT)
            body.string(str(item))
    writer.varint(len(models))
    for model in models:
        writer.raw(model)
    writer.exact(body.getvalue())
    return writer.getvalue()


def receive(payload: bytes) -> list:
    """Unpack a shipped result into plain values/XML strings.

    Raises :class:`~repro.errors.CorruptDataError` on any malformed
    payload — truncated stream, out-of-range codec reference, code
    bits the shipped model cannot decode, trailing bytes — and never
    returns a partially decoded list: either every item materializes
    or nothing does.
    """
    out, _ = _receive_accounted(ByteReader(payload))
    return out


class ReceivedResultSet:
    """A gathered result-set frame, decoded on the coordinator side.

    ``values`` mirror what :meth:`QueryResult.values
    <repro.query.engine.QueryResult.values>` returns on the worker
    (decoded strings, XML strings, floats, bools); ``stats`` carries
    the worker run's evaluation counters across the process boundary.

    The byte accounting quantifies the paper's network claim per
    result: ``wire_bytes`` is what actually crossed the pipe (values
    still compressed), ``plain_bytes`` what shipping the decompressed
    text would have cost.
    """

    __slots__ = ("values", "stats", "wire_bytes", "plain_bytes",
                 "compressed_value_bytes")

    def __init__(self, values: list, stats: EvaluationStats,
                 wire_bytes: int, plain_bytes: int,
                 compressed_value_bytes: int):
        self.values = values
        self.stats = stats
        self.wire_bytes = wire_bytes
        self.plain_bytes = plain_bytes
        self.compressed_value_bytes = compressed_value_bytes

    @property
    def compression_ratio(self) -> float | None:
        """``wire_bytes / plain_bytes`` (< 1 means bandwidth spared)."""
        if self.plain_bytes <= 0:
            return None
        return self.wire_bytes / self.plain_bytes

    def to_xml(self) -> str:
        """Serialize exactly like :meth:`QueryResult.to_xml` — the
        parity contract the sharded oracle tests pin."""
        parts = []
        for value in self.values:
            if isinstance(value, float):
                parts.append(_format_number(value))
            else:
                parts.append(str(value))
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:
        return (f"<ReceivedResultSet {len(self.values)} items, "
                f"{self.wire_bytes}B wire / {self.plain_bytes}B plain>")


def ship_result(result) -> bytes:
    """Frame a :class:`~repro.query.engine.QueryResult` for transport.

    Layout: ``XQRS`` magic, version byte, the evaluation-stats counter
    section, then the length-prefixed :func:`ship` item payload.
    Unpack with :func:`receive_result`.
    """
    writer = ByteWriter()
    writer.exact(FRAME_MAGIC)
    writer.byte(FRAME_VERSION)
    counters = result.stats.as_dict()
    writer.varint(len(counters))
    for name in sorted(counters):
        writer.string(name)
        writer.varint(max(int(counters[name]), 0))
    writer.raw(ship(result))
    return writer.getvalue()


def receive_result(frame: bytes) -> ReceivedResultSet:
    """Unpack a :func:`ship_result` frame (stats + items + accounting).

    Same error contract as :func:`receive`: anything malformed raises
    :class:`~repro.errors.CorruptDataError` without partially
    materializing the result.
    """
    reader = ByteReader(frame)
    try:
        if reader.exact(len(FRAME_MAGIC)) != FRAME_MAGIC:
            raise CorruptDataError(
                "not a shipped result-set frame (bad magic)")
        version = reader.byte()
        if version != FRAME_VERSION:
            raise CorruptDataError(
                f"unsupported result-set frame version {version}")
        counters = {}
        for _ in range(reader.varint()):
            name = reader.string()
            counters[name] = reader.varint()
        payload = ByteReader(reader.raw())
    except XQueCError:
        raise
    except Exception as exc:  # noqa: BLE001 - normalize to the contract
        raise CorruptDataError(
            f"malformed result-set frame: {exc}") from exc
    if not reader.exhausted:
        raise CorruptDataError(
            "trailing bytes after shipped result-set frame")
    values, accounting = _receive_accounted(payload)
    known = {name: counters.get(name, 0)
             for name in EvaluationStats.FIELDS}
    return ReceivedResultSet(
        values, EvaluationStats(**known),
        wire_bytes=len(frame),
        plain_bytes=accounting["plain_bytes"],
        compressed_value_bytes=accounting["compressed_value_bytes"])


def _receive_accounted(reader: ByteReader) -> tuple[list, dict]:
    """Decode one item payload; returns (values, byte accounting).

    All decoding happens into a local list that is returned only once
    the payload is fully consumed and validated — a corrupt tail can
    never hand the caller a partial result.  Low-level decode failures
    (``struct.error`` from a codec, ``KeyError`` from a code table,
    ``IndexError``/``UnicodeDecodeError`` from torn bytes) are
    normalized to :class:`~repro.errors.CorruptDataError`.
    """
    out: list = []
    compressed_value_bytes = 0
    plain_bytes = 0
    try:
        codecs = [deserialize_codec(reader.raw())
                  for _ in range(reader.varint())]
        for _ in range(reader.varint()):
            kind = reader.byte()
            if kind == _KIND_COMPRESSED:
                index = reader.varint()
                if index >= len(codecs):
                    raise CorruptDataError(
                        f"shipped item references codec {index} but "
                        f"only {len(codecs)} models were shipped")
                codec = codecs[index]
                bits = reader.varint()
                data = reader.exact((bits + 7) // 8)
                compressed_value_bytes += len(data)
                value = codec.decode(CompressedValue(data, bits))
                plain_bytes += len(value.encode("utf-8"))
                out.append(value)
            elif kind == _KIND_TEXT:
                value = reader.string()
                plain_bytes += len(value.encode("utf-8"))
                out.append(value)
            elif kind == _KIND_XML:
                value = reader.string()
                plain_bytes += len(value.encode("utf-8"))
                out.append(value)
            elif kind == _KIND_NUMBER:
                number = reader.float64()
                plain_bytes += len(_format_number(number))
                out.append(number)
            elif kind == _KIND_BOOLEAN:
                flag = reader.byte()
                if flag not in (0, 1):
                    raise CorruptDataError(
                        f"shipped boolean must be 0/1, got {flag}")
                plain_bytes += 4 if flag else 5
                out.append(flag == 1)
            else:
                raise CorruptDataError(
                    f"unknown shipped item kind {kind}")
    except XQueCError:
        raise
    except Exception as exc:  # noqa: BLE001 - normalize to the contract
        raise CorruptDataError(
            f"shipped payload does not decode: {exc}") from exc
    if not reader.exhausted:
        raise CorruptDataError("trailing bytes after shipped items")
    return out, {"compressed_value_bytes": compressed_value_bytes,
                 "plain_bytes": plain_bytes}

"""``ExecutionOptions``: the one knob surface for running a query.

Before the serving layer, the three public entry points grew three
subtly different keyword surfaces: ``XQueCSystem.query`` took a bare
``telemetry=``, ``QueryEngine.execute`` took the same plus engine-level
flags, and the CLI ``query`` command re-invented both as argparse
flags.  Every run option now lives on one frozen dataclass that all
layers accept; each layer consumes the fields that apply to it and
passes the rest through unchanged.

The old keyword arguments keep working through
:func:`coerce_options` — callers passing ``telemetry=`` get a
``DeprecationWarning`` and the value is folded into an
:class:`ExecutionOptions` for them.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass, replace

from repro.obs.profiler import ProfileOptions
from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class ExecutionOptions:
    """Every per-run option of the unified execution API.

    ``telemetry``
        An enabled :class:`~repro.obs.telemetry.Telemetry` to record
        the run into; ``None`` lets the executing layer create one.
    ``telemetry_enabled``
        When ``telemetry`` is ``None``, create the run's telemetry
        enabled (spans + histograms) instead of counters-only.
    ``record``
        Tri-state workload journalling: ``None`` follows the attached
        :class:`~repro.obs.workload.WorkloadRecorder`'s own ``enabled``
        flag (the historical behaviour); ``True`` requires a recorder
        and journals the run; ``False`` skips journalling even with an
        enabled recorder attached.
    ``use_plan_cache`` / ``use_block_cache``
        Session-level switches for the prepared-plan LRU and the
        decoded-block cache; the bare engine ignores them.
    ``bindings``
        External variable bindings (name -> value) seeded into the
        evaluation environment, so one prepared query re-runs under
        different constants without re-parsing.  Scalar values are
        wrapped into singleton sequences.
    ``profile``
        Attach the span-attributed sampling profiler for this run:
        ``True`` for defaults, a
        :class:`~repro.obs.profiler.ProfileOptions` for custom
        rate/allocation tracing.  Implies an enabled telemetry (the
        profiler attributes samples to open spans); the finished
        :class:`~repro.obs.profiler.SpanProfile` lands on
        ``result.telemetry.profile``.
    ``batch_size``
        Rows per :class:`~repro.query.batch.RecordBatch` in the batch
        execution engine (DESIGN.md §13).  ``None`` inherits the
        session default (ultimately
        :data:`~repro.query.batch.DEFAULT_BATCH_SIZE`); ``1`` forces
        the legacy row-at-a-time path — the knob the differential
        suite turns to hold both paths to identical results.
    """

    telemetry: Telemetry | None = None
    telemetry_enabled: bool = False
    record: bool | None = None
    use_plan_cache: bool = True
    use_block_cache: bool = True
    bindings: Mapping[str, object] | None = None
    profile: ProfileOptions | bool | None = None
    batch_size: int | None = None

    def __post_init__(self):
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")

    def resolve_batch_size(self, default: int | None = None) -> int:
        """The effective rows-per-batch for this run."""
        from repro.query.batch import DEFAULT_BATCH_SIZE
        if self.batch_size is not None:
            return self.batch_size
        if default is not None:
            return default
        return DEFAULT_BATCH_SIZE

    def with_telemetry(self, telemetry: Telemetry) -> "ExecutionOptions":
        """A copy of these options recording into ``telemetry``."""
        return replace(self, telemetry=telemetry)

    def resolve_telemetry(self, default_enabled: bool = False
                          ) -> Telemetry:
        """The run's telemetry: the given one, or a fresh instance."""
        if self.telemetry is not None:
            return self.telemetry
        return Telemetry(
            enabled=self.telemetry_enabled or default_enabled)

    def binding_environment(self) -> dict[str, list]:
        """The initial evaluation environment from ``bindings``.

        Values that are not already sequences are wrapped into
        singleton lists (the engine's item-sequence convention).
        """
        if not self.bindings:
            return {}
        return {name: value if isinstance(value, list) else [value]
                for name, value in self.bindings.items()}


def coerce_options(options: ExecutionOptions | None,
                   legacy: dict, owner: str) -> ExecutionOptions:
    """Normalize ``(options, **legacy)`` into one ExecutionOptions.

    ``legacy`` holds the deprecated keyword arguments an entry point
    still accepts for backwards compatibility (currently only
    ``telemetry``); passing one warns and folds the value in.  Unknown
    keywords raise ``TypeError`` exactly like a real signature would.
    """
    unknown = set(legacy) - {"telemetry"}
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword argument(s) "
            f"{sorted(unknown)}")
    telemetry = legacy.get("telemetry")
    if telemetry is not None:
        warnings.warn(
            f"{owner}(telemetry=...) is deprecated; pass "
            "ExecutionOptions(telemetry=...) instead",
            DeprecationWarning, stacklevel=3)
        if options is not None and options.telemetry is not None:
            raise TypeError(
                f"{owner}(): telemetry passed both as legacy keyword "
                "and inside ExecutionOptions")
        options = replace(options if options is not None
                          else ExecutionOptions(), telemetry=telemetry)
    return options if options is not None else ExecutionOptions()

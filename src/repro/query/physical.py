"""The physical operators of the XQueC query engine (paper §4).

Three operator classes, exactly as the paper groups them:

* **data access** — :class:`ContScan`, :class:`ContAccess`,
  :class:`StructureSummaryAccess`, :class:`Parent`, :class:`Child`,
  :class:`Descendant`, :class:`TextContent`, :class:`AttributeContent`;
* **data combination** — :class:`Select`, :class:`MergeJoin`,
  :class:`HashJoin`, :class:`NestedLoopJoin`, :class:`Project`,
  :class:`Distinct`, :class:`Sort`;
* **(de)compression / serialization** — :class:`Decompress`,
  :class:`CompressConstant`, :class:`XMLSerialize`.

Operators are iterators over *rows* (dicts mapping column names to
items), so plans compose by nesting.  Order guarantees mirror §4:
``StructureSummaryAccess`` emits element ids in document order,
``Parent``/``Child`` preserve the order of their input, and
``ContScan``/``ContAccess`` emit in *value* order — which is what lets
plans use :class:`MergeJoin` without sorting.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from time import perf_counter_ns

from repro.obs import runtime
from repro.query.context import CompressedItem, EvaluationStats, NodeItem
from repro.storage.repository import CompressedRepository

Row = dict


def _traced(name: str, rows: Iterator[Row]) -> Iterator[Row]:
    """Wrap an operator's row stream with telemetry when active.

    Observes one ``span.<name>`` histogram entry for the full
    iteration's wall time and counts rows in ``op.<name>.rows``; with
    no active telemetry the stream is returned untouched, so the
    disabled-mode cost is one global load and an ``is None`` test.
    """
    telemetry = runtime.ACTIVE
    if telemetry is None:
        return rows
    return _traced_rows(name, rows, telemetry)


def _traced_rows(name: str, rows: Iterator[Row], telemetry
                 ) -> Iterator[Row]:
    metrics = telemetry.metrics
    count = 0
    start = perf_counter_ns()
    try:
        for row in rows:
            count += 1
            yield row
    finally:
        metrics.observe(f"span.{name}", perf_counter_ns() - start)
        metrics.add(f"op.{name}.rows", count)


class Operator:
    """Base class: an iterable of rows.

    ``__iter__`` routes through :func:`_traced` using the class name,
    so every physical operator reports rows and wall time whenever a
    telemetry run is active; subclasses implement ``_rows`` (both are
    repo invariants enforced by ``repro lint-src``).

    ``INPUTS`` names the attributes holding the operator's row-stream
    inputs, in plan order — the static plan verifier
    (:mod:`repro.lint.plan`) walks plans through it without executing
    them.
    """

    #: attribute names of this operator's row-stream inputs, in order.
    INPUTS: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Row]:
        return _traced(type(self).__name__, self._rows())

    def _rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def inputs(self) -> list:
        """The operator's input streams (operators or plain iterables)."""
        return [getattr(self, name) for name in self.INPUTS]

    def rows(self) -> list[Row]:
        """Materialize the full output (convenience for tests/benches)."""
        return list(self)


# -- data access operators ----------------------------------------------------

class ContScan(Operator):
    """Scan all (elementID, compressed value) pairs of a container."""

    def __init__(self, repository: CompressedRepository, path: str,
                 id_column: str, value_column: str,
                 stats: EvaluationStats | None = None):
        self._container = repository.container(path)
        self._id_column = id_column
        self._value_column = value_column
        self._stats = stats
        self.container = self._container
        self.id_column = id_column
        self.value_column = value_column

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.container_scans += 1
        container = self._container
        codec = container.codec
        value_type = container.value_type
        for parent_id, compressed in container.scan():
            yield {self._id_column: NodeItem(parent_id),
                   self._value_column: CompressedItem(
                       compressed, codec, value_type)}


class ContAccess(Operator):
    """Interval access into a container (binary search, §2.2)."""

    def __init__(self, repository: CompressedRepository, path: str,
                 id_column: str, value_column: str,
                 low: str | None = None, high: str | None = None,
                 low_inclusive: bool = True, high_inclusive: bool = True,
                 stats: EvaluationStats | None = None):
        self._container = repository.container(path)
        self._id_column = id_column
        self._value_column = value_column
        self._interval = (low, high, low_inclusive, high_inclusive)
        self._stats = stats
        self.container = self._container
        self.id_column = id_column
        self.value_column = value_column
        self.interval = self._interval

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.container_accesses += 1
        container = self._container
        codec = container.codec
        value_type = container.value_type
        low, high, low_inc, high_inc = self._interval
        if runtime.RECORDER is not None:
            kind = "eq" if (low is not None and low == high
                            and low_inc and high_inc) else "ineq"
            runtime.RECORDER.record_predicate(container.path, kind)
        for parent_id, compressed in container.interval_search(
                low, high, low_inc, high_inc):
            yield {self._id_column: NodeItem(parent_id),
                   self._value_column: CompressedItem(
                       compressed, codec, value_type)}


class StructureSummaryAccess(Operator):
    """All element ids reachable by a path, in document order."""

    def __init__(self, repository: CompressedRepository,
                 steps: list[tuple[str, str]], column: str,
                 stats: EvaluationStats | None = None):
        self._repository = repository
        self._steps = steps
        self._column = column
        self._stats = stats
        self.column = column

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.summary_accesses += 1
        merged: set[int] = set()
        for node in self._repository.resolve_path(self._steps):
            merged.update(node.extent)
        for node_id in sorted(merged):
            yield {self._column: NodeItem(node_id)}


class Child(Operator):
    """Append each input node's children (optionally tag-filtered).

    Children of one node are emitted in document order; input order is
    preserved (§4).
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 tag: str | None = None,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._tag = tag
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        tag_code = (None if self._tag is None
                    else self._repository.dictionary.code_of(self._tag))
        if self._tag is not None and tag_code is None:
            return  # tag absent from the document: no children at all
        for row in self._source:
            node = row[self._input]
            for child_id in structure.children_of(node.node_id, tag_code):
                if self._stats is not None:
                    self._stats.nodes_visited += 1
                yield {**row, self._output: NodeItem(child_id)}


class Parent(Operator):
    """Append each input node's parent; preserves input order (§4)."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        for row in self._source:
            node = row[self._input]
            parent_id = structure.parent_of(node.node_id)
            if parent_id is None:
                continue
            if self._stats is not None:
                self._stats.nodes_visited += 1
            yield {**row, self._output: NodeItem(parent_id)}


class Descendant(Operator):
    """Append each input node's descendants (optionally tag-filtered)."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 tag: str | None = None,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._tag = tag
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        tag_code = (None if self._tag is None
                    else self._repository.dictionary.code_of(self._tag))
        if self._tag is not None and tag_code is None:
            return
        for row in self._source:
            node = row[self._input]
            for descendant_id in structure.descendants_of(
                    node.node_id, tag_code):
                if self._stats is not None:
                    self._stats.nodes_visited += 1
                yield {**row, self._output: NodeItem(descendant_id)}


class TextContent(Operator):
    """Pair element ids with their immediate text content.

    Implemented, as in the paper, as a hash join between the input ids
    and a ``ContScan`` of the text container.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 container_path: str,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._container_path = container_path
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column
        self.container = repository.container(container_path)

    def _rows(self) -> Iterator[Row]:
        container = self._repository.container(self._container_path)
        if self._stats is not None:
            self._stats.container_scans += 1
            self._stats.hash_joins += 1
        codec = container.codec
        value_type = container.value_type
        by_parent: dict[int, list[CompressedItem]] = {}
        for parent_id, compressed in container.scan():
            by_parent.setdefault(parent_id, []).append(
                CompressedItem(compressed, codec, value_type))
        for row in self._source:
            node = row[self._input]
            for item in by_parent.get(node.node_id, ()):
                yield {**row, self._output: item}


class AttributeContent(Operator):
    """Pair element ids with one attribute's compressed value."""

    INPUTS = ("_inner",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 container_path: str,
                 stats: EvaluationStats | None = None):
        self._inner = TextContent(source, repository, input_column,
                                  output_column, container_path, stats)

    def _rows(self) -> Iterator[Row]:
        return iter(self._inner)


# -- data combination operators --------------------------------------------------

class Select(Operator):
    """Filter rows by a Python predicate over the row.

    The predicate callable is opaque; the keyword-only metadata
    declares what it does so the plan verifier can check it statically:
    ``column`` names the (possibly compressed) column it tests,
    ``predicate_kind`` is the paper's capability kind (``"eq"``,
    ``"ineq"`` or ``"wild"``) when the test runs *in the compressed
    domain*, and ``references`` lists every column the predicate reads.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], predicate, *,
                 column: str | None = None,
                 predicate_kind: str | None = None,
                 references: tuple[str, ...] | None = None):
        self._source = source
        self._predicate = predicate
        self.column = column
        self.predicate_kind = predicate_kind
        self.references = tuple(references) if references is not None \
            else ((column,) if column is not None else None)

    def _rows(self) -> Iterator[Row]:
        predicate = self._predicate
        for row in self._source:
            if predicate(row):
                yield row


class Project(Operator):
    """Keep only the named columns."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], columns: list[str]):
        self._source = source
        self._columns = columns
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        columns = self._columns
        for row in self._source:
            yield {c: row[c] for c in columns}


class HashJoin(Operator):
    """Equi-join on key functions; builds on the right input.

    Output order follows the probe (left) input.  ``left_column`` /
    ``right_column`` optionally name the key columns so the verifier
    can check that a compressed-domain join compares values from one
    compressed domain (same source model).
    """

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 left_key, right_key,
                 stats: EvaluationStats | None = None, *,
                 left_column: str | None = None,
                 right_column: str | None = None):
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._stats = stats
        self.left_column = left_column
        self.right_column = right_column

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.hash_joins += 1
        index: dict = {}
        for row in self._right:
            index.setdefault(self._right_key(row), []).append(row)
        for row in self._left:
            for match in index.get(self._left_key(row), ()):
                yield {**row, **match}


class MergeJoin(Operator):
    """1-pass merge join over inputs already sorted on their keys.

    The order-preserving container scans make this the paper's operator
    of choice for value joins (§4): no sort is needed — but *only* when
    both inputs really arrive sorted on their keys.  Declare the key
    columns via ``left_column``/``right_column`` and the plan verifier
    proves (or refutes) that order statically.
    """

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 left_key, right_key, *,
                 left_column: str | None = None,
                 right_column: str | None = None):
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self.left_column = left_column
        self.right_column = right_column

    def _rows(self) -> Iterator[Row]:
        left_rows = list(self._left)
        right_rows = list(self._right)
        i = 0
        j = 0
        while i < len(left_rows) and j < len(right_rows):
            lk = self._left_key(left_rows[i])
            rk = self._right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif rk < lk:
                j += 1
            else:
                # Emit the cross product of the two equal-key runs.
                i_end = i
                while i_end < len(left_rows) and \
                        self._left_key(left_rows[i_end]) == lk:
                    i_end += 1
                j_end = j
                while j_end < len(right_rows) and \
                        self._right_key(right_rows[j_end]) == rk:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        yield {**left_rows[li], **right_rows[rj]}
                i = i_end
                j = j_end


class NestedLoopJoin(Operator):
    """Theta-join by nested iteration (the baseline engines' only join)."""

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 condition, *,
                 references: tuple[str, ...] | None = None):
        self._left = left
        self._right = right
        self._condition = condition
        self.references = tuple(references) if references is not None \
            else None

    def _rows(self) -> Iterator[Row]:
        right_rows = list(self._right)
        for left_row in self._left:
            for right_row in right_rows:
                if self._condition(left_row, right_row):
                    yield {**left_row, **right_row}


class Distinct(Operator):
    """Drop duplicate rows (by a key function)."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], key, *,
                 columns: tuple[str, ...] | None = None):
        self._source = source
        self._key = key
        self.columns = tuple(columns) if columns is not None else None

    def _rows(self) -> Iterator[Row]:
        seen: set = set()
        for row in self._source:
            key = self._key(row)
            if key not in seen:
                seen.add(key)
                yield row


class Sort(Operator):
    """Sort rows by a key function (needed only when order was lost).

    ``columns`` optionally declares which columns the key reads, in
    significance order — downstream order-dependent operators
    (``MergeJoin``) are then statically known to be safe.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], key, reverse: bool = False,
                 *, columns: tuple[str, ...] | None = None):
        self._source = source
        self._key = key
        self._reverse = reverse
        self.columns = tuple(columns) if columns is not None else None

    def _rows(self) -> Iterator[Row]:
        yield from sorted(self._source, key=self._key,
                          reverse=self._reverse)


# -- compression / decompression operators -------------------------------------

class Decompress(Operator):
    """Replace a compressed column with its decoded string value.

    In the paper's plans (Figure 5) this sits at the very top: values
    stay compressed through selections and joins, and only the final
    results are decompressed — exactly once per value (the plan
    verifier's missing/duplicate-Decompress rule).
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], columns: list[str],
                 stats: EvaluationStats):
        self._source = source
        self._columns = columns
        self._stats = stats
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        for row in self._source:
            out = dict(row)
            for column in self._columns:
                item = out.get(column)
                if isinstance(item, CompressedItem):
                    out[column] = item.decode(self._stats)
            yield out


class XMLSerialize(Operator):
    """Render value columns of each row as plain strings (plan sink).

    The topmost operator of the paper's plans: by the time rows reach
    serialization every value must have passed through ``Decompress``
    exactly once.  The invariant is enforced statically by the plan
    verifier and dynamically here — a :class:`CompressedItem` reaching
    serialization raises :class:`~repro.errors.QueryTypeError` instead
    of silently emitting compressed bytes.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 columns: list[str] | tuple[str, ...]):
        self._source = source
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        from repro.errors import QueryTypeError
        for row in self._source:
            out = dict(row)
            for column in self.columns:
                item = out.get(column)
                if isinstance(item, CompressedItem):
                    raise QueryTypeError(
                        f"column {column!r} reached XMLSerialize still "
                        "compressed; plans must Decompress every "
                        "serialized value exactly once")
                if not isinstance(item, str):
                    out[column] = str(item)
            yield out


class CompressConstant:
    """Compress a query constant once with a container's source model.

    Not an iterator — a helper the optimizer uses to push a comparison
    into the compressed domain (one encode instead of N decodes).
    """

    def __init__(self, repository: CompressedRepository, path: str):
        self._codec = repository.container(path).codec

    def encode(self, constant: str):
        return self._codec.try_encode(constant)

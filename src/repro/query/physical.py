"""The physical operators of the XQueC query engine (paper §4).

Three operator classes, exactly as the paper groups them:

* **data access** — :class:`ContScan`, :class:`ContAccess`,
  :class:`StructureSummaryAccess`, :class:`Parent`, :class:`Child`,
  :class:`Descendant`, :class:`TextContent`, :class:`AttributeContent`;
* **data combination** — :class:`Select`, :class:`MergeJoin`,
  :class:`HashJoin`, :class:`NestedLoopJoin`, :class:`Project`,
  :class:`Distinct`, :class:`Sort`;
* **(de)compression / serialization** — :class:`Decompress`,
  :class:`CompressConstant`, :class:`XMLSerialize`.

Operators move data through the **batch-pull protocol** (DESIGN.md
§13): ``batches(batch_size)`` yields
:class:`~repro.query.batch.RecordBatch` columnar slices, and the
scan/selection/join operators evaluate over numpy arrays — container
slot ranges for compressed-domain predicates, ``np.searchsorted`` for
merge keys.  The historical row-pull protocol survives as a thin
compatibility layer: iterating an operator still yields *rows* (dicts
mapping column names to items) with exactly the same contents and
order, so plans compose by nesting either way.  Operators that only
implement the legacy ``_rows`` keep working through a chunking shim
(with a ``DeprecationWarning`` — see ``src.operator-rows-no-batches``).

Order guarantees mirror §4: ``StructureSummaryAccess`` emits element
ids in document order, ``Parent``/``Child`` preserve the order of
their input, and ``ContScan``/``ContAccess`` emit in *value* order —
which is what lets plans use :class:`MergeJoin` without sorting.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator
from time import perf_counter_ns

import numpy as np

from repro.errors import StorageError
from repro.obs import runtime
from repro.query.batch import (DEFAULT_BATCH_SIZE, ItemColumn,
                               NodeColumn, RecordBatch, ValueColumn,
                               batches_from_rows, rows_of_batches)
from repro.query.context import CompressedItem, EvaluationStats, NodeItem
from repro.storage.repository import CompressedRepository

Row = dict


def _traced(name: str, rows: Iterator[Row]) -> Iterator[Row]:
    """Wrap an operator's row stream with telemetry when active.

    Observes one ``span.<name>`` histogram entry for the full
    iteration's wall time and counts rows in ``op.<name>.rows``; with
    no active telemetry the stream is returned untouched, so the
    disabled-mode cost is one global load and an ``is None`` test.
    """
    telemetry = runtime.ACTIVE
    if telemetry is None:
        return rows
    return _traced_rows(name, rows, telemetry)


def _traced_rows(name: str, rows: Iterator[Row], telemetry
                 ) -> Iterator[Row]:
    metrics = telemetry.metrics
    count = 0
    start = perf_counter_ns()
    try:
        for row in rows:
            count += 1
            yield row
    finally:
        metrics.observe(f"span.{name}", perf_counter_ns() - start)
        metrics.add(f"op.{name}.rows", count)


def _traced_batches(name: str, batches: Iterator[RecordBatch]
                    ) -> Iterator[RecordBatch]:
    """Batch-mode twin of :func:`_traced` (same span/row accounting).

    Rows are counted from batch lengths — EXPLAIN ANALYZE and the
    profiler read identical ``span.<name>`` / ``op.<name>.rows``
    series whichever protocol ran — plus an ``op.<name>.batches``
    counter attributing how many batches carried them.
    """
    telemetry = runtime.ACTIVE
    if telemetry is None:
        return batches
    return _traced_batch_iter(name, batches, telemetry)


def _traced_batch_iter(name: str, batches: Iterator[RecordBatch],
                       telemetry) -> Iterator[RecordBatch]:
    metrics = telemetry.metrics
    rows = 0
    count = 0
    start = perf_counter_ns()
    try:
        for batch in batches:
            rows += len(batch)
            count += 1
            yield batch
    finally:
        metrics.observe(f"span.{name}", perf_counter_ns() - start)
        metrics.add(f"op.{name}.rows", rows)
        metrics.add(f"op.{name}.batches", count)


def _input_batches(source, size: int) -> Iterator[RecordBatch]:
    """Batches from an operator input (operator or plain row iterable)."""
    if isinstance(source, Operator):
        return source.batches(size)
    return batches_from_rows(iter(source), size)


class Operator:
    """Base class: a batch-pull operator that is also iterable as rows.

    Subclasses implement ``_batches(size)`` (and usually keep a scalar
    ``_rows`` so the legacy row path stays available for differential
    testing); either protocol is derived from the other:

    * ``batches(batch_size)`` routes through :func:`_traced_batches`;
      an operator that only has ``_rows`` is chunked by the compat
      shim, with a ``DeprecationWarning`` naming the class.
    * ``__iter__`` routes through :func:`_traced` over ``_rows``; an
      operator that only has ``_batches`` gets its rows by flattening
      batches.

    ``INPUTS`` names the attributes holding the operator's stream
    inputs, in plan order — the static plan verifier
    (:mod:`repro.lint.plan`) walks plans through it without executing
    them.
    """

    #: attribute names of this operator's stream inputs, in order.
    INPUTS: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Row]:
        return _traced(type(self).__name__, self._rows())

    def _rows(self) -> Iterator[Row]:
        cls = type(self)
        if cls._batches is Operator._batches:
            raise NotImplementedError(
                f"{cls.__name__} implements neither _batches nor _rows")
        return rows_of_batches(self._batches(DEFAULT_BATCH_SIZE))

    def batches(self, batch_size: int | None = None
                ) -> Iterator[RecordBatch]:
        """The operator's output as traced RecordBatch slices."""
        size = DEFAULT_BATCH_SIZE if batch_size is None \
            else int(batch_size)
        if size < 1:
            raise ValueError(f"batch_size must be >= 1, got {size}")
        return _traced_batches(type(self).__name__, self._batches(size))

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        cls = type(self)
        if cls._rows is Operator._rows:
            raise NotImplementedError(
                f"{cls.__name__} implements neither _batches nor _rows")
        warnings.warn(
            f"{cls.__name__} implements _rows() without _batches(); "
            "the row-pull operator protocol is deprecated — implement "
            "_batches() (DESIGN.md §13)",
            DeprecationWarning, stacklevel=3)
        return batches_from_rows(self._rows(), size)

    def _compat_batches(self, size: int) -> Iterator[RecordBatch]:
        """Chunk the scalar row path (explicit, warning-free compat).

        For operators whose per-row work is irreducibly scalar
        (``Child`` expansion, theta-join conditions): declaring
        ``_batches = row chunking`` is a decision, not an omission.
        """
        return batches_from_rows(self._rows(), size)

    def inputs(self) -> list:
        """The operator's input streams (operators or plain iterables)."""
        return [getattr(self, name) for name in self.INPUTS]

    def rows(self) -> list[Row]:
        """Materialize the full output (convenience for tests/benches)."""
        return list(self)


# -- data access operators ----------------------------------------------------

class ContScan(Operator):
    """Scan all (elementID, compressed value) pairs of a container.

    Batch mode never materializes per-record objects: ids come straight
    from the container's cached parent-id array and values ride as slot
    ranges (:class:`~repro.query.batch.ValueColumn`).
    """

    def __init__(self, repository: CompressedRepository, path: str,
                 id_column: str, value_column: str,
                 stats: EvaluationStats | None = None):
        self._container = repository.container(path)
        self._id_column = id_column
        self._value_column = value_column
        self._stats = stats
        self.container = self._container
        self.id_column = id_column
        self.value_column = value_column

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.container_scans += 1
        yield from self._scan_rows()

    def _scan_rows(self) -> Iterator[Row]:
        container = self._container
        codec = container.codec
        value_type = container.value_type
        for parent_id, compressed in container.scan():
            yield {self._id_column: NodeItem(parent_id),
                   self._value_column: CompressedItem(
                       compressed, codec, value_type)}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        if self._stats is not None:
            self._stats.container_scans += 1
        container = self._container
        arrays = container.as_arrays()
        if arrays.records is None:  # blob: no per-record slots
            yield from batches_from_rows(self._scan_rows(), size)
            return
        # Mirror scan()'s access accounting without building rows.
        if runtime.ACTIVE is not None:
            runtime.add("container.scans")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(container.path, "scans")
        for start in range(0, arrays.count, size):
            stop = min(start + size, arrays.count)
            yield RecordBatch({
                self._id_column:
                    NodeColumn(arrays.parent_ids[start:stop]),
                self._value_column:
                    ValueColumn(container, np.arange(start, stop))})


class ContAccess(Operator):
    """Interval access into a container (binary search, §2.2).

    Batch mode resolves the interval to one slot range
    (``interval_bounds``) and emits array slices of it.
    """

    def __init__(self, repository: CompressedRepository, path: str,
                 id_column: str, value_column: str,
                 low: str | None = None, high: str | None = None,
                 low_inclusive: bool = True, high_inclusive: bool = True,
                 stats: EvaluationStats | None = None):
        self._container = repository.container(path)
        self._id_column = id_column
        self._value_column = value_column
        self._interval = (low, high, low_inclusive, high_inclusive)
        self._stats = stats
        self.container = self._container
        self.id_column = id_column
        self.value_column = value_column
        self.interval = self._interval

    def _record_predicate(self) -> None:
        if runtime.RECORDER is not None:
            low, high, low_inc, high_inc = self._interval
            kind = "eq" if (low is not None and low == high
                            and low_inc and high_inc) else "ineq"
            runtime.RECORDER.record_predicate(self._container.path, kind)

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.container_accesses += 1
        self._record_predicate()
        yield from self._interval_rows()

    def _interval_rows(self) -> Iterator[Row]:
        container = self._container
        codec = container.codec
        value_type = container.value_type
        low, high, low_inc, high_inc = self._interval
        for parent_id, compressed in container.interval_search(
                low, high, low_inc, high_inc):
            yield {self._id_column: NodeItem(parent_id),
                   self._value_column: CompressedItem(
                       compressed, codec, value_type)}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        if self._stats is not None:
            self._stats.container_accesses += 1
        self._record_predicate()
        container = self._container
        low, high, low_inc, high_inc = self._interval
        bounds = container.interval_bounds(low, high, low_inc, high_inc)
        if bounds is None:  # blob container: filtered full scan
            yield from batches_from_rows(self._interval_rows(), size)
            return
        arrays = container.as_arrays()
        start, end = bounds
        for lo in range(start, end, size):
            hi = min(lo + size, end)
            yield RecordBatch({
                self._id_column: NodeColumn(arrays.parent_ids[lo:hi]),
                self._value_column:
                    ValueColumn(container, np.arange(lo, hi))})


class StructureSummaryAccess(Operator):
    """All element ids reachable by a path, in document order."""

    def __init__(self, repository: CompressedRepository,
                 steps: list[tuple[str, str]], column: str,
                 stats: EvaluationStats | None = None):
        self._repository = repository
        self._steps = steps
        self._column = column
        self._stats = stats
        self.column = column

    def _merged_ids(self) -> np.ndarray:
        merged: set[int] = set()
        for node in self._repository.resolve_path(self._steps):
            merged.update(node.extent)
        ids = np.fromiter(merged, dtype=np.int64, count=len(merged))
        ids.sort()
        return ids

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.summary_accesses += 1
        for node_id in self._merged_ids():
            yield {self._column: NodeItem(int(node_id))}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        if self._stats is not None:
            self._stats.summary_accesses += 1
        ids = self._merged_ids()
        for start in range(0, len(ids), size):
            yield RecordBatch({
                self._column: NodeColumn(ids[start:start + size])})


class Child(Operator):
    """Append each input node's children (optionally tag-filtered).

    Children of one node are emitted in document order; input order is
    preserved (§4).  Per-node fan-out is irregular, so batch mode is
    the explicit row-chunking compat path.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 tag: str | None = None,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._tag = tag
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        tag_code = (None if self._tag is None
                    else self._repository.dictionary.code_of(self._tag))
        if self._tag is not None and tag_code is None:
            return  # tag absent from the document: no children at all
        for row in self._source:
            node = row[self._input]
            for child_id in structure.children_of(node.node_id, tag_code):
                if self._stats is not None:
                    self._stats.nodes_visited += 1
                yield {**row, self._output: NodeItem(child_id)}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        return self._compat_batches(size)


class Parent(Operator):
    """Append each input node's parent; preserves input order (§4).

    Batch mode gathers parents from the structure tree's cached
    parent-id array in one indexing operation per batch.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        for row in self._source:
            node = row[self._input]
            parent_id = structure.parent_of(node.node_id)
            if parent_id is None:
                continue
            if self._stats is not None:
                self._stats.nodes_visited += 1
            yield {**row, self._output: NodeItem(parent_id)}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        parents = self._repository.structure.parent_array()
        for batch in _input_batches(self._source, size):
            batch = batch.compact()
            if not len(batch):
                continue
            column = batch.column(self._input)
            if isinstance(column, NodeColumn):
                ids = column.ids
            else:
                ids = np.fromiter(
                    (item.node_id for item in column.to_items()),
                    dtype=np.int64, count=len(batch))
            out_parents = parents[ids]
            keep = out_parents >= 0
            if not keep.all():
                batch = batch.take(np.flatnonzero(keep))
                out_parents = out_parents[keep]
            if not len(batch):
                continue
            if self._stats is not None:
                self._stats.nodes_visited += len(batch)
            yield batch.with_column(self._output,
                                    NodeColumn(out_parents))


class Descendant(Operator):
    """Append each input node's descendants (optionally tag-filtered)."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 tag: str | None = None,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._tag = tag
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column

    def _rows(self) -> Iterator[Row]:
        structure = self._repository.structure
        tag_code = (None if self._tag is None
                    else self._repository.dictionary.code_of(self._tag))
        if self._tag is not None and tag_code is None:
            return
        for row in self._source:
            node = row[self._input]
            for descendant_id in structure.descendants_of(
                    node.node_id, tag_code):
                if self._stats is not None:
                    self._stats.nodes_visited += 1
                yield {**row, self._output: NodeItem(descendant_id)}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        return self._compat_batches(size)


def _concat_ranges(lo: np.ndarray, hi: np.ndarray,
                   total: int) -> np.ndarray:
    """Concatenate the integer ranges ``[lo[i], hi[i])`` vectorized."""
    counts = hi - lo
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(lo, counts) + (np.arange(total) - offsets)


class TextContent(Operator):
    """Pair element ids with their immediate text content.

    The row path implements it, as in the paper, as a hash join
    between the input ids and a ``ContScan`` of the text container;
    the batch path replaces the hash table with ``np.searchsorted``
    over the container's parent-id array sorted by parent (a
    vectorized index-nested-loop with the same output order).
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 container_path: str,
                 stats: EvaluationStats | None = None):
        self._source = source
        self._repository = repository
        self._input = input_column
        self._output = output_column
        self._container_path = container_path
        self._stats = stats
        self.input_column = input_column
        self.output_column = output_column
        self.container = repository.container(container_path)

    def _count_join(self) -> None:
        if self._stats is not None:
            self._stats.container_scans += 1
            self._stats.hash_joins += 1

    def _rows(self) -> Iterator[Row]:
        self._count_join()
        yield from self._join_rows(self._source)

    def _join_rows(self, source: Iterable[Row]) -> Iterator[Row]:
        container = self._repository.container(self._container_path)
        codec = container.codec
        value_type = container.value_type
        by_parent: dict[int, list[CompressedItem]] = {}
        for parent_id, compressed in container.scan():
            by_parent.setdefault(parent_id, []).append(
                CompressedItem(compressed, codec, value_type))
        for row in source:
            node = row[self._input]
            for item in by_parent.get(node.node_id, ()):
                yield {**row, self._output: item}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        container = self._repository.container(self._container_path)
        arrays = container.as_arrays()
        if arrays.records is None:  # blob: keep the hash-join path
            yield from batches_from_rows(self._rows(), size)
            return
        self._count_join()
        if runtime.ACTIVE is not None:  # mirrors the row path's scan()
            runtime.add("container.scans")
        if runtime.RECORDER is not None:
            runtime.RECORDER.record_access(container.path, "scans")
        # Stable sort by parent keeps each node's texts in value order,
        # exactly the order the hash join's scan built its buckets in.
        order = np.argsort(arrays.parent_ids, kind="stable")
        sorted_parents = arrays.parent_ids[order]
        for batch in _input_batches(self._source, size):
            batch = batch.compact()
            if not len(batch):
                continue
            column = batch.column(self._input)
            if isinstance(column, NodeColumn):
                ids = column.ids
            else:
                ids = np.fromiter(
                    (item.node_id for item in column.to_items()),
                    dtype=np.int64, count=len(batch))
            lo = np.searchsorted(sorted_parents, ids, side="left")
            hi = np.searchsorted(sorted_parents, ids, side="right")
            total = int((hi - lo).sum())
            if total == 0:
                continue
            source_rows = np.repeat(np.arange(len(ids)), hi - lo)
            slots = order[_concat_ranges(lo, hi, total)]
            yield batch.take(source_rows).with_column(
                self._output, ValueColumn(container, slots))


class AttributeContent(Operator):
    """Pair element ids with one attribute's compressed value."""

    INPUTS = ("_inner",)

    def __init__(self, source: Iterable[Row],
                 repository: CompressedRepository,
                 input_column: str, output_column: str,
                 container_path: str,
                 stats: EvaluationStats | None = None):
        self._inner = TextContent(source, repository, input_column,
                                  output_column, container_path, stats)

    def _rows(self) -> Iterator[Row]:
        return iter(self._inner)

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        return self._inner.batches(size)


# -- data combination operators --------------------------------------------------

class Select(Operator):
    """Filter rows by a Python predicate over the row.

    The predicate callable is opaque; the keyword-only metadata
    declares what it does so the plan verifier can check it statically:
    ``column`` names the (possibly compressed) column it tests,
    ``predicate_kind`` is the paper's capability kind (``"eq"``,
    ``"ineq"`` or ``"wild"``) when the test runs *in the compressed
    domain*, and ``references`` lists every column the predicate reads.

    ``interval`` optionally declares the predicate as a value interval
    ``(low, high, low_inclusive, high_inclusive)`` over ``column`` —
    the declaration the batch path compiles into a vectorized mask:
    when the column is a :class:`~repro.query.batch.ValueColumn`, the
    container's sortedness turns the interval into one slot range and
    the predicate into two array comparisons, with no per-row calls.
    The callable must implement exactly the declared interval (it
    remains the row path's, and any fallback's, source of truth).
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], predicate, *,
                 column: str | None = None,
                 predicate_kind: str | None = None,
                 references: tuple[str, ...] | None = None,
                 interval: tuple | None = None):
        self._source = source
        self._predicate = predicate
        self.column = column
        self.predicate_kind = predicate_kind
        self.references = tuple(references) if references is not None \
            else ((column,) if column is not None else None)
        self.interval = tuple(interval) if interval is not None else None
        self._bounds_cache: dict[int, tuple[int, int] | None] = {}

    def _rows(self) -> Iterator[Row]:
        predicate = self._predicate
        for row in self._source:
            if predicate(row):
                yield row

    def _vector_mask(self, batch: RecordBatch) -> np.ndarray | None:
        """Mask from the declared interval, or ``None`` to fall back."""
        if self.interval is None or self.column is None:
            return None
        try:
            column = batch.column(self.column)
        except KeyError:
            return None
        if not isinstance(column, ValueColumn):
            return None
        container = column.container
        key = id(container)
        if key not in self._bounds_cache:
            try:
                self._bounds_cache[key] = container.interval_positions(
                    *self.interval)
            except StorageError:
                self._bounds_cache[key] = None
        bounds = self._bounds_cache[key]
        if bounds is None:
            return None
        return column.interval_mask(*bounds)

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        predicate = self._predicate
        for batch in _input_batches(self._source, size):
            mask = self._vector_mask(batch)
            if mask is None:
                batch = batch.compact()
                mask = np.empty(len(batch), dtype=bool)
                for i, row in enumerate(batch.to_rows()):
                    mask[i] = bool(predicate(row))
            out = batch.filter(mask)
            if len(out):
                yield out


class Project(Operator):
    """Keep only the named columns."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], columns: list[str]):
        self._source = source
        self._columns = columns
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        columns = self._columns
        for row in self._source:
            yield {c: row[c] for c in columns}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        for batch in _input_batches(self._source, size):
            yield batch.project(self._columns)


class HashJoin(Operator):
    """Equi-join on key functions; builds on the right input.

    Output order follows the probe (left) input.  ``left_column`` /
    ``right_column`` optionally name the key columns so the verifier
    can check that a compressed-domain join compares values from one
    compressed domain (same source model).
    """

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 left_key, right_key,
                 stats: EvaluationStats | None = None, *,
                 left_column: str | None = None,
                 right_column: str | None = None):
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._stats = stats
        self.left_column = left_column
        self.right_column = right_column

    def _rows(self) -> Iterator[Row]:
        if self._stats is not None:
            self._stats.hash_joins += 1
        index: dict = {}
        for row in self._right:
            index.setdefault(self._right_key(row), []).append(row)
        for row in self._left:
            for match in index.get(self._left_key(row), ()):
                yield {**row, **match}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        if self._stats is not None:
            self._stats.hash_joins += 1
        index: dict = {}
        for row in rows_of_batches(_input_batches(self._right, size)):
            index.setdefault(self._right_key(row), []).append(row)
        chunk: list[Row] = []
        for batch in _input_batches(self._left, size):
            for row in batch.to_rows():
                for match in index.get(self._left_key(row), ()):
                    chunk.append({**row, **match})
                    if len(chunk) >= size:
                        yield RecordBatch.from_rows(chunk)
                        chunk = []
        if chunk:
            yield RecordBatch.from_rows(chunk)


class _BatchCursor:
    """Streaming cursor over one merge-join input.

    Holds exactly one (compacted) batch plus its key array at a time;
    equal-key *runs* are located with ``np.searchsorted`` and may span
    batch boundaries, in which case only the run is buffered.
    """

    def __init__(self, batches: Iterator[RecordBatch], key):
        self._batches = batches
        self._key = key
        self._batch: RecordBatch | None = None
        self._keys: np.ndarray | None = None
        self._pos = 0

    def _fetch(self) -> bool:
        for batch in self._batches:
            batch = batch.compact()
            if not len(batch):
                continue
            keys = np.empty(len(batch), dtype=object)
            key = self._key
            for i, row in enumerate(batch.to_rows()):
                keys[i] = key(row)
            self._batch = batch
            self._keys = keys
            self._pos = 0
            return True
        self._batch = None
        self._keys = None
        return False

    def ensure(self) -> bool:
        """True when a current row exists (fetching as needed)."""
        if self._keys is not None and self._pos < len(self._keys):
            return True
        return self._fetch()

    def current_key(self):
        assert self._keys is not None
        return self._keys[self._pos]

    def skip_below(self, key) -> None:
        """Drop rows with keys ``< key`` from the current batch."""
        assert self._keys is not None
        self._pos += int(np.searchsorted(self._keys[self._pos:], key,
                                         side="left"))

    def take_run(self) -> RecordBatch:
        """Consume the current equal-key run (may span batches)."""
        assert self._keys is not None
        run_key = self._keys[self._pos]
        parts = []
        while True:
            end = self._pos + int(np.searchsorted(
                self._keys[self._pos:], run_key, side="right"))
            parts.append(self._batch.slice(self._pos, end))
            self._pos = end
            if self._pos < len(self._keys):
                break
            if not self._fetch():
                break
            if not (self._keys[0] == run_key):
                break
        return parts[0] if len(parts) == 1 else RecordBatch.concat(parts)


class MergeJoin(Operator):
    """1-pass merge join over inputs already sorted on their keys.

    The order-preserving container scans make this the paper's operator
    of choice for value joins (§4): no sort is needed — but *only* when
    both inputs really arrive sorted on their keys.  Declare the key
    columns via ``left_column``/``right_column`` and the plan verifier
    proves (or refutes) that order statically.

    Both paths stream: the batch path buffers one batch per side (plus
    the current equal-key run), the row path materializes only the
    build (right) side and streams the probe.
    """

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 left_key, right_key, *,
                 left_column: str | None = None,
                 right_column: str | None = None):
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self.left_column = left_column
        self.right_column = right_column

    def _rows(self) -> Iterator[Row]:
        right_rows = list(self._right)
        right_keys = [self._right_key(row) for row in right_rows]
        count = len(right_rows)
        j = 0
        for left_row in self._left:  # probe side streams
            left_key = self._left_key(left_row)
            while j < count and right_keys[j] < left_key:
                j += 1
            # j parks at the first key >= left_key; equal left keys in
            # a row re-emit the same right run from here.
            k = j
            while k < count and right_keys[k] == left_key:
                yield {**left_row, **right_rows[k]}
                k += 1

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        left = _BatchCursor(_input_batches(self._left, size),
                            self._left_key)
        right = _BatchCursor(_input_batches(self._right, size),
                             self._right_key)
        while left.ensure() and right.ensure():
            left_key = left.current_key()
            right_key = right.current_key()
            if left_key < right_key:
                left.skip_below(right_key)
            elif right_key < left_key:
                right.skip_below(left_key)
            else:
                left_run = left.take_run()
                right_run = right.take_run()
                n_left = len(left_run)
                n_right = len(right_run)
                out = left_run.take(
                    np.repeat(np.arange(n_left), n_right)).merged_with(
                    right_run.take(np.tile(np.arange(n_right), n_left)))
                for start in range(0, n_left * n_right, size):
                    yield out.slice(start, start + size)


class NestedLoopJoin(Operator):
    """Theta-join by nested iteration (the baseline engines' only join)."""

    INPUTS = ("_left", "_right")

    def __init__(self, left: Iterable[Row], right: Iterable[Row],
                 condition, *,
                 references: tuple[str, ...] | None = None):
        self._left = left
        self._right = right
        self._condition = condition
        self.references = tuple(references) if references is not None \
            else None

    def _rows(self) -> Iterator[Row]:
        right_rows = list(self._right)
        for left_row in self._left:
            for right_row in right_rows:
                if self._condition(left_row, right_row):
                    yield {**left_row, **right_row}

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        return self._compat_batches(size)


class Distinct(Operator):
    """Drop duplicate rows (by a key function)."""

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], key, *,
                 columns: tuple[str, ...] | None = None):
        self._source = source
        self._key = key
        self.columns = tuple(columns) if columns is not None else None

    def _rows(self) -> Iterator[Row]:
        seen: set = set()
        for row in self._source:
            key = self._key(row)
            if key not in seen:
                seen.add(key)
                yield row

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        seen: set = set()
        key_of = self._key
        for batch in _input_batches(self._source, size):
            batch = batch.compact()
            if not len(batch):
                continue
            mask = np.empty(len(batch), dtype=bool)
            for i, row in enumerate(batch.to_rows()):
                key = key_of(row)
                if key in seen:
                    mask[i] = False
                else:
                    seen.add(key)
                    mask[i] = True
            out = batch.filter(mask)
            if len(out):
                yield out


class Sort(Operator):
    """Sort rows by a key function (needed only when order was lost).

    ``columns`` optionally declares which columns the key reads, in
    significance order — downstream order-dependent operators
    (``MergeJoin``) are then statically known to be safe.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], key, reverse: bool = False,
                 *, columns: tuple[str, ...] | None = None):
        self._source = source
        self._key = key
        self._reverse = reverse
        self.columns = tuple(columns) if columns is not None else None

    def _rows(self) -> Iterator[Row]:
        yield from sorted(self._source, key=self._key,
                          reverse=self._reverse)

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        ordered = sorted(
            rows_of_batches(_input_batches(self._source, size)),
            key=self._key, reverse=self._reverse)
        return batches_from_rows(iter(ordered), size)


# -- compression / decompression operators -------------------------------------

class Decompress(Operator):
    """Replace a compressed column with its decoded string value.

    In the paper's plans (Figure 5) this sits at the very top: values
    stay compressed through selections and joins, and only the final
    results are decompressed — exactly once per value (the plan
    verifier's missing/duplicate-Decompress rule).
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row], columns: list[str],
                 stats: EvaluationStats):
        self._source = source
        self._columns = columns
        self._stats = stats
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        for row in self._source:
            out = dict(row)
            for column in self._columns:
                item = out.get(column)
                if isinstance(item, CompressedItem):
                    out[column] = item.decode(self._stats)
            yield out

    def _decoded_column(self, column):
        stats = self._stats
        if isinstance(column, ValueColumn):
            return ItemColumn([item.decode(stats)
                               for item in column.to_items()])
        if isinstance(column, ItemColumn):
            return ItemColumn([
                item.decode(stats) if isinstance(item, CompressedItem)
                else item for item in column.to_items()])
        return column  # NodeColumn: nothing compressed to decode

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        targets = self._columns
        for batch in _input_batches(self._source, size):
            batch = batch.compact()
            columns = batch.columns()
            for name in targets:
                if name in columns:
                    columns[name] = self._decoded_column(columns[name])
            yield RecordBatch(columns, batch.raw_length)


class XMLSerialize(Operator):
    """Render value columns of each row as plain strings (plan sink).

    The topmost operator of the paper's plans: by the time rows reach
    serialization every value must have passed through ``Decompress``
    exactly once.  The invariant is enforced statically by the plan
    verifier and dynamically here — a :class:`CompressedItem` reaching
    serialization raises :class:`~repro.errors.QueryTypeError` instead
    of silently emitting compressed bytes.
    """

    INPUTS = ("_source",)

    def __init__(self, source: Iterable[Row],
                 columns: list[str] | tuple[str, ...]):
        self._source = source
        self.columns = tuple(columns)

    def _rows(self) -> Iterator[Row]:
        from repro.errors import QueryTypeError
        for row in self._source:
            out = dict(row)
            for column in self.columns:
                item = out.get(column)
                if isinstance(item, CompressedItem):
                    raise QueryTypeError(
                        f"column {column!r} reached XMLSerialize still "
                        "compressed; plans must Decompress every "
                        "serialized value exactly once")
                if not isinstance(item, str):
                    out[column] = str(item)
            yield out

    def _batches(self, size: int) -> Iterator[RecordBatch]:
        from repro.errors import QueryTypeError
        for batch in _input_batches(self._source, size):
            batch = batch.compact()
            for name in self.columns:
                try:
                    column = batch.column(name)
                except KeyError:
                    continue
                if isinstance(column, ValueColumn):
                    raise QueryTypeError(
                        f"column {name!r} reached XMLSerialize still "
                        "compressed; plans must Decompress every "
                        "serialized value exactly once")
            rows = list(self._serialized(batch.to_rows()))
            if rows:
                yield RecordBatch.from_rows(rows)

    def _serialized(self, rows: Iterable[Row]) -> Iterator[Row]:
        from repro.errors import QueryTypeError
        for row in rows:
            out = dict(row)
            for column in self.columns:
                item = out.get(column)
                if isinstance(item, CompressedItem):
                    raise QueryTypeError(
                        f"column {column!r} reached XMLSerialize still "
                        "compressed; plans must Decompress every "
                        "serialized value exactly once")
                if not isinstance(item, str):
                    out[column] = str(item)
            yield out


class CompressConstant:
    """Compress a query constant once with a container's source model.

    Not an iterator — a helper the optimizer uses to push a comparison
    into the compressed domain (one encode instead of N decodes).
    """

    def __init__(self, repository: CompressedRepository, path: str):
        self._codec = repository.container(path).codec

    def encode(self, constant: str):
        return self._codec.try_encode(constant)

"""Plan explanation: which strategies the engine will apply.

``explain(query)`` performs the same static analysis the evaluator
does — summary-resolvable sources, RangePlan / FullTextPlan access
paths, hash-joinable conjuncts, order-by — and renders it as an
indented plan sketch.  Useful for understanding why a query is (or is
not) evaluated in the compressed domain.
"""

from __future__ import annotations

from repro.query.ast import (
    Comparison,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    PathExpr,
)
from repro.query.optimizer import (
    find_fulltext_plan,
    find_join_plan,
    find_range_plan,
    flatten_conjuncts,
    free_vars,
    is_absolute_simple_path,
)
from repro.query.parser import parse_query


def explain(query: str | Expression) -> str:
    """Render the evaluation strategy of a query as text."""
    ast = parse_query(query) if isinstance(query, str) else query
    lines: list[str] = []
    _explain(ast, lines, 0, set())
    return "\n".join(lines)


def _emit(lines: list[str], depth: int, text: str) -> None:
    lines.append("  " * depth + text)


def _explain(expr: Expression, lines: list[str], depth: int,
             bound: set[str]) -> None:
    if isinstance(expr, FLWOR):
        _explain_flwor(expr, lines, depth, bound)
    elif isinstance(expr, PathExpr):
        if expr.start is None:
            if is_absolute_simple_path(expr):
                _emit(lines, depth,
                      f"StructureSummaryAccess {_path_text(expr)}")
            else:
                _emit(lines, depth,
                      f"navigate {_path_text(expr)} (predicates "
                      "force per-step evaluation)")
        else:
            _emit(lines, depth, f"navigate {_path_text(expr)}")
    elif isinstance(expr, ElementConstructor):
        _emit(lines, depth, f"construct <{expr.name}> "
                            "(Decompress + XMLSerialize)")
        for content in expr.content:
            _explain(content, lines, depth + 1, bound)
    elif isinstance(expr, FunctionCall):
        _emit(lines, depth, f"{expr.name}(...)")
        for arg in expr.args:
            if isinstance(arg, (FLWOR, PathExpr)):
                _explain(arg, lines, depth + 1, bound)
    elif isinstance(expr, Comparison):
        _emit(lines, depth, f"compare {expr.op}")


def _explain_flwor(expr: FLWOR, lines: list[str], depth: int,
                   bound: set[str]) -> None:
    conjuncts = flatten_conjuncts(expr.where)
    inner_bound = set(bound)
    for clause in expr.clauses:
        if isinstance(clause, LetClause):
            _emit(lines, depth, f"let ${clause.var} :=")
            _explain(clause.source, lines, depth + 1, inner_bound)
            inner_bound.add(clause.var)
            continue
        assert isinstance(clause, ForClause)
        _emit(lines, depth, f"for ${clause.var} in")
        _explain(clause.source, lines, depth + 1, inner_bound)
        decidable = [c for c in conjuncts
                     if free_vars(c) <= inner_bound | {clause.var}]
        for conjunct in decidable:
            join = find_join_plan(conjunct, clause.var, inner_bound)
            if join is not None:
                _emit(lines, depth + 1,
                      "HashJoin (build side cacheable, probe on "
                      f"bound vars {sorted(free_vars(join.probe_expr))})")
                continue
            if free_vars(conjunct) == {clause.var}:
                range_plan = find_range_plan(conjunct, clause.var)
                if range_plan is not None:
                    _emit(lines, depth + 1,
                          f"ContAccess interval [{range_plan.low!r}, "
                          f"{range_plan.high!r}] + Parent^"
                          f"{range_plan.ascend}")
                    continue
                ft_plan = find_fulltext_plan(conjunct, clause.var)
                if ft_plan is not None:
                    _emit(lines, depth + 1,
                          "FullTextIndex lookup "
                          f"{list(ft_plan.words)} + Parent^"
                          f"{ft_plan.ascend}")
                    continue
            _emit(lines, depth + 1,
                  "Select (evaluated per binding, compressed "
                  "comparison when codecs allow)")
        conjuncts = [c for c in conjuncts if c not in decidable]
        inner_bound.add(clause.var)
    for spec in expr.order:
        direction = "descending" if spec.descending else "ascending"
        _emit(lines, depth, f"order by ({direction})")
    _emit(lines, depth, "return")
    _explain(expr.result, lines, depth + 1, inner_bound)


def _path_text(expr: PathExpr) -> str:
    parts: list[str] = []
    if expr.start is not None:
        parts.append("$ctx" if not hasattr(expr.start, "name")
                     else f"${expr.start.name}")
    for step in expr.steps:
        separator = "//" if step.axis == "descendant" else "/"
        if step.axis == "attribute":
            parts.append(f"/@{step.test}")
        else:
            parts.append(f"{separator}{step.test}")
    return "".join(parts)

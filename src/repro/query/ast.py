"""Abstract syntax tree for the supported XQuery subset.

The subset covers what the paper's experiments exercise (§5 and DESIGN
§6): FLWOR expressions, path expressions with ``/`` and ``//`` axes,
attribute and ``text()`` steps, step predicates, general comparisons,
logic, arithmetic, aggregate/string functions, and direct element
constructors with embedded expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expression:
    """Base class for all AST nodes."""

    __slots__ = ()


# -- literals and references -----------------------------------------------

@dataclass(frozen=True, slots=True)
class StringLiteral(Expression):
    value: str


@dataclass(frozen=True, slots=True)
class NumberLiteral(Expression):
    value: float


@dataclass(frozen=True, slots=True)
class VarRef(Expression):
    """``$name``."""

    name: str


@dataclass(frozen=True, slots=True)
class ContextItem(Expression):
    """The implicit context node inside a step predicate."""


# -- paths -------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Step:
    """One path step.

    ``axis``: ``child`` | ``descendant`` | ``attribute``;
    ``test``: an element name, ``*``, or ``text()``;
    ``predicates``: the ``[...]`` filters on this step.
    """

    axis: str
    test: str
    predicates: tuple[Expression, ...] = ()


@dataclass(frozen=True, slots=True)
class PathExpr(Expression):
    """A path: a start expression plus navigation steps.

    ``start`` is ``None`` for absolute paths (``document(...)/...`` or a
    leading ``/``); otherwise the expression (usually a
    :class:`VarRef`) providing the context nodes.  ``document`` carries
    the ``document("...")`` argument for absolute paths, so engines
    holding a collection can dispatch to the right document (a bare
    leading ``/`` leaves it ``None`` — the default document).
    """

    start: Expression | None
    steps: tuple[Step, ...]
    document: str | None = None


# -- operators ----------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Comparison(Expression):
    """General comparison: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Logical(Expression):
    """``and`` / ``or``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Arithmetic(Expression):
    """``+``, ``-``, ``*``, ``div``, ``mod``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """Built-in function application (``count``, ``contains``, ...)."""

    name: str
    args: tuple[Expression, ...]


# -- FLWOR ---------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ForClause:
    var: str
    source: Expression


@dataclass(frozen=True, slots=True)
class LetClause:
    var: str
    source: Expression


@dataclass(frozen=True, slots=True)
class OrderSpec:
    """One ``order by`` key with its direction."""

    key: Expression
    descending: bool = False


@dataclass(frozen=True, slots=True)
class FLWOR(Expression):
    """``for``/``let`` clauses, optional ``where``/``order by``, and
    ``return``."""

    clauses: tuple[ForClause | LetClause, ...]
    where: Expression | None
    result: Expression
    order: tuple[OrderSpec, ...] = ()


# -- constructors -----------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ElementConstructor(Expression):
    """Direct element constructor ``<name attr=...>content</name>``.

    Attribute values and content items may be literal text or embedded
    expressions.
    """

    name: str
    attributes: tuple[tuple[str, tuple[Expression, ...]], ...] = ()
    content: tuple[Expression, ...] = ()


@dataclass(frozen=True, slots=True)
class TextLiteral(Expression):
    """Literal text inside a constructor."""

    value: str


@dataclass(frozen=True, slots=True)
class SequenceExpr(Expression):
    """Comma sequence ``(e1, e2, ...)``."""

    items: tuple[Expression, ...] = field(default=())

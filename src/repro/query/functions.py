"""Built-in functions of the supported XQuery subset.

Each function receives already-evaluated argument sequences plus the
engine's :class:`~repro.query.context.EvaluationStats`.  ``contains``
and ``starts-with`` get compressed-domain fast paths: ``starts-with``
is exactly the paper's prefix-``wild`` predicate, answerable on
Huffman-compressed values without decompression.
"""

from __future__ import annotations

from repro.errors import QueryTypeError
from repro.query.context import (
    CompressedItem,
    EvaluationStats,
    effective_boolean,
    number_value,
    string_value,
)


def fn_contains(args: list[list], stats: EvaluationStats) -> list:
    haystack, needle = _two_string_args("contains", args, stats)
    return [needle in haystack]


def fn_starts_with(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("starts-with", args, 2)
    sequence, prefix_seq = args
    prefix_item = prefix_seq[0] if prefix_seq else ""
    if not sequence:
        # Empty sequence has string value "": only the empty prefix
        # matches (mirrors the decompress-first reference).
        prefix = (prefix_item if isinstance(prefix_item, str)
                  else string_value(prefix_item, stats))
        return [prefix == ""]
    item = sequence[0]
    # Compressed-domain prefix match (the ``wild`` property): the code
    # of a string prefix is a bit-prefix of the full string's code.
    if isinstance(item, CompressedItem) and isinstance(prefix_item, str) \
            and item.codec.properties.wild:
        encoded = item.codec.try_encode(prefix_item)
        stats.compressed_comparisons += 1
        if encoded is None:
            return [False]
        return [item.compressed.starts_with(encoded)]
    haystack = string_value(item, stats)
    prefix = (string_value(prefix_item, stats)
              if not isinstance(prefix_item, str) else prefix_item)
    return [haystack.startswith(prefix)]


def fn_word_contains(args: list[list], stats: EvaluationStats) -> list:
    """Whole-word containment — the §6 full-text extension.

    ``word-contains($x, "gold")`` is true when some tokenized word of
    the value equals the needle (case-insensitive); a multi-word
    needle requires all its words.
    """
    from repro.query.fulltext import tokenize
    _require_arity("word-contains", args, 2)
    needle = (string_value(args[1][0], stats) if args[1] else "")
    wanted = tokenize(needle)
    if not wanted:
        return [False]
    # Existential over the sequence: some value holds all the words.
    for item in args[0]:
        words = set(tokenize(string_value(item, stats)))
        if all(w in words for w in wanted):
            return [True]
    return [False]


def fn_count(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("count", args, 1)
    return [float(len(args[0]))]


def fn_empty(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("empty", args, 1)
    return [not args[0]]


def fn_not(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("not", args, 1)
    return [not effective_boolean(args[0])]


def fn_sum(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("sum", args, 1)
    return [sum(number_value(item, stats) for item in args[0])]


def fn_avg(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("avg", args, 1)
    if not args[0]:
        return []
    values = [number_value(item, stats) for item in args[0]]
    return [sum(values) / len(values)]


def fn_min(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("min", args, 1)
    if not args[0]:
        return []
    return [min(number_value(item, stats) for item in args[0])]


def fn_max(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("max", args, 1)
    if not args[0]:
        return []
    return [max(number_value(item, stats) for item in args[0])]


def fn_number(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("number", args, 1)
    if not args[0]:
        return []
    return [number_value(args[0][0], stats)]


def fn_string(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("string", args, 1)
    if not args[0]:
        return [""]
    return [string_value(args[0][0], stats)]


def fn_string_length(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("string-length", args, 1)
    if not args[0]:
        return [0.0]
    return [float(len(string_value(args[0][0], stats)))]


def fn_zero_or_one(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("zero-or-one", args, 1)
    if len(args[0]) > 1:
        raise QueryTypeError("zero-or-one() got more than one item")
    return list(args[0])


def fn_data(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("data", args, 1)
    return list(args[0])


def fn_distinct_values(args: list[list], stats: EvaluationStats) -> list:
    _require_arity("distinct-values", args, 1)
    items = args[0]
    # Compressed fast path: when every item comes from one source
    # model, bit-equality is value-equality and nothing decodes.  A
    # sequence mixing codecs — or mixing compressed and plain items —
    # must dedupe on the decoded value: the same string reached through
    # two containers (or as a literal) is one distinct value.
    shared_codec = None
    all_compressed = True
    for item in items:
        if isinstance(item, CompressedItem):
            if shared_codec is None:
                shared_codec = item.codec
            elif item.codec is not shared_codec:
                all_compressed = False
                break
        else:
            all_compressed = False
            break
    seen: set = set()
    result: list = []
    for item in items:
        if isinstance(item, CompressedItem):
            key = (item.compressed if all_compressed
                   else item.decode(stats))
        else:
            key = item
        if key not in seen:
            seen.add(key)
            result.append(item)
    return result


FUNCTIONS = {
    "contains": fn_contains,
    "starts-with": fn_starts_with,
    "word-contains": fn_word_contains,
    "count": fn_count,
    "empty": fn_empty,
    "not": fn_not,
    "sum": fn_sum,
    "avg": fn_avg,
    "min": fn_min,
    "max": fn_max,
    "number": fn_number,
    "string": fn_string,
    "string-length": fn_string_length,
    "zero-or-one": fn_zero_or_one,
    "data": fn_data,
    "distinct-values": fn_distinct_values,
}


def _two_string_args(name: str, args: list[list],
                     stats: EvaluationStats) -> tuple[str, str]:
    _require_arity(name, args, 2)
    first = string_value(args[0][0], stats) if args[0] else ""
    second = string_value(args[1][0], stats) if args[1] else ""
    return first, second


def _require_arity(name: str, args: list[list], arity: int) -> None:
    if len(args) != arity:
        raise QueryTypeError(
            f"{name}() expects {arity} argument(s), got {len(args)}")

"""``EXPLAIN ANALYZE``: the static plan annotated with what really ran.

:func:`explain_analyze` executes the query with telemetry enabled,
then re-renders the :func:`repro.query.explain.explain` sketch with the
*actual* per-operator counts and wall times, followed by the full
operator/counter profile and the compressed-vs-decompressed ratios
that quantify the paper's §5–6 claim (predicates run compressed,
decompression is deferred to serialization).

Plan-line annotations carry the run's aggregate for that operator
class — the counters shown are exactly the
:class:`~repro.query.context.EvaluationStats` totals of the same run
(they share one :class:`~repro.obs.metrics.MetricsRegistry`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.ast import Expression
from repro.query.explain import explain


@dataclass
class AnalyzeReport:
    """The rendered report plus the run it describes."""

    text: str
    result: "QueryResult"
    telemetry: Telemetry

    def to_json(self, indent: int | None = None) -> str:
        """The run's telemetry document as JSON."""
        return self.telemetry.to_json(indent=indent)

    def __str__(self) -> str:
        return self.text


#: plan-line keyword -> (EvaluationStats counter, span histogram name).
_LINE_METRICS = (
    ("ContAccess interval", "container_accesses", "span.ContAccess"),
    ("FullTextIndex lookup", "container_accesses",
     "span.FullTextAccess"),
    ("HashJoin", "hash_joins", "span.HashJoin.build"),
    ("StructureSummaryAccess", "summary_accesses",
     "span.StructureSummaryAccess"),
)


def explain_analyze(query: str | Expression, target,
                    options=None) -> AnalyzeReport:
    """Run ``query`` against ``target`` and render plan + actuals.

    ``target`` is a :class:`~repro.query.engine.QueryEngine` or a bare
    :class:`~repro.storage.repository.CompressedRepository`.  The query
    runs to full materialization, so the report includes the final
    Decompress step the paper defers to serialization.  ``options``
    (an :class:`~repro.query.options.ExecutionOptions`) carries extra
    run knobs — ``profile=`` adds the sampling profiler's "hot spans"
    section to the report.
    """
    from dataclasses import replace

    from repro.query.engine import QueryEngine
    from repro.query.options import ExecutionOptions
    engine = target if isinstance(target, QueryEngine) \
        else QueryEngine(target)
    telemetry = Telemetry(enabled=True)
    options = options if options is not None else ExecutionOptions()
    options = replace(options, telemetry=telemetry)
    with runtime.activated(telemetry):
        result = engine.execute(query, options)
        items = result.items  # force the Decompress step under telemetry
    sketch = explain(query)
    text = _render(sketch, result, telemetry, len(items), engine)
    return AnalyzeReport(text, result, telemetry)


def _render(sketch: str, result, telemetry: Telemetry,
            item_count: int, engine=None) -> str:
    metrics = telemetry.metrics
    # A summaries snapshot, so lookups never create empty histograms.
    histograms = metrics.histograms()
    wall_ns = int(histograms.get("span.Execute", {}).get("total", 0))
    lines = [f"EXPLAIN ANALYZE  (wall {wall_ns} ns, "
             f"{item_count} items)"]
    for line in sketch.splitlines():
        lines.append(_annotate(line, result.stats, histograms))
    lines.append("")
    lines.extend(_operator_table(telemetry))
    lines.append("")
    lines.extend(_counter_section(result.stats))
    lines.append("")
    lines.extend(_compression_section(result.stats, metrics))
    if telemetry.profile is not None:
        lines.append("")
        lines.extend(_hot_spans_section(telemetry))
    if telemetry.diagnostics:
        lines.append("")
        lines.extend(_diagnostics_section(telemetry))
    drift = _workload_drift_section(engine)
    if drift:
        lines.append("")
        lines.extend(drift)
    return "\n".join(lines)


def _workload_drift_section(engine) -> list[str]:
    """Observatory summary, when the engine records its workload.

    Folds the engine's journal (including the run just analyzed)
    through the advisor and condenses the verdict: how far the live
    configuration has drifted from what the observed workload wants,
    and the top recompression moves.
    """
    recorder = getattr(engine, "recorder", None)
    if recorder is None or not recorder.enabled:
        return []
    from repro.advisor import analyze_drift
    report = analyze_drift(engine.repository,
                           recorder.journal.records())
    out = ["-- workload drift (observatory) --"]
    out.append(f"journal records: {report.record_count} "
               f"({sum(report.predicate_totals.values())} observed "
               "predicates)")
    if report.live_breakdown:
        out.append(f"cost: live {report.live_breakdown['total']:.1f} "
                   f"vs recommended "
                   f"{report.recommended_breakdown['total']:.1f} "
                   f"(drift {report.drift_total:.1f})")
    if report.recommendations:
        for rec in report.recommendations[:3]:
            out.append(f"recompress {rec.path}: {rec.current} -> "
                       f"{rec.recommended} "
                       f"(est. saving {rec.saving_total:.1f})")
    else:
        out.append("no recompression recommended")
    return out


def _hot_spans_section(telemetry: Telemetry) -> list[str]:
    """Where the CPU went inside the spans (sampling profiler).

    Span histograms say how long an operator ran; the profile says
    which spans the interpreter was actually *executing in* when
    sampled — self shares sum to at most 100 %.
    """
    out = ["-- hot spans (sampling profiler) --"]
    out.extend(telemetry.profile.render_text(top=8).splitlines())
    return out


def _diagnostics_section(telemetry: Telemetry) -> list[str]:
    out = ["-- plan diagnostics (static verifier) --"]
    for diagnostic in telemetry.diagnostics:
        out.append(diagnostic.format())
    return out


def _annotate(line: str, stats, histograms: dict) -> str:
    for keyword, counter_name, span_name in _LINE_METRICS:
        if keyword in line:
            count = getattr(stats, counter_name)
            total_ns = int(histograms.get(span_name,
                                          {}).get("total", 0))
            return (f"{line}  [actual {counter_name}={count}, "
                    f"{total_ns} ns]")
    return line


def _operator_table(telemetry: Telemetry) -> list[str]:
    profile = telemetry.operator_profile()
    if not profile:
        return ["-- operators: none traced --"]
    headers = ("operator", "calls", "total_ns", "p50_ns", "p95_ns",
               "max_ns")
    rows = [(name, s["count"], int(s["total"]), int(s["p50"]),
             int(s["p95"]), int(s["max"]))
            for name, s in sorted(profile.items())]
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = ["-- operators --"]
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return out


def _counter_section(stats) -> list[str]:
    out = ["-- counters (== QueryResult.stats) --"]
    width = max(len(name) for name in stats.FIELDS)
    for name in stats.FIELDS:
        out.append(f"{name.ljust(width)}  {getattr(stats, name)}")
    return out


def _compression_section(stats, metrics) -> list[str]:
    out = ["-- compressed vs decompressed --"]
    comparisons = stats.compressed_comparisons \
        + stats.decompressed_comparisons
    if comparisons:
        share = 100.0 * stats.compressed_comparisons / comparisons
        out.append(f"comparisons: {stats.compressed_comparisons} "
                   f"compressed / {stats.decompressed_comparisons} "
                   f"decompressed ({share:.1f}% stayed compressed)")
    else:
        out.append("comparisons: none")
    counters = metrics.counters()
    codec_names = sorted({name.split(".")[1] for name in counters
                          if name.startswith("codec.")})
    for codec in codec_names:
        for op in ("encode", "decode"):
            calls = counters.get(f"codec.{codec}.{op}.calls", 0)
            if not calls:
                continue
            packed = counters.get(
                f"codec.{codec}.{op}.compressed_bytes", 0)
            plain = counters.get(f"codec.{codec}.{op}.plain_chars", 0)
            ratio = f"{packed / plain:.2f}" if plain else "n/a"
            out.append(f"codec {codec}: {op} {calls} calls, "
                       f"{packed} B compressed <-> {plain} chars "
                       f"(ratio {ratio})")
    if len(out) == 2 and not codec_names:
        out.append("codecs: no encode/decode activity recorded")
    return out

"""The query data model: items, atomization, compressed comparison.

Items flowing through the engine are:

* :class:`NodeItem` — an element node of the compressed repository;
* :class:`CompressedItem` — a text or attribute value still in its
  compressed form (the whole point: predicates evaluate on these
  without decompressing);
* plain Python ``str``/``float``/``bool`` — computed atomics;
* :class:`repro.xmlio.dom.Element` — constructed results.

:class:`EvaluationStats` counts decompressions and operator activity;
the compressed-domain comparison helpers charge it only when they must
leave the compressed domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import Codec, CompressedValue
from repro.errors import QueryTypeError
from repro.xmlio.dom import Element


@dataclass
class EvaluationStats:
    """Counters exposed by :class:`repro.query.engine.QueryResult`."""

    decompressions: int = 0
    compressed_comparisons: int = 0
    decompressed_comparisons: int = 0
    container_scans: int = 0
    container_accesses: int = 0
    summary_accesses: int = 0
    hash_joins: int = 0
    nodes_visited: int = 0


@dataclass(frozen=True, slots=True)
class NodeItem:
    """An element node, by id, within one repository.

    ``doc`` names the document for engines evaluating over a
    collection (``document("name")/...``); ``None`` is the default
    document.
    """

    node_id: int
    doc: str | None = None


class CompressedItem:
    """A container value, compared in the compressed domain when legal."""

    __slots__ = ("compressed", "codec", "value_type", "_decoded")

    def __init__(self, compressed: CompressedValue, codec: Codec,
                 value_type: str = "string"):
        self.compressed = compressed
        self.codec = codec
        self.value_type = value_type
        self._decoded: str | None = None

    def decode(self, stats: EvaluationStats | None = None) -> str:
        """Decompress (memoised); charges ``stats.decompressions``."""
        if self._decoded is None:
            if stats is not None:
                stats.decompressions += 1
            self._decoded = self.codec.decode(self.compressed)
        return self._decoded

    def __repr__(self) -> str:
        return f"<CompressedItem bits={self.compressed.bits}>"


def compare_items(op: str, left, right, stats: EvaluationStats) -> bool:
    """Compare two atomic items, staying compressed when possible.

    The compressed fast paths mirror §2.1: equality under any shared
    source model with ``eq``; inequality only under an order-preserving
    codec (``ineq``).  Everything else decompresses (and is charged).
    """
    if isinstance(left, CompressedItem) and \
            isinstance(right, CompressedItem) and \
            left.codec is right.codec:
        properties = left.codec.properties
        if op in ("=", "!=") and properties.eq:
            stats.compressed_comparisons += 1
            equal = left.compressed == right.compressed
            return equal if op == "=" else not equal
        if op in ("<", "<=", ">", ">=") and properties.ineq:
            stats.compressed_comparisons += 1
            return _ordered(op, left.compressed, right.compressed)
    if isinstance(left, CompressedItem) and \
            isinstance(right, (str, float, int)) and \
            not isinstance(right, bool):
        swapped = _compare_compressed_constant(op, left, right, stats)
        if swapped is not None:
            return swapped
    if isinstance(right, CompressedItem) and \
            isinstance(left, (str, float, int)) and \
            not isinstance(left, bool):
        flipped = _compare_compressed_constant(
            _flip(op), right, left, stats)
        if flipped is not None:
            return flipped
    return _compare_decoded(op, left, right, stats)


def _compare_compressed_constant(op: str, item: CompressedItem,
                                 constant, stats: EvaluationStats
                                 ) -> bool | None:
    """``item <op> constant`` without decompressing, or ``None``.

    The constant is compressed with the item's source model — the
    direction XQueC always prefers: one encode beats N decodes.
    """
    properties = item.codec.properties
    if isinstance(constant, (int, float)) and item.value_type == "string":
        # Numeric comparison of untyped text: must decode.
        return None
    text = _constant_text(constant, item.value_type)
    if text is None:
        return None
    if op in ("=", "!=") and properties.eq:
        encoded = item.codec.try_encode(text)
        stats.compressed_comparisons += 1
        if encoded is None:
            # Out-of-model constants can never equal a container value.
            return op == "!="
        equal = item.compressed == encoded
        return equal if op == "=" else not equal
    if op in ("<", "<=", ">", ">=") and properties.ineq:
        encoded = item.codec.try_encode(text)
        if encoded is None:
            return None
        stats.compressed_comparisons += 1
        return _ordered(op, item.compressed, encoded)
    return None


def _constant_text(constant, value_type: str) -> str | None:
    """Render a constant into the container's canonical text form."""
    if isinstance(constant, str):
        return constant
    if value_type == "int":
        if float(constant).is_integer():
            return str(int(constant))
        return None  # e.g. 10.5 against an int container
    if value_type == "float":
        return repr(float(constant))
    return str(constant)


def _ordered(op: str, a, b) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return not b < a
    if op == ">":
        return b < a
    return not a < b  # >=


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[op]


def _compare_decoded(op: str, left, right,
                     stats: EvaluationStats) -> bool:
    stats.decompressed_comparisons += 1
    lv = _to_python(left, stats)
    rv = _to_python(right, stats)
    if isinstance(lv, float) or isinstance(rv, float):
        try:
            lv = float(lv)
            rv = float(rv)
        except (TypeError, ValueError):
            return op == "!="
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    try:
        return _ordered(op, lv, rv)
    except TypeError as exc:
        raise QueryTypeError(f"cannot order {lv!r} and {rv!r}") from exc


def _to_python(item, stats: EvaluationStats):
    if isinstance(item, CompressedItem):
        value = item.decode(stats)
        if item.value_type == "int":
            return float(value)
        if item.value_type == "float":
            return float(value)
        return value
    return item


def string_value(item, stats: EvaluationStats) -> str:
    """String value of an atomic item (decodes if compressed)."""
    if isinstance(item, CompressedItem):
        return item.decode(stats)
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return _format_number(item)
    if isinstance(item, Element):
        return item.text()
    if isinstance(item, str):
        return item
    raise QueryTypeError(f"no string value for {item!r}")


def number_value(item, stats: EvaluationStats) -> float:
    """Numeric value of an atomic item."""
    if isinstance(item, CompressedItem):
        return float(item.decode(stats))
    if isinstance(item, bool):
        return 1.0 if item else 0.0
    if isinstance(item, (int, float)):
        return float(item)
    if isinstance(item, str):
        return float(item)
    if isinstance(item, Element):
        return float(item.text())
    raise QueryTypeError(f"no numeric value for {item!r}")


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def effective_boolean(sequence: list) -> bool:
    """XPath effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, (NodeItem, CompressedItem, Element)):
        return True
    if len(sequence) > 1:
        raise QueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, float):
        return first != 0.0
    if isinstance(first, str):
        return bool(first)
    return True

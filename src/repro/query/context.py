"""The query data model: items, atomization, compressed comparison.

Items flowing through the engine are:

* :class:`NodeItem` — an element node of the compressed repository;
* :class:`CompressedItem` — a text or attribute value still in its
  compressed form (the whole point: predicates evaluate on these
  without decompressing);
* plain Python ``str``/``float``/``bool`` — computed atomics;
* :class:`repro.xmlio.dom.Element` — constructed results.

:class:`EvaluationStats` counts decompressions and operator activity;
the compressed-domain comparison helpers charge it only when they must
leave the compressed domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import Codec, CompressedValue
from repro.errors import QueryTypeError
from repro.obs.metrics import MetricsRegistry
from repro.xmlio.dom import Element


class EvaluationStats:
    """Counters exposed by :class:`repro.query.engine.QueryResult`.

    Since the observability layer landed this is a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry` — the per-run source of
    truth ``explain_analyze`` and the telemetry JSON read.  The counter
    attributes keep their historical names and the ``stats.x += 1``
    idiom still works, but new code should prefer incrementing the
    registry (``stats.registry.add(name)``) so counts, traces and
    histograms stay in one place; direct attribute mutation is kept
    only for backwards compatibility.
    """

    FIELDS = ("decompressions", "compressed_comparisons",
              "decompressed_comparisons", "container_scans",
              "container_accesses", "summary_accesses", "hash_joins",
              "nodes_visited")

    __slots__ = ("registry",) + tuple("_" + name for name in FIELDS)

    def __init__(self, registry: MetricsRegistry | None = None,
                 **initial: int):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        for name in self.FIELDS:
            # Each view attribute holds the registry's counter cell, so
            # reads/writes are two plain attribute hops — no dict
            # lookups on the hot path.
            setattr(self, "_" + name, self.registry.counter(name))
        for name, value in initial.items():
            if name not in self.FIELDS:
                raise TypeError(f"unknown counter {name!r}")
            setattr(self, name, value)

    def as_dict(self) -> dict[str, int]:
        """All counters by name (the historical dataclass fields)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvaluationStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)}"
                          for name in self.FIELDS)
        return f"EvaluationStats({inner})"

    # -- counter views (kept explicit so += stays two attribute hops) ------

    @property
    def decompressions(self) -> int:
        return self._decompressions.value

    @decompressions.setter
    def decompressions(self, value: int) -> None:
        self._decompressions.value = value

    @property
    def compressed_comparisons(self) -> int:
        return self._compressed_comparisons.value

    @compressed_comparisons.setter
    def compressed_comparisons(self, value: int) -> None:
        self._compressed_comparisons.value = value

    @property
    def decompressed_comparisons(self) -> int:
        return self._decompressed_comparisons.value

    @decompressed_comparisons.setter
    def decompressed_comparisons(self, value: int) -> None:
        self._decompressed_comparisons.value = value

    @property
    def container_scans(self) -> int:
        return self._container_scans.value

    @container_scans.setter
    def container_scans(self, value: int) -> None:
        self._container_scans.value = value

    @property
    def container_accesses(self) -> int:
        return self._container_accesses.value

    @container_accesses.setter
    def container_accesses(self, value: int) -> None:
        self._container_accesses.value = value

    @property
    def summary_accesses(self) -> int:
        return self._summary_accesses.value

    @summary_accesses.setter
    def summary_accesses(self, value: int) -> None:
        self._summary_accesses.value = value

    @property
    def hash_joins(self) -> int:
        return self._hash_joins.value

    @hash_joins.setter
    def hash_joins(self, value: int) -> None:
        self._hash_joins.value = value

    @property
    def nodes_visited(self) -> int:
        return self._nodes_visited.value

    @nodes_visited.setter
    def nodes_visited(self, value: int) -> None:
        self._nodes_visited.value = value


@dataclass(frozen=True, slots=True)
class NodeItem:
    """An element node, by id, within one repository.

    ``doc`` names the document for engines evaluating over a
    collection (``document("name")/...``); ``None`` is the default
    document.
    """

    node_id: int
    doc: str | None = None


class CompressedItem:
    """A container value, compared in the compressed domain when legal."""

    __slots__ = ("compressed", "codec", "value_type", "_decoded")

    def __init__(self, compressed: CompressedValue, codec: Codec,
                 value_type: str = "string"):
        self.compressed = compressed
        self.codec = codec
        self.value_type = value_type
        self._decoded: str | None = None

    def decode(self, stats: EvaluationStats | None = None) -> str:
        """Decompress (memoised); charges ``stats.decompressions``."""
        if self._decoded is None:
            if stats is not None:
                stats.decompressions += 1
            self._decoded = self.codec.decode(self.compressed)
        return self._decoded

    def __repr__(self) -> str:
        return f"<CompressedItem bits={self.compressed.bits}>"


def compare_items(op: str, left, right, stats: EvaluationStats) -> bool:
    """Compare two atomic items, staying compressed when possible.

    The compressed fast paths mirror §2.1: equality under any shared
    source model with ``eq``; inequality only under an order-preserving
    codec (``ineq``).  Everything else decompresses (and is charged).
    """
    if isinstance(left, CompressedItem) and \
            isinstance(right, CompressedItem) and \
            left.codec is right.codec:
        properties = left.codec.properties
        if op in ("=", "!=") and properties.eq:
            stats.compressed_comparisons += 1
            equal = left.compressed == right.compressed
            return equal if op == "=" else not equal
        if op in ("<", "<=", ">", ">=") and properties.ineq \
                and left.value_type == "string" \
                and right.value_type == "string":
            # Numeric containers are ordered numerically, but two
            # untyped text nodes compare as *strings* in the reference
            # semantics ("10" < "9"); only string containers may answer
            # inequalities on their compressed order.
            stats.compressed_comparisons += 1
            return _ordered(op, left.compressed, right.compressed)
    if isinstance(left, CompressedItem) and \
            isinstance(right, (str, float, int)) and \
            not isinstance(right, bool):
        swapped = _compare_compressed_constant(op, left, right, stats)
        if swapped is not None:
            return swapped
    if isinstance(right, CompressedItem) and \
            isinstance(left, (str, float, int)) and \
            not isinstance(left, bool):
        flipped = _compare_compressed_constant(
            _flip(op), right, left, stats)
        if flipped is not None:
            return flipped
    return _compare_decoded(op, left, right, stats)


def _compare_compressed_constant(op: str, item: CompressedItem,
                                 constant, stats: EvaluationStats
                                 ) -> bool | None:
    """``item <op> constant`` without decompressing, or ``None``.

    The constant is compressed with the item's source model — the
    direction XQueC always prefers: one encode beats N decodes.
    """
    properties = item.codec.properties
    if isinstance(constant, (int, float)) and item.value_type == "string":
        # Numeric comparison of untyped text: must decode.
        return None
    text = _constant_text(constant, item.value_type)
    if text is None:
        return None
    if op in ("=", "!=") and properties.eq:
        encoded = item.codec.try_encode(text)
        stats.compressed_comparisons += 1
        if encoded is None:
            # Out-of-model constants can never equal a container value.
            return op == "!="
        equal = item.compressed == encoded
        return equal if op == "=" else not equal
    if op in ("<", "<=", ">", ">=") and properties.ineq:
        if isinstance(constant, str) and item.value_type != "string":
            # A string constant orders *lexicographically* against
            # untyped text ("10" < "9" is true); a numeric container's
            # compressed order cannot answer that — decode instead.
            return None
        encoded = item.codec.try_encode(text)
        if encoded is None:
            return None
        stats.compressed_comparisons += 1
        return _ordered(op, item.compressed, encoded)
    return None


def _constant_text(constant, value_type: str) -> str | None:
    """Render a constant into the container's canonical text form."""
    if isinstance(constant, str):
        return constant
    if value_type == "int":
        if float(constant).is_integer():
            return str(int(constant))
        return None  # e.g. 10.5 against an int container
    if value_type == "float":
        value = float(constant)
        if value == 0.0:
            value = 0.0  # normalise -0.0: it compares equal to 0.0
        return repr(value)
    return str(constant)


def _ordered(op: str, a, b) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return not b < a
    if op == ">":
        return b < a
    return not a < b  # >=


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[op]


def _compare_decoded(op: str, left, right,
                     stats: EvaluationStats) -> bool:
    stats.decompressed_comparisons += 1
    lv = _to_python(left, stats)
    rv = _to_python(right, stats)
    if isinstance(lv, float) or isinstance(rv, float):
        try:
            lv = float(lv)
            rv = float(rv)
        except (TypeError, ValueError):
            return op == "!="
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    try:
        return _ordered(op, lv, rv)
    except TypeError as exc:
        raise QueryTypeError(f"cannot order {lv!r} and {rv!r}") from exc


def _to_python(item, stats: EvaluationStats):
    # A decoded container value is *untyped text*, whatever the
    # container's storage type: it becomes numeric only when compared
    # against an actual number (the float branch above), exactly like
    # the decompress-first reference.  Coercing by value_type here made
    # "$a/age < $b/name" numeric on one side and broke string order.
    if isinstance(item, CompressedItem):
        return item.decode(stats)
    return item


def string_value(item, stats: EvaluationStats) -> str:
    """String value of an atomic item (decodes if compressed)."""
    if isinstance(item, CompressedItem):
        return item.decode(stats)
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return _format_number(item)
    if isinstance(item, Element):
        return item.text()
    if isinstance(item, str):
        return item
    raise QueryTypeError(f"no string value for {item!r}")


def number_value(item, stats: EvaluationStats) -> float:
    """Numeric value of an atomic item.

    Raises :class:`QueryTypeError` (never a bare ``ValueError``) when
    the item's text does not parse as a number.
    """
    try:
        if isinstance(item, CompressedItem):
            return float(item.decode(stats))
        if isinstance(item, bool):
            return 1.0 if item else 0.0
        if isinstance(item, (int, float)):
            return float(item)
        if isinstance(item, str):
            return float(item)
        if isinstance(item, Element):
            return float(item.text())
    except ValueError as exc:
        raise QueryTypeError(f"cannot convert to a number: {exc}") \
            from exc
    raise QueryTypeError(f"no numeric value for {item!r}")


def _format_number(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "INF"
    if value == float("-inf"):
        return "-INF"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def effective_boolean(sequence: list) -> bool:
    """XPath effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, (NodeItem, CompressedItem, Element)):
        return True
    if len(sequence) > 1:
        raise QueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, float):
        return first != 0.0
    if isinstance(first, str):
        return bool(first)
    return True

"""``RecordBatch``: the columnar unit of the batch-pull operator API.

DESIGN.md §13.  Physical operators historically pulled one ``Row``
(a dict) at a time through Python-level iterators; the batch protocol
moves them in *batches* of a configurable size, where each batch is a
small set of named **columns** backed by numpy arrays:

* :class:`NodeColumn` — element ids as an ``int64`` array;
* :class:`ValueColumn` — container values by *slot index* into one
  value-sorted container (codewords stay in the container — the column
  is just offsets, which is what keeps compressed-domain predicates
  positional);
* :class:`ItemColumn` — arbitrary Python items (the compatibility
  representation produced by :func:`RecordBatch.from_rows`).

A batch optionally carries a **validity mask** (boolean array over its
raw rows).  Filters are lazy: ``filter(mask)`` just ANDs masks;
``compact()`` materializes the surviving rows.  ``to_rows()`` yields
exactly the dict rows the row-pull protocol would have produced, so
the two protocols are interchangeable row-for-row — the differential
suite holds them to that.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

#: default number of rows per batch (``ExecutionOptions.batch_size``).
DEFAULT_BATCH_SIZE = 1024

Row = dict


class NodeColumn:
    """Element ids (one per row) as a dense ``int64`` array."""

    __slots__ = ("ids", "doc")

    def __init__(self, ids: np.ndarray, doc: str | None = None):
        self.ids = np.asarray(ids, dtype=np.int64)
        self.doc = doc

    def __len__(self) -> int:
        return len(self.ids)

    def take(self, indices: np.ndarray) -> "NodeColumn":
        return NodeColumn(self.ids[indices], self.doc)

    def slice(self, start: int, stop: int) -> "NodeColumn":
        return NodeColumn(self.ids[start:stop], self.doc)

    def item_at(self, index: int):
        from repro.query.context import NodeItem
        return NodeItem(int(self.ids[index]), self.doc)

    def to_items(self) -> list:
        from repro.query.context import NodeItem
        doc = self.doc
        return [NodeItem(int(i), doc) for i in self.ids]

    @classmethod
    def concat(cls, columns: Sequence["NodeColumn"]) -> "NodeColumn":
        return cls(np.concatenate([c.ids for c in columns]),
                   columns[0].doc)


class ValueColumn:
    """Container values by slot index into one value-sorted container.

    The codewords never leave the container: the column holds record
    *positions*, so an interval predicate over the (sorted) container
    is a vectorized range test on ``indices`` and materializing a
    :class:`~repro.query.context.CompressedItem` happens only when a
    consumer genuinely needs the row form.
    """

    __slots__ = ("container", "indices", "_records", "_codec",
                 "_value_type")

    def __init__(self, container, indices: np.ndarray):
        records = container.as_arrays().records
        if records is None:
            raise ValueError(
                f"container {container.path!r} is a blob; blob values "
                "have no per-record slots and must flow as ItemColumn")
        self.container = container
        self.indices = np.asarray(indices, dtype=np.int64)
        self._records = records
        self._codec = container.codec
        self._value_type = container.value_type

    def __len__(self) -> int:
        return len(self.indices)

    def take(self, indices: np.ndarray) -> "ValueColumn":
        return ValueColumn(self.container, self.indices[indices])

    def slice(self, start: int, stop: int) -> "ValueColumn":
        return ValueColumn(self.container, self.indices[start:stop])

    def item_at(self, index: int):
        from repro.query.context import CompressedItem
        record = self._records[self.indices[index]]
        return CompressedItem(record.compressed, self._codec,
                              self._value_type)

    def to_items(self) -> list:
        from repro.query.context import CompressedItem
        records, codec = self._records, self._codec
        value_type = self._value_type
        return [CompressedItem(records[i].compressed, codec, value_type)
                for i in self.indices]

    def interval_mask(self, start: int, end: int) -> np.ndarray:
        """Rows whose container slot falls in ``[start, end)``.

        Because the container is value-sorted, this *is* the
        compressed-domain interval predicate, evaluated without
        touching a single codeword.
        """
        return (self.indices >= start) & (self.indices < end)

    @classmethod
    def concat(cls, columns: Sequence["ValueColumn"]) -> "ValueColumn":
        first = columns[0]
        if any(c.container is not first.container for c in columns[1:]):
            raise ValueError("cannot concat ValueColumns over "
                             "different containers")
        return cls(first.container,
                   np.concatenate([c.indices for c in columns]))


class ItemColumn:
    """Arbitrary Python items, one per row (compatibility column)."""

    __slots__ = ("items",)

    def __init__(self, items: list):
        self.items = items if isinstance(items, list) else list(items)

    def __len__(self) -> int:
        return len(self.items)

    def take(self, indices: np.ndarray) -> "ItemColumn":
        items = self.items
        return ItemColumn([items[int(i)] for i in indices])

    def slice(self, start: int, stop: int) -> "ItemColumn":
        return ItemColumn(self.items[start:stop])

    def item_at(self, index: int):
        return self.items[index]

    def to_items(self) -> list:
        return list(self.items)

    @classmethod
    def concat(cls, columns: Sequence["ItemColumn"]) -> "ItemColumn":
        items: list = []
        for column in columns:
            items.extend(column.to_items())
        return cls(items)


class RecordBatch:
    """A fixed set of equal-length named columns plus a validity mask."""

    __slots__ = ("_columns", "_length", "validity")

    def __init__(self, columns: dict, length: int | None = None,
                 validity: np.ndarray | None = None):
        self._columns = columns
        if length is None:
            if not columns:
                raise ValueError("an empty batch needs an explicit "
                                 "length")
            length = len(next(iter(columns.values())))
        for name, column in columns.items():
            if len(column) != length:
                raise ValueError(
                    f"column {name!r} has {len(column)} rows, "
                    f"batch has {length}")
        self._length = length
        if validity is not None and len(validity) != length:
            raise ValueError("validity mask length mismatch")
        self.validity = validity

    # -- shape ---------------------------------------------------------------

    @property
    def raw_length(self) -> int:
        """Physical rows, including ones masked out by ``validity``."""
        return self._length

    def __len__(self) -> int:
        """Logical (valid) rows."""
        if self.validity is None:
            return self._length
        return int(np.count_nonzero(self.validity))

    def column_names(self) -> tuple:
        return tuple(self._columns)

    def column(self, name: str):
        return self._columns[name]

    def columns(self) -> dict:
        """The name -> column mapping (a copy; columns are shared)."""
        return dict(self._columns)

    # -- transforms ----------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Lazily keep only rows where ``mask`` (raw-length) is true."""
        mask = np.asarray(mask, dtype=bool)
        if self.validity is not None:
            mask = mask & self.validity
        return RecordBatch(self._columns, self._length, mask)

    def compact(self) -> "RecordBatch":
        """Materialize the valid rows; the result has no mask."""
        if self.validity is None:
            return self
        keep = np.flatnonzero(self.validity)
        return RecordBatch(
            {name: column.take(keep)
             for name, column in self._columns.items()},
            len(keep))

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Rows by position (positions count valid rows only)."""
        base = self.compact()
        indices = np.asarray(indices, dtype=np.int64)
        return RecordBatch(
            {name: column.take(indices)
             for name, column in base._columns.items()},
            len(indices))

    def slice(self, start: int, stop: int) -> "RecordBatch":
        base = self.compact()
        stop = min(stop, base._length)
        return RecordBatch(
            {name: column.slice(start, stop)
             for name, column in base._columns.items()},
            max(stop - start, 0))

    def with_column(self, name: str, column) -> "RecordBatch":
        """This batch plus (or replacing) one column.

        The batch must be compacted first — a new column has no say
        about rows the mask already dropped.
        """
        if self.validity is not None:
            raise ValueError("with_column on an uncompacted batch")
        merged = dict(self._columns)
        merged[name] = column
        return RecordBatch(merged, self._length)

    def merged_with(self, other: "RecordBatch") -> "RecordBatch":
        """Column-wise merge (``{**left_row, **right_row}`` semantics)."""
        left = self.compact()
        right = other.compact()
        if left._length != right._length:
            raise ValueError("merged batches must have equal lengths")
        merged = dict(left._columns)
        merged.update(right._columns)
        return RecordBatch(merged, left._length)

    def project(self, names: Iterable[str]) -> "RecordBatch":
        """Keep only the named columns (KeyError on a missing name)."""
        return RecordBatch({name: self._columns[name] for name in names},
                           self._length, self.validity)

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        batches = [b.compact() for b in batches]
        if not batches:
            raise ValueError("concat of no batches")
        names = batches[0].column_names()
        for batch in batches[1:]:
            if batch.column_names() != names:
                raise ValueError("concat of batches with different "
                                 "columns")
        columns = {}
        for name in names:
            parts = [b._columns[name] for b in batches]
            kinds = {type(p) for p in parts}
            if len(kinds) == 1:
                columns[name] = parts[0].concat(parts)
            else:  # mixed representations: fall back to items
                items: list = []
                for part in parts:
                    items.extend(part.to_items())
                columns[name] = ItemColumn(items)
        return cls(columns, sum(b._length for b in batches))

    # -- row compatibility ---------------------------------------------------

    def to_rows(self) -> Iterator[Row]:
        """The dict rows this batch stands for, in order."""
        names = tuple(self._columns)
        columns = tuple(self._columns.values())
        if self.validity is None:
            positions: Iterable[int] = range(self._length)
        else:
            positions = np.flatnonzero(self.validity)
        for position in positions:
            yield {name: column.item_at(position)
                   for name, column in zip(names, columns)}

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "RecordBatch":
        """A batch of :class:`ItemColumn` s from uniform dict rows."""
        if not rows:
            raise ValueError("from_rows of no rows")
        names = tuple(rows[0])
        columns = {name: ItemColumn([row[name] for row in rows])
                   for name in names}
        return cls(columns, len(rows))


def batches_from_rows(rows: Iterable[Row],
                      size: int) -> Iterator[RecordBatch]:
    """Chunk a row stream into batches (the compat shim's engine)."""
    chunk: list[Row] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= size:
            yield RecordBatch.from_rows(chunk)
            chunk = []
    if chunk:
        yield RecordBatch.from_rows(chunk)


def rows_of_batches(batches: Iterable[RecordBatch]) -> Iterator[Row]:
    """Flatten batches back into the row-pull protocol's stream."""
    for batch in batches:
        yield from batch.to_rows()

"""Recursive-descent parser for the XQuery subset.

Grammar (informally)::

    Expr        := FLWOR | OrExpr
    FLWOR       := (ForClause | LetClause)+ ('where' OrExpr)? 'return' Expr
    ForClause   := 'for' '$'Name 'in' OrExpr (',' '$'Name 'in' OrExpr)*
    LetClause   := 'let' '$'Name ':=' OrExpr
    OrExpr      := AndExpr ('or' AndExpr)*
    AndExpr     := CmpExpr ('and' CmpExpr)*
    CmpExpr     := AddExpr (CmpOp AddExpr)?
    AddExpr     := MulExpr (('+'|'-') MulExpr)*
    MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
    UnaryExpr   := '-'? PathOrPrimary
    PathOrPrimary := Primary (('/'|'//') Step)*
                   | ('/'|'//') Step (('/'|'//') Step)*
    Primary     := '$'Name | Literal | 'document' '(' String ')'
                 | Name '(' Args ')' | '(' Expr (',' Expr)* ')'
                 | DirectConstructor
    Step        := ('@'Name | Name | '*' | 'text()') ('[' Expr ']')*

Direct element constructors are parsed by switching to raw text
scanning (see :mod:`repro.query.lexer`); ``{...}`` re-enters expression
parsing.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError, UnsupportedFeatureError
from repro.query.ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Logical,
    NumberLiteral,
    OrderSpec,
    PathExpr,
    SequenceExpr,
    Step,
    StringLiteral,
    TextLiteral,
    VarRef,
)
from repro.query.lexer import Lexer, Token, TokenType

_COMPARISON_OPS = {"EQ": "=", "NE": "!=", "LT": "<", "LE": "<=",
                   "GT": ">", "GE": ">="}

KNOWN_FUNCTIONS = {"contains", "count", "sum", "avg", "min", "max",
                   "empty", "not", "starts-with", "string-length",
                   "zero-or-one", "number", "string", "data", "text",
                   "distinct-values", "word-contains"}


def parse_query(text: str) -> Expression:
    """Parse a query string into an AST; raises QuerySyntaxError."""
    parser = _Parser(text)
    expression = parser.parse_expression()
    trailing = parser.lexer.peek()
    if trailing.type != TokenType.EOF:
        raise QuerySyntaxError(
            f"unexpected trailing input {trailing.value!r}",
            trailing.position)
    return expression


class _Parser:
    def __init__(self, text: str):
        self.lexer = Lexer(text)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expression:
        token = self.lexer.peek()
        if token.is_keyword("for") or token.is_keyword("let"):
            return self._parse_flwor()
        return self._parse_or()

    def _parse_flwor(self) -> Expression:
        clauses: list[ForClause | LetClause] = []
        while True:
            token = self.lexer.peek()
            if token.is_keyword("for"):
                self.lexer.next()
                clauses.append(self._parse_for_binding())
                while self.lexer.peek().is_punct("COMMA"):
                    self.lexer.next()
                    clauses.append(self._parse_for_binding())
            elif token.is_keyword("let"):
                self.lexer.next()
                clauses.append(self._parse_let_binding())
                while self.lexer.peek().is_punct("COMMA"):
                    self.lexer.next()
                    clauses.append(self._parse_let_binding())
            else:
                break
        if not clauses:
            raise QuerySyntaxError("expected 'for' or 'let'",
                                   self.lexer.peek().position)
        where = None
        if self.lexer.peek().is_keyword("where"):
            self.lexer.next()
            where = self._parse_or()
        order = self._parse_order_by()
        self.lexer.expect_keyword("return")
        result = self.parse_expression()
        return FLWOR(tuple(clauses), where, result, order)

    def _parse_order_by(self) -> tuple[OrderSpec, ...]:
        """``order by key [descending] (, key ...)`` — contextual:
        ``order``/``by``/``ascending``/``descending`` stay ordinary
        names everywhere else (they are common element names)."""
        token = self.lexer.peek()
        if not (token.type == TokenType.NAME and token.value == "order"
                and self.lexer.peek(1).type == TokenType.NAME
                and self.lexer.peek(1).value == "by"):
            return ()
        self.lexer.next()
        self.lexer.next()
        specs: list[OrderSpec] = []
        while True:
            key = self._parse_or()
            descending = False
            direction = self.lexer.peek()
            if direction.type == TokenType.NAME and \
                    direction.value in ("ascending", "descending"):
                self.lexer.next()
                descending = direction.value == "descending"
            specs.append(OrderSpec(key, descending))
            if self.lexer.peek().is_punct("COMMA"):
                self.lexer.next()
                continue
            return tuple(specs)

    def _parse_for_binding(self) -> ForClause:
        self.lexer.expect_punct("DOLLAR")
        name = self.lexer.expect_name().value
        self.lexer.expect_keyword("in")
        return ForClause(name, self._parse_or())

    def _parse_let_binding(self) -> LetClause:
        self.lexer.expect_punct("DOLLAR")
        name = self.lexer.expect_name().value
        self.lexer.expect_punct("ASSIGN")
        # A let body may itself be a nested FLWOR (XMark Q8/Q9 style).
        return LetClause(name, self.parse_expression())

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.lexer.peek().is_keyword("or"):
            self.lexer.next()
            left = Logical("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self.lexer.peek().is_keyword("and"):
            self.lexer.next()
            left = Logical("and", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self.lexer.peek()
        if token.type == TokenType.PUNCT and \
                token.value in _COMPARISON_OPS:
            self.lexer.next()
            right = self._parse_additive()
            return Comparison(_COMPARISON_OPS[token.value], left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.lexer.peek()
            if token.is_punct("PLUS"):
                self.lexer.next()
                left = Arithmetic("+", left, self._parse_multiplicative())
            elif token.is_punct("MINUS"):
                self.lexer.next()
                left = Arithmetic("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.lexer.peek()
            if token.is_punct("STAR"):
                self.lexer.next()
                left = Arithmetic("*", left, self._parse_unary())
            elif token.is_keyword("div") or token.is_keyword("mod"):
                self.lexer.next()
                left = Arithmetic(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.lexer.peek().is_punct("MINUS"):
            self.lexer.next()
            operand = self._parse_path()
            return Arithmetic("-", NumberLiteral(0.0), operand)
        return self._parse_path()

    # -- paths ----------------------------------------------------------------

    def _parse_path(self) -> Expression:
        token = self.lexer.peek()
        if token.is_punct("SLASH") or token.is_punct("DSLASH"):
            return self._continue_path(None, None)
        if self._starts_relative_path(token):
            # Bare step(s) relative to the context item, as used inside
            # step predicates: ``[price > 100]``, ``[@id = "x"]``.
            steps = [self._parse_step("child")]
            while self.lexer.peek().is_punct("SLASH") or \
                    self.lexer.peek().is_punct("DSLASH"):
                axis = ("descendant"
                        if self.lexer.next().value == "DSLASH" else "child")
                steps.append(self._parse_step(axis))
            return PathExpr(ContextItem(), tuple(steps))
        start = self._parse_primary()
        if isinstance(start, _DocumentRoot):
            return self._continue_path(None, start.name)
        if self.lexer.peek().is_punct("SLASH") or \
                self.lexer.peek().is_punct("DSLASH"):
            return self._continue_path(start, None)
        return start

    def _continue_path(self, start: Expression | None,
                       document: str | None) -> PathExpr:
        steps: list[Step] = []
        while True:
            token = self.lexer.peek()
            if token.is_punct("SLASH"):
                axis = "child"
            elif token.is_punct("DSLASH"):
                axis = "descendant"
            else:
                break
            self.lexer.next()
            steps.append(self._parse_step(axis))
        if not steps:
            raise QuerySyntaxError("expected a path step",
                                   self.lexer.peek().position)
        return PathExpr(start, tuple(steps), document)

    def _parse_step(self, axis: str) -> Step:
        token = self.lexer.peek()
        if token.is_punct("AT"):
            self.lexer.next()
            name = self.lexer.expect_name().value
            return Step("attribute", name,
                        self._parse_step_predicates())
        if token.is_punct("STAR"):
            self.lexer.next()
            return Step(axis, "*", self._parse_step_predicates())
        name_token = self.lexer.expect_name()
        name = name_token.value
        if name == "text" and self.lexer.peek().is_punct("LPAREN"):
            self.lexer.next()
            self.lexer.expect_punct("RPAREN")
            return Step(axis, "text()", self._parse_step_predicates())
        return Step(axis, name, self._parse_step_predicates())

    def _parse_step_predicates(self) -> tuple[Expression, ...]:
        predicates: list[Expression] = []
        while self.lexer.peek().is_punct("LBRACKET"):
            self.lexer.next()
            predicates.append(self.parse_expression())
            self.lexer.expect_punct("RBRACKET")
        return tuple(predicates)

    # -- primaries ---------------------------------------------------------------

    def _parse_primary(self) -> Expression:
        token = self.lexer.peek()
        if token.is_punct("DOLLAR"):
            self.lexer.next()
            return VarRef(self.lexer.expect_name().value)
        if token.type == TokenType.STRING:
            self.lexer.next()
            return StringLiteral(token.value)
        if token.type == TokenType.NUMBER:
            self.lexer.next()
            return NumberLiteral(float(token.value))
        if token.is_keyword("document"):
            self.lexer.next()
            self.lexer.expect_punct("LPAREN")
            doc = self.lexer.next()
            if doc.type != TokenType.STRING:
                raise QuerySyntaxError("document() expects a string",
                                       doc.position)
            self.lexer.expect_punct("RPAREN")
            return _DocumentRoot(doc.value)
        if token.is_punct("LPAREN"):
            self.lexer.next()
            if self.lexer.peek().is_punct("RPAREN"):
                self.lexer.next()
                return SequenceExpr(())
            items = [self.parse_expression()]
            while self.lexer.peek().is_punct("COMMA"):
                self.lexer.next()
                items.append(self.parse_expression())
            self.lexer.expect_punct("RPAREN")
            if len(items) == 1:
                return items[0]
            return SequenceExpr(tuple(items))
        if token.is_punct("LT"):
            return self._parse_constructor()
        if token.type == TokenType.NAME and \
                self.lexer.peek(1).is_punct("LPAREN"):
            return self._parse_function_call()
        raise QuerySyntaxError(
            f"unexpected token {token.value!r}", token.position)

    def _parse_function_call(self) -> Expression:
        name_token = self.lexer.next()
        name = name_token.value
        if name not in KNOWN_FUNCTIONS:
            raise UnsupportedFeatureError(
                f"function {name}() is not in the supported subset")
        self.lexer.expect_punct("LPAREN")
        args: list[Expression] = []
        if not self.lexer.peek().is_punct("RPAREN"):
            args.append(self.parse_expression())
            while self.lexer.peek().is_punct("COMMA"):
                self.lexer.next()
                args.append(self.parse_expression())
        self.lexer.expect_punct("RPAREN")
        return FunctionCall(name, tuple(args))

    # -- direct constructors (raw scanning + {expr} re-entry) ------------------

    def _parse_constructor(self) -> ElementConstructor:
        text = self.lexer.text
        pos = self.lexer.mark()
        if text[pos] != "<":
            raise QuerySyntaxError("expected '<'", pos)
        i = pos + 1
        i, name = _scan_name(text, i)
        attributes: list[tuple[str, tuple[Expression, ...]]] = []
        while True:
            i = _skip_ws(text, i)
            if i >= len(text):
                raise QuerySyntaxError("unterminated constructor", pos)
            if text.startswith("/>", i):
                self.lexer.reset(i + 2)
                return ElementConstructor(name, tuple(attributes), ())
            if text[i] == ">":
                i += 1
                break
            i, attr_name = _scan_name(text, i)
            i = _skip_ws(text, i)
            if i >= len(text) or text[i] != "=":
                raise QuerySyntaxError(
                    f"attribute {attr_name!r} missing '='", i)
            i = _skip_ws(text, i + 1)
            if i >= len(text) or text[i] not in "\"'":
                raise QuerySyntaxError(
                    f"attribute {attr_name!r} value must be quoted", i)
            i, parts = self._scan_value_parts(text, i + 1, text[i])
            attributes.append((attr_name, parts))
        content: list[Expression] = []
        while True:
            if i >= len(text):
                raise QuerySyntaxError(
                    f"constructor <{name}> never closed", pos)
            if text.startswith("</", i):
                i, end_name = _scan_name(text, i + 2)
                i = _skip_ws(text, i)
                if i >= len(text) or text[i] != ">":
                    raise QuerySyntaxError("malformed end tag", i)
                if end_name != name:
                    raise QuerySyntaxError(
                        f"end tag </{end_name}> does not match "
                        f"<{name}>", i)
                self.lexer.reset(i + 1)
                return ElementConstructor(name, tuple(attributes),
                                          tuple(content))
            if text[i] == "<":
                self.lexer.reset(i)
                content.append(self._parse_constructor())
                i = self.lexer.mark()
                continue
            if text[i] == "{":
                self.lexer.reset(i + 1)
                content.append(self.parse_expression())
                self.lexer.expect_punct("RBRACE")
                i = self.lexer.mark()
                continue
            j = i
            while j < len(text) and text[j] not in "<{":
                j += 1
            raw = text[i:j]
            if raw.strip():
                content.append(TextLiteral(raw))
            i = j

    def _scan_value_parts(self, text: str, i: int, quote: str
                          ) -> tuple[int, tuple[Expression, ...]]:
        """Attribute value: literal text mixed with ``{expr}`` parts."""
        parts: list[Expression] = []
        buffer: list[str] = []
        while True:
            if i >= len(text):
                raise QuerySyntaxError("unterminated attribute value", i)
            ch = text[i]
            if ch == quote:
                if buffer:
                    parts.append(TextLiteral("".join(buffer)))
                return i + 1, tuple(parts)
            if ch == "{":
                if buffer:
                    parts.append(TextLiteral("".join(buffer)))
                    buffer = []
                self.lexer.reset(i + 1)
                parts.append(self.parse_expression())
                self.lexer.expect_punct("RBRACE")
                i = self.lexer.mark()
                continue
            buffer.append(ch)
            i += 1


    def _starts_relative_path(self, token: Token) -> bool:
        """A bare NAME (not a function call), ``@name``, or ``text()``
        starts a context-relative path."""
        if token.is_punct("AT"):
            return True
        if token.type == TokenType.NAME:
            if self.lexer.peek(1).is_punct("LPAREN"):
                # ``text()`` is a step; other calls are functions.
                return token.value == "text"
            return True
        return False


class _DocumentRoot(Expression):
    """Internal marker: ``document("...")`` — path root follows."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


_CONSTRUCTOR_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:")


def _scan_name(text: str, i: int) -> tuple[int, str]:
    start = i
    while i < len(text) and text[i] in _CONSTRUCTOR_NAME_CHARS:
        i += 1
    if i == start:
        raise QuerySyntaxError("expected a name", start)
    return i, text[start:i]


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t\r\n":
        i += 1
    return i


def parse_path_steps(path: str) -> list[tuple[str, str]]:
    """Parse a plain path string like ``/site//item/@id`` into
    (axis, name) pairs for :meth:`StructureSummary.resolve`."""
    steps: list[tuple[str, str]] = []
    i = 0
    n = len(path)
    while i < n:
        if path.startswith("//", i):
            axis = "descendant"
            i += 2
        elif path[i] == "/":
            axis = "child"
            i += 1
        else:
            raise QuerySyntaxError(f"expected '/' in path {path!r}", i)
        j = i
        while j < n and path[j] != "/":
            j += 1
        steps.append((axis, path[i:j]))
        i = j
    return steps

"""Full-text support — the paper's §6 W3C full-text extension.

The paper reports "testing the suitability of our system w.r.t. the
full-text queries which are being defined for the XQuery language at
W3C".  This module provides that extension:

* a ``word-contains(node, "word")`` builtin with whole-word semantics
  (the useful core of ``ftcontains``), evaluated by tokenizing the
  decompressed value; and
* :class:`FullTextIndex` — an inverted index from words to the
  *parent element ids* of a container's records, so an indexed
  ``word-contains`` predicate becomes one dictionary lookup instead of
  a decompress-and-scan of the whole container (Q14's cost profile).

Indexes are built per container on demand
(:meth:`repro.query.engine.QueryEngine.build_fulltext_index`); the
engine's FLWOR evaluation uses them as an access path, then re-checks
nothing — whole-word semantics make the index exact.
"""

from __future__ import annotations

import re

from repro.storage.containers import ValueContainer

_WORD = re.compile(r"[^\W_]+", re.UNICODE)


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens of a text value."""
    return [match.group(0).lower() for match in _WORD.finditer(text)]


class FullTextIndex:
    """Inverted index: word -> sorted parent element ids."""

    def __init__(self, container_path: str,
                 postings: dict[str, list[int]]):
        self.container_path = container_path
        self._postings = postings

    @classmethod
    def build(cls, container: ValueContainer) -> "FullTextIndex":
        """Index a container (decompresses each value once)."""
        postings: dict[str, set[int]] = {}
        for parent_id, value in container.scan_decoded():
            for word in set(tokenize(value)):
                postings.setdefault(word, set()).add(parent_id)
        return cls(container.path,
                   {word: sorted(ids)
                    for word, ids in postings.items()})

    def lookup(self, word: str) -> list[int]:
        """Parent ids of records containing ``word`` (whole word)."""
        return self._postings.get(word.lower(), [])

    def lookup_all(self, words: list[str]) -> list[int]:
        """Conjunctive lookup: parents containing every word."""
        if not words:
            return []
        result: set[int] | None = None
        for word in words:
            ids = set(self.lookup(word))
            result = ids if result is None else result & ids
            if not result:
                return []
        assert result is not None
        return sorted(result)

    @property
    def word_count(self) -> int:
        """Number of distinct indexed words."""
        return len(self._postings)

    def size_bytes(self) -> int:
        """Approximate serialized size (words + delta-varint postings)."""
        from repro.util.varint import delta_sizes
        total = 0
        for word, ids in self._postings.items():
            total += len(word.encode("utf-8")) + 1
            total += delta_sizes(ids)
        return total

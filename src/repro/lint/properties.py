"""Inferred plan properties the verifier propagates through operators.

A :class:`PlanProperties` describes everything the verifier knows about
the rows an operator emits: which columns exist and in what state
(node reference / compressed value / plain value), which codec and
container a compressed column came from (its *compressed domain*), and
the sort order the stream is known to satisfy.

``open_schema`` marks streams fed by inputs the verifier cannot type
(plain Python iterables, unknown operator classes): column-existence
checks are suppressed there rather than reporting false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compression.base import Codec, CompressionProperties

#: column kinds: a node reference, a still-compressed value, or a
#: plain (decoded or computed) value.
NODE = "node"
COMPRESSED = "compressed"
PLAIN = "plain"


@dataclass(frozen=True)
class ColumnInfo:
    """What the verifier knows about one column of a row stream."""

    kind: str
    #: the codec a compressed column was encoded with.
    codec: Codec | None = None
    #: the container the column's values came from.
    container_path: str | None = None
    #: True once a ``Decompress`` has turned the column plain.
    decompressed: bool = False

    @property
    def capabilities(self) -> CompressionProperties | None:
        """The §3.2 capability tuple of the column's codec, if any."""
        return self.codec.properties if self.codec is not None else None

    def domain_key(self) -> object:
        """Identity of the compressed domain (shared source model).

        Two compressed columns are comparable in the compressed domain
        exactly when their values were encoded by the same source
        model; codec object identity captures the paper's container
        grouping (grouped containers share one trained codec).
        """
        return id(self.codec)

    def decompress(self) -> "ColumnInfo":
        """The column after an explicit ``Decompress``."""
        return replace(self, kind=PLAIN, decompressed=True)


@dataclass(frozen=True)
class PlanProperties:
    """Columns, sort order and schema openness of one row stream."""

    columns: dict[str, ColumnInfo] = field(default_factory=dict)
    #: column names the stream is sorted by, most significant first;
    #: empty when no order is established.
    order: tuple[str, ...] = ()
    #: True when upstream columns are unknown (untyped input).
    open_schema: bool = False

    def has_column(self, name: str) -> bool:
        return name in self.columns

    def column(self, name: str) -> ColumnInfo | None:
        return self.columns.get(name)

    def with_column(self, name: str, info: ColumnInfo,
                    order: tuple[str, ...] | None = None
                    ) -> "PlanProperties":
        """A copy with one column added/replaced (order defaults to
        this stream's order)."""
        columns = dict(self.columns)
        columns[name] = info
        return PlanProperties(columns,
                              self.order if order is None else order,
                              self.open_schema)

    def ordered_on(self, name: str) -> bool:
        """True when the stream's primary sort key is ``name``."""
        return bool(self.order) and self.order[0] == name

    @staticmethod
    def opaque() -> "PlanProperties":
        """Properties of a stream the verifier cannot type."""
        return PlanProperties({}, (), True)

    @staticmethod
    def merge(left: "PlanProperties", right: "PlanProperties",
              order: tuple[str, ...] | None = None) -> "PlanProperties":
        """Join output schema: left's columns updated by right's.

        Mirrors the operators' ``{**left_row, **right_row}`` row merge;
        the output order defaults to the left (streamed) input's.
        """
        columns = dict(left.columns)
        columns.update(right.columns)
        return PlanProperties(
            columns, left.order if order is None else order,
            left.open_schema or right.open_schema)

"""Structured diagnostics emitted by both lint tiers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.rules import RULES


@dataclass(frozen=True)
class PlanDiagnostic:
    """One plan-verifier finding, tagged with its rule.

    ``operator_path`` locates the offending operator inside the plan
    tree (e.g. ``"XMLSerialize/Decompress/MergeJoin/left=ContScan"``).
    """

    rule: str
    severity: str
    operator_path: str
    message: str
    hint: str = ""

    @classmethod
    def make(cls, rule_id: str, operator_path: str, message: str,
             hint: str = "") -> "PlanDiagnostic":
        """Build a diagnostic with the rule's catalog severity."""
        return cls(rule_id, RULES[rule_id].severity, operator_path,
                   message, hint)

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule, "severity": self.severity,
                "operator_path": self.operator_path,
                "message": self.message, "hint": self.hint}

    def format(self) -> str:
        text = (f"{self.severity}[{self.rule}] {self.operator_path}: "
                f"{self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass(frozen=True)
class SourceDiagnostic:
    """One source-lint finding, tagged with its rule and location."""

    rule: str
    severity: str
    file: str
    line: int
    message: str
    hint: str = ""

    @classmethod
    def make(cls, rule_id: str, file: str, line: int, message: str,
             hint: str = "") -> "SourceDiagnostic":
        """Build a diagnostic with the rule's catalog severity."""
        return cls(rule_id, RULES[rule_id].severity, file, line,
                   message, hint)

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule, "severity": self.severity,
                "file": self.file, "line": self.line,
                "message": self.message, "hint": self.hint}

    def format(self) -> str:
        text = (f"{self.file}:{self.line}: {self.severity}"
                f"[{self.rule}] {self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

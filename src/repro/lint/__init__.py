"""Static analysis for the XQueC engine (plans and source).

Two tiers, one goal: catch invariant violations *before a single row
flows* (or a PR merges).

* **Tier A — plan verifier** (:mod:`repro.lint.plan`): a visitor over
  physical plans (:mod:`repro.query.physical`) that propagates inferred
  plan properties — column schema, sortedness, compressed-vs-plain
  state, codec capabilities — and emits rule-tagged
  :class:`PlanDiagnostic` objects for violations of the paper's
  capability (§3.2) and order (§4) assumptions.
  :func:`repro.lint.compile.verify_query` compiles the engine's chosen
  strategies into a plan sketch and verifies it; the engine runs it as
  a fail-fast gate.
* **Tier B — source lint** (:mod:`repro.lint.source`): an ``ast``-based
  checker for the repo's engine-invariant conventions (operator
  ``_rows``/``_traced`` routing, codec property declarations, sanctioned
  decompression sites, no bare ``except``/mutable defaults), run as
  ``repro lint-src`` and in CI.
"""

from repro.lint.diagnostics import PlanDiagnostic, SourceDiagnostic
from repro.lint.plan import verify_plan
from repro.lint.rules import RULES, Rule
from repro.lint.source import lint_paths

__all__ = [
    "PlanDiagnostic",
    "RULES",
    "Rule",
    "SourceDiagnostic",
    "lint_paths",
    "verify_plan",
]

"""Tier A: the static plan verifier.

:func:`verify_plan` walks a physical plan (a tree of
:class:`repro.query.physical.Operator` instances) bottom-up, inferring
:class:`~repro.lint.properties.PlanProperties` for every operator's
output and checking each operator's requirements against its inputs'
inferred properties.  Nothing is executed — the pass reads only the
operators' declarative metadata (column names, predicate kinds,
container/codec handles).

Checked invariants (see :mod:`repro.lint.rules` for the catalog):

* compressed-domain predicates are legal only if the container's codec
  supports the predicate kind per the paper's
  ``<d_c, c_s, c_a, eq, ineq, wild>`` characterization (§3.2);
* ``MergeJoin`` requires inputs with a statically established sort
  order on the key columns (§4);
* compressed comparisons must stay within one compressed domain
  (shared source model, §3.1);
* every value reaching ``XMLSerialize`` passed through ``Decompress``
  exactly once (§4);
* operators only reference columns produced upstream;
* ``ContAccess`` interval search wants a binary-searchable container
  (§2.2).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.compression.base import PREDICATE_KINDS
from repro.lint.diagnostics import PlanDiagnostic
from repro.lint.properties import (
    COMPRESSED,
    NODE,
    PLAIN,
    ColumnInfo,
    PlanProperties,
)

#: rule id per unsupported predicate kind.
_CAPABILITY_RULES = {
    "eq": "plan.eq-unsupported",
    "ineq": "plan.ineq-order-agnostic",
    "wild": "plan.wild-unsupported",
}


def verify_plan(root: object) -> list[PlanDiagnostic]:
    """Verify a physical plan; returns every diagnostic found.

    ``root`` is the plan's top operator.  The returned list is ordered
    bottom-up (input diagnostics before the operators consuming them);
    an empty list means the plan satisfies every checked invariant.
    """
    verifier = PlanVerifier()
    verifier.visit(root, type(root).__name__)
    return verifier.diagnostics


class PlanVerifier:
    """Visitor propagating plan properties and collecting diagnostics."""

    def __init__(self) -> None:
        self.diagnostics: list[PlanDiagnostic] = []
        self._handlers: dict[str, Callable[[object, str, list[PlanProperties]], PlanProperties]] = {
            "ContScan": self._container_source,
            "ContAccess": self._cont_access,
            "StructureSummaryAccess": self._summary_access,
            "Child": self._navigation,
            "Parent": self._navigation,
            "Descendant": self._navigation,
            "TextContent": self._content,
            "AttributeContent": self._passthrough,
            "Select": self._select,
            "Project": self._project,
            "HashJoin": self._hash_join,
            "MergeJoin": self._merge_join,
            "NestedLoopJoin": self._nested_loop_join,
            "Distinct": self._distinct,
            "Sort": self._sort,
            "Decompress": self._decompress,
            "XMLSerialize": self._xml_serialize,
        }

    # -- traversal ------------------------------------------------------------

    def visit(self, node: object, path: str) -> PlanProperties:
        """Infer the properties of one plan node's output."""
        inputs = getattr(node, "inputs", None)
        if not callable(inputs):
            # A plain iterable (list, generator): untyped input.
            return PlanProperties.opaque()
        labels = [name.lstrip("_")
                  for name in getattr(node, "INPUTS", ())]
        children = []
        for label, child in zip(labels, inputs()):
            child_name = type(child).__name__
            children.append(
                self.visit(child, f"{path}/{label}={child_name}"))
        handler = self._handlers.get(type(node).__name__)
        if handler is None:
            # Unknown operator: merge what the inputs provide but stop
            # claiming schema completeness.
            merged = PlanProperties.opaque()
            for child_props in children:
                merged = PlanProperties.merge(merged, child_props)
            return PlanProperties(merged.columns, (), True)
        return handler(node, path, children)

    def _report(self, rule_id: str, path: str, message: str,
                hint: str = "") -> None:
        self.diagnostics.append(
            PlanDiagnostic.make(rule_id, path, message, hint))

    def _require_column(self, props: PlanProperties, name: str | None,
                        path: str, role: str) -> ColumnInfo | None:
        """Column lookup with the unknown-column check applied."""
        if name is None:
            return None
        info = props.column(name)
        if info is None and not props.open_schema:
            self._report(
                "plan.unknown-column", path,
                f"{role} column {name!r} is not produced upstream "
                f"(available: {sorted(props.columns) or 'none'})",
                "name an output column of an input operator")
        return info

    # -- data access ----------------------------------------------------------

    def _container_source(self, node: object, path: str,
                          children: list[PlanProperties]
                          ) -> PlanProperties:
        container = node.container  # type: ignore[attr-defined]
        columns = {
            node.id_column: ColumnInfo(NODE),  # type: ignore[attr-defined]
            node.value_column: ColumnInfo(  # type: ignore[attr-defined]
                COMPRESSED, container.codec, container.path),
        }
        # Containers are value-sorted (§2.2): scans and interval
        # accesses emit in value order.
        return PlanProperties(columns,
                              (node.value_column,))  # type: ignore[attr-defined]

    def _cont_access(self, node: object, path: str,
                     children: list[PlanProperties]) -> PlanProperties:
        container = node.container  # type: ignore[attr-defined]
        low, high = node.interval[:2]  # type: ignore[attr-defined]
        if container.is_blob:
            self._report(
                "plan.interval-not-binary-searchable", path,
                f"container {container.path!r} is a blob chunk; the "
                "interval search decompresses the whole container",
                "store the container record-wise or scan it instead")
        elif (low is not None or high is not None) \
                and not container.codec.properties.ineq:
            self._report(
                "plan.interval-decompressing", path,
                f"codec {container.codec.name!r} of container "
                f"{container.path!r} is order-agnostic; the binary "
                "search decompresses O(log n) pivot records",
                "prefer an order-preserving codec (alm/hutucker) for "
                "range-probed containers")
        return self._container_source(node, path, children)

    def _summary_access(self, node: object, path: str,
                        children: list[PlanProperties]
                        ) -> PlanProperties:
        column = node.column  # type: ignore[attr-defined]
        # Extents merge-sort to document order, i.e. ascending node id.
        return PlanProperties({column: ColumnInfo(NODE)}, (column,))

    def _navigation(self, node: object, path: str,
                    children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        self._require_column(props,
                             node.input_column,  # type: ignore[attr-defined]
                             path, "input")
        # Parent/Child/Descendant preserve their input's row order
        # (§4), so established order keys stay valid; the new node
        # column itself carries no order.
        return props.with_column(
            node.output_column,  # type: ignore[attr-defined]
            ColumnInfo(NODE))

    def _content(self, node: object, path: str,
                 children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        self._require_column(props,
                             node.input_column,  # type: ignore[attr-defined]
                             path, "input")
        container = node.container  # type: ignore[attr-defined]
        return props.with_column(
            node.output_column,  # type: ignore[attr-defined]
            ColumnInfo(COMPRESSED, container.codec, container.path))

    def _passthrough(self, node: object, path: str,
                     children: list[PlanProperties]) -> PlanProperties:
        return children[0]

    # -- data combination ------------------------------------------------------

    def _select(self, node: object, path: str,
                children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        references = node.references  # type: ignore[attr-defined]
        for name in references or ():
            self._require_column(props, name, path, "predicate")
        kind = node.predicate_kind  # type: ignore[attr-defined]
        column = node.column  # type: ignore[attr-defined]
        if kind is not None:
            if kind not in PREDICATE_KINDS:
                self._report(
                    "plan.invalid-metadata", path,
                    f"unknown predicate kind {kind!r}",
                    f"use one of {', '.join(PREDICATE_KINDS)}")
                return props
            info = props.column(column) if column is not None else None
            if info is not None and info.kind == COMPRESSED:
                capabilities = info.capabilities
                assert capabilities is not None
                if not capabilities.supports(kind):
                    self._report(
                        _CAPABILITY_RULES[kind], path,
                        f"predicate kind {kind!r} on column {column!r} "
                        f"compressed with {info.codec.name!r} "  # type: ignore[union-attr]
                        f"(capabilities {capabilities})",
                        "Decompress the column first, or seal the "
                        "container with a codec supporting the "
                        "predicate")
        return props

    def _project(self, node: object, path: str,
                 children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        kept: dict[str, ColumnInfo] = {}
        for name in node.columns:  # type: ignore[attr-defined]
            info = self._require_column(props, name, path, "projected")
            if info is not None:
                kept[name] = info
        order: list[str] = []
        for key in props.order:
            if key not in node.columns:  # type: ignore[attr-defined]
                break
            order.append(key)
        return PlanProperties(kept, tuple(order), props.open_schema)

    def _join_domains(self, path: str, left: ColumnInfo | None,
                      right: ColumnInfo | None,
                      left_name: str | None,
                      right_name: str | None) -> None:
        """Cross-domain check for a declared compressed-domain join."""
        if left is None or right is None:
            return
        if left.kind != COMPRESSED or right.kind != COMPRESSED:
            return
        if left.domain_key() != right.domain_key():
            self._report(
                "plan.cross-domain-compare", path,
                f"join compares {left_name!r} "
                f"({left.codec.name!r} model of "  # type: ignore[union-attr]
                f"{left.container_path!r}) with {right_name!r} "
                f"({right.codec.name!r} model of "  # type: ignore[union-attr]
                f"{right.container_path!r}); the compressed bit "
                "strings are not comparable",
                "group the two containers under one source model "
                "(§3.1) or decompress the keys")

    def _hash_join(self, node: object, path: str,
                   children: list[PlanProperties]) -> PlanProperties:
        left, right = children
        left_info = self._require_column(
            left, node.left_column,  # type: ignore[attr-defined]
            path, "left key")
        right_info = self._require_column(
            right, node.right_column,  # type: ignore[attr-defined]
            path, "right key")
        self._join_domains(path, left_info, right_info,
                           node.left_column,  # type: ignore[attr-defined]
                           node.right_column)  # type: ignore[attr-defined]
        # Probe side streams: output follows the left input's order.
        return PlanProperties.merge(left, right)

    def _merge_join(self, node: object, path: str,
                    children: list[PlanProperties]) -> PlanProperties:
        left, right = children
        left_column = node.left_column  # type: ignore[attr-defined]
        right_column = node.right_column  # type: ignore[attr-defined]
        if left_column is None or right_column is None:
            self._report(
                "plan.merge-join-unverifiable", path,
                "key columns are undeclared; sortedness of the inputs "
                "cannot be proven",
                "pass left_column=/right_column= to MergeJoin")
            return PlanProperties.merge(left, right, order=())
        left_info = self._require_column(left, left_column, path,
                                         "left key")
        right_info = self._require_column(right, right_column, path,
                                          "right key")
        for side, props, column in (("left", left, left_column),
                                    ("right", right, right_column)):
            if props.open_schema and not props.order:
                continue  # untyped input: nothing provable either way
            if not props.ordered_on(column):
                established = (f"established order is "
                               f"{list(props.order)}" if props.order
                               else "no order is established")
                self._report(
                    "plan.merge-join-unordered", path,
                    f"{side} input is not sorted on key column "
                    f"{column!r} ({established}); a one-pass merge "
                    "would drop matches",
                    "insert a Sort, or feed the join from a "
                    "value-ordered ContScan/ContAccess")
        self._join_domains(path, left_info, right_info, left_column,
                           right_column)
        # Merge output is ordered by the (equal) key columns.
        return PlanProperties.merge(left, right,
                                    order=(left_column,))

    def _nested_loop_join(self, node: object, path: str,
                          children: list[PlanProperties]
                          ) -> PlanProperties:
        left, right = children
        merged = PlanProperties.merge(left, right)
        for name in node.references or ():  # type: ignore[attr-defined]
            self._require_column(merged, name, path, "condition")
        return merged

    def _distinct(self, node: object, path: str,
                  children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        for name in node.columns or ():  # type: ignore[attr-defined]
            self._require_column(props, name, path, "key")
        return props

    def _sort(self, node: object, path: str,
              children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        columns = node.columns  # type: ignore[attr-defined]
        for name in columns or ():
            self._require_column(props, name, path, "sort key")
        return PlanProperties(props.columns,
                              tuple(columns) if columns else (),
                              props.open_schema)

    # -- (de)compression / serialization --------------------------------------

    def _decompress(self, node: object, path: str,
                    children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        for name in node.columns:  # type: ignore[attr-defined]
            info = self._require_column(props, name, path,
                                        "decompressed")
            if info is None:
                continue
            if info.kind == COMPRESSED and not info.decompressed:
                props = props.with_column(name, info.decompress())
            elif info.decompressed:
                self._report(
                    "plan.duplicate-decompress", path,
                    f"column {name!r} was already decompressed by an "
                    "upstream Decompress",
                    "decompress each value exactly once, at the top "
                    "of the plan")
            else:
                kind = "a node reference" if info.kind == NODE \
                    else "already plain"
                self._report(
                    "plan.duplicate-decompress", path,
                    f"column {name!r} is {kind}; Decompress has "
                    "nothing to do",
                    "drop the column from the Decompress list")
        return props

    def _xml_serialize(self, node: object, path: str,
                       children: list[PlanProperties]) -> PlanProperties:
        props = children[0]
        for name in node.columns:  # type: ignore[attr-defined]
            info = self._require_column(props, name, path,
                                        "serialized")
            if info is not None and info.kind == COMPRESSED \
                    and not info.decompressed:
                self._report(
                    "plan.missing-decompress", path,
                    f"column {name!r} (codec "
                    f"{info.codec.name!r}) reaches serialization "  # type: ignore[union-attr]
                    "still compressed",
                    "insert Decompress([...]) below XMLSerialize")
            serialized = ColumnInfo(PLAIN, decompressed=True) \
                if info is None else info.decompress()
            props = props.with_column(name, serialized)
        return props

"""Compile a query's chosen evaluation strategies into a plan sketch.

The declarative engine (:mod:`repro.query.engine`) never materializes a
physical operator tree — it interprets the AST, consulting the
optimizer for access paths.  To gate execution on the Tier-A plan
verifier anyway, this module re-derives those optimizer decisions
(exactly the analysis :mod:`repro.query.explain` renders) and builds
the *plan sketch* they imply from real
:mod:`repro.query.physical` operators: ``ContAccess`` + ``Parent``
hops for range plans, ``HashJoin`` for equality conjuncts,
``StructureSummaryAccess`` for absolute paths, one ``Decompress``
feeding ``XMLSerialize`` on top.  The sketch is verified, never
executed.

:func:`verify_query` is the engine's pre-execution gate and the
``repro lint-plan`` CLI entry point.
"""

from __future__ import annotations

from repro.lint.diagnostics import PlanDiagnostic
from repro.lint.plan import verify_plan
from repro.query.ast import (
    Comparison,
    Expression,
    FLWOR,
    ForClause,
    LetClause,
    PathExpr,
    Step,
)
from repro.query.context import EvaluationStats
from repro.query.optimizer import (
    RangePlan,
    find_join_plan,
    find_range_plan,
    flatten_conjuncts,
    free_vars,
    is_absolute_simple_path,
)
from repro.query.physical import (
    ContAccess,
    Decompress,
    HashJoin,
    NestedLoopJoin,
    Operator,
    Parent,
    Select,
    StructureSummaryAccess,
    XMLSerialize,
)
from repro.storage.repository import CompressedRepository
from repro.storage.summary import TEXT_STEP


def verify_query(expr: Expression, repository: CompressedRepository,
                 collection: dict[str, CompressedRepository] | None = None
                 ) -> list[PlanDiagnostic]:
    """Statically verify the plan sketches a query would evaluate as."""
    diagnostics: list[PlanDiagnostic] = []
    for sketch in compile_plan_sketches(expr, repository, collection):
        diagnostics.extend(verify_plan(sketch))
    return diagnostics


def compile_plan_sketches(expr: Expression,
                          repository: CompressedRepository,
                          collection: dict[str, CompressedRepository]
                          | None = None) -> list[Operator]:
    """Physical plan sketches for every FLWOR/path in ``expr``."""
    compiler = _SketchCompiler(repository, collection or {})
    return compiler.compile(expr)


class OpaqueSource(Operator):
    """Stand-in for a for-clause source the compiler cannot type
    (binding-dependent or predicate-laden paths); the verifier treats
    it as an open schema."""

    def __init__(self, label: str):
        self.label = label

    def _rows(self):
        return iter(())

    def _batches(self, size):
        return iter(())


class _SketchCompiler:
    def __init__(self, repository: CompressedRepository,
                 collection: dict[str, CompressedRepository]):
        self._repository = repository
        self._collection = collection

    def _repo(self, doc: str | None) -> CompressedRepository:
        if doc is None:
            return self._repository
        return self._collection.get(doc, self._repository)

    def compile(self, expr: Expression) -> list[Operator]:
        if isinstance(expr, FLWOR):
            sketches = [self._flwor(expr)]
            sketches.extend(self.compile(expr.result))
            return sketches
        if isinstance(expr, PathExpr) and expr.start is None \
                and is_absolute_simple_path(expr) and expr.steps:
            repo = self._repo(expr.document)
            access = StructureSummaryAccess(
                repo, [(s.axis, s.test) for s in expr.steps], "$path")
            return [XMLSerialize(access, ("$path",))]
        return []

    # -- FLWOR ----------------------------------------------------------------

    def _flwor(self, flwor: FLWOR) -> Operator:
        plan: Operator | None = None
        compressed_columns: list[str] = []
        pending = flatten_conjuncts(flwor.where)
        bound: set[str] = set()
        for clause in flwor.clauses:
            if isinstance(clause, LetClause):
                bound.add(clause.var)
                continue
            assert isinstance(clause, ForClause)
            decidable = [c for c in pending
                         if free_vars(c) <= bound | {clause.var}]
            pending = [c for c in pending if c not in decidable]
            joined = any(
                find_join_plan(c, clause.var, bound) is not None
                for c in decidable)
            clause_plan = self._clause_plan(clause, decidable,
                                            compressed_columns)
            if plan is None:
                plan = clause_plan
            elif joined:
                # Equality conjunct against bound variables: the engine
                # probes a cached build index.  Key expressions are
                # general, so the sketch leaves the columns undeclared.
                plan = HashJoin(plan, clause_plan,
                                left_key=None, right_key=None)
            else:
                plan = NestedLoopJoin(plan, clause_plan, None)
            bound.add(clause.var)
        if plan is None:
            plan = OpaqueSource("empty FLWOR")
        if compressed_columns:
            plan = Decompress(plan, list(compressed_columns),
                              EvaluationStats())
        return XMLSerialize(plan, tuple(compressed_columns))

    def _clause_plan(self, clause: ForClause,
                     decidable: list[Expression],
                     compressed_columns: list[str]) -> Operator:
        """Access path for one for-clause (mirrors the evaluator)."""
        source = clause.source
        for conjunct in decidable:
            if free_vars(conjunct) != {clause.var}:
                continue
            range_plan = find_range_plan(conjunct, clause.var)
            if range_plan is None:
                continue
            ranged = self._range_sketch(clause, source, conjunct,
                                        range_plan,
                                        compressed_columns)
            if ranged is not None:
                return ranged
        if isinstance(source, PathExpr) and source.start is None \
                and is_absolute_simple_path(source) and source.steps:
            repo = self._repo(source.document)
            return StructureSummaryAccess(
                repo, [(s.axis, s.test) for s in source.steps],
                f"${clause.var}")
        return OpaqueSource(f"${clause.var} in opaque source")

    def _range_sketch(self, clause: ForClause, source: Expression,
                      conjunct: Expression, plan: RangePlan,
                      compressed_columns: list[str]
                      ) -> Operator | None:
        """ContAccess + Parent hops + predicate re-check, or ``None``
        when the bottom-up strategy does not apply to this source."""
        if not (isinstance(source, PathExpr) and source.start is None
                and is_absolute_simple_path(source)):
            return None
        repo = self._repo(source.document)
        steps = [_summary_step(s) for s in source.steps]
        steps += [_summary_step(s) for s in plan.leaf_steps]
        container_path = None
        for leaf in repo.resolve_path(steps):
            if leaf.container_path is not None:
                container_path = leaf.container_path
                break
        if container_path is None:
            return None
        owner_column = f"${clause.var}~owner"
        value_column = f"${clause.var}~value"
        node: Operator = ContAccess(
            repo, container_path, owner_column, value_column,
            plan.low, plan.high, plan.low_inclusive,
            plan.high_inclusive)
        input_column = owner_column
        for hop in range(plan.ascend):
            output_column = (f"${clause.var}" if hop == plan.ascend - 1
                             else f"${clause.var}~up{hop + 1}")
            node = Parent(node, repo, input_column, output_column)
            input_column = output_column
        # The engine re-checks the conjunct after the interval access;
        # in the compressed domain when the codec's capability tuple
        # allows it, after an explicit Decompress otherwise.
        kind = _predicate_kind(conjunct)
        codec = repo.container(container_path).codec
        if kind is not None and codec.properties.supports(kind):
            node = Select(node, None, column=value_column,
                          predicate_kind=kind)
            compressed_columns.append(value_column)
        else:
            node = Decompress(node, [value_column], EvaluationStats())
            node = Select(node, None, column=value_column)
        return node


def _predicate_kind(conjunct: Expression) -> str | None:
    """The §3.2 capability kind a comparison conjunct needs."""
    if not isinstance(conjunct, Comparison):
        return None
    if conjunct.op == "=":
        return "eq"
    if conjunct.op in ("<", "<=", ">", ">="):
        return "ineq"
    return None


def _summary_step(step: Step) -> tuple[str, str]:
    if step.axis == "attribute":
        return ("child", "@" + step.test)
    if step.test == "text()":
        return (step.axis, TEXT_STEP)
    return (step.axis, step.test)

"""Tier B: ``ast``-based source lint for engine-wide invariants.

Unlike the plan verifier (which checks one query's plan), this tier
checks the *code*: every physical operator routes iteration through the
traced base ``__iter__`` and implements ``_rows``; every codec wired
into :mod:`repro.compression.registry` declares its §3.2
:class:`~repro.compression.base.CompressionProperties` capability
tuple; decompression inside :mod:`repro.query.physical` happens only at
the sanctioned ``TextContent``/``Decompress`` sites; every
``threading`` primitive is created where the Tier-C concurrency
inventory (:mod:`repro.lint.concurrency`) can see it; and the usual
Python footguns (bare ``except:``, mutable default arguments) stay out
of ``src/repro``.

Entry point: :func:`lint_paths`, used by ``repro lint-src`` and CI.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.lint.diagnostics import SourceDiagnostic

#: physical-operator classes allowed to call ``.decode(...)`` directly:
#: the two sanctioned decompression sites of the plan algebra (§4).
SANCTIONED_DECODE_SITES = frozenset({"TextContent", "Decompress"})

#: constructor names whose call as a default argument is mutable.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})

#: threading primitives the Tier-C inventory tracks; creating one
#: anywhere the inventory cannot see it defeats the lock analysis.
_THREADING_PRIMITIVES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread",
})

#: the root of the codec hierarchy; declaring ``properties`` there does
#: not count as a concrete declaration.
_CODEC_ROOT = "Codec"


class _ClassRecord:
    """One class definition seen anywhere in the linted tree."""

    __slots__ = ("name", "bases", "file", "line",
                 "declares_properties", "declares_rows",
                 "declares_iter", "declares_batches")

    def __init__(self, node: ast.ClassDef, file: str):
        self.name = node.name
        self.bases = tuple(_base_name(b) for b in node.bases)
        self.file = file
        self.line = node.lineno
        self.declares_properties = _assigns(node, "properties")
        self.declares_rows = _defines(node, "_rows")
        self.declares_iter = _defines(node, "__iter__")
        self.declares_batches = _defines(node, "_batches")


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _assigns(node: ast.ClassDef, name: str) -> bool:
    """Does the class body assign ``name`` at the top level?"""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == name:
                return True
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == name:
                # a ``properties`` method/property also counts.
                return True
    return False


def _defines(node: ast.ClassDef, name: str) -> bool:
    """Does the class body define method ``name``?"""
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == name
        for stmt in node.body)


def _python_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # de-duplicate while keeping order stable.
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def lint_paths(paths: Iterable[str | Path]
               ) -> list[SourceDiagnostic]:
    """Lint all Python files under ``paths``; returns diagnostics.

    Runs two passes: the first builds a cross-file class table (needed
    to resolve codec ancestries and the registry contents), the second
    applies the per-file rules.
    """
    files = _python_files(paths)
    trees: list[tuple[Path, ast.Module]] = []
    diagnostics: list[SourceDiagnostic] = []
    for file in files:
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"),
                             filename=str(file))
        except SyntaxError as exc:
            diagnostics.append(SourceDiagnostic.make(
                "src.bare-except", str(file), exc.lineno or 0,
                f"file does not parse: {exc.msg}"))
            continue
        trees.append((file, tree))

    classes: dict[str, _ClassRecord] = {}
    registered: dict[str, tuple[str, int]] = {}
    for file, tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassRecord(node, str(file))
        if file.name == "registry.py":
            registered.update(_registered_codecs(tree, str(file)))

    for file, tree in trees:
        diagnostics.extend(_lint_file(file, tree))
    diagnostics.extend(_check_operators(classes))
    diagnostics.extend(_check_codec_properties(classes, registered))
    diagnostics.sort(key=lambda d: (d.file, d.line, d.rule))
    return diagnostics


# -- registry resolution ------------------------------------------------------

def _registered_codecs(tree: ast.Module, file: str
                       ) -> dict[str, tuple[str, int]]:
    """Class names appearing as values of the ``_REGISTRY`` literal or
    passed to ``register_codec``/``_REGISTRY[...] = cls``."""
    found: dict[str, tuple[str, int]] = {}
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "_REGISTRY"
                        for t in node.targets)
                and isinstance(node.value, ast.Dict)):
            for value in node.value.values:
                name = _base_name(value)
                if name is not None:
                    found[name] = (file, value.lineno)
    return found


def _codec_declares_properties(record: _ClassRecord,
                               classes: dict[str, _ClassRecord]
                               ) -> bool:
    """Does the codec class (or an ancestor below ``Codec``) declare a
    concrete ``properties``?"""
    seen: set[str] = set()
    stack = [record.name]
    while stack:
        name = stack.pop()
        if name in seen or name == _CODEC_ROOT:
            continue
        seen.add(name)
        current = classes.get(name)
        if current is None:
            continue
        if current.declares_properties:
            return True
        stack.extend(b for b in current.bases if b is not None)
    return False


def _check_codec_properties(classes: dict[str, _ClassRecord],
                            registered: dict[str, tuple[str, int]]
                            ) -> list[SourceDiagnostic]:
    diagnostics: list[SourceDiagnostic] = []
    for name, (reg_file, reg_line) in sorted(registered.items()):
        record = classes.get(name)
        if record is None:
            diagnostics.append(SourceDiagnostic.make(
                "src.codec-properties", reg_file, reg_line,
                f"registered codec {name} is not defined in the "
                "linted tree"))
            continue
        if not _codec_declares_properties(record, classes):
            diagnostics.append(SourceDiagnostic.make(
                "src.codec-properties", record.file, record.line,
                f"codec {name} does not declare "
                "CompressionProperties",
                hint="add a class-level `properties = "
                     "CompressionProperties(...)` capability tuple "
                     "(§3.2)"))
    return diagnostics


# -- operator invariants ------------------------------------------------------

def _check_operators(classes: dict[str, _ClassRecord]
                     ) -> list[SourceDiagnostic]:
    diagnostics: list[SourceDiagnostic] = []
    for record in classes.values():
        if "Operator" not in record.bases:
            continue
        if not record.declares_rows and not record.declares_batches:
            diagnostics.append(SourceDiagnostic.make(
                "src.operator-rows", record.file, record.line,
                f"operator {record.name} implements neither _batches "
                "nor _rows",
                hint="operators yield RecordBatches from _batches "
                     "(or rows from _rows); __iter__/batches() on "
                     "the base route them through _traced"))
        elif record.declares_rows and not record.declares_batches:
            diagnostics.append(SourceDiagnostic.make(
                "src.operator-rows-no-batches", record.file,
                record.line,
                f"operator {record.name} implements only the "
                "deprecated row-pull _rows protocol",
                hint="implement _batches(size) (DESIGN.md §13); "
                     "return self._compat_batches(size) to chunk an "
                     "inherently row-at-a-time algorithm"))
        if record.declares_iter:
            diagnostics.append(SourceDiagnostic.make(
                "src.operator-iter-override", record.file,
                record.line,
                f"operator {record.name} overrides __iter__, "
                "bypassing telemetry",
                hint="implement _rows and inherit Operator.__iter__"))
    return diagnostics


# -- per-file rules -----------------------------------------------------------

def _lint_file(file: Path, tree: ast.Module
               ) -> list[SourceDiagnostic]:
    diagnostics: list[SourceDiagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            diagnostics.append(SourceDiagnostic.make(
                "src.bare-except", str(file), node.lineno,
                "bare except: catches SystemExit/KeyboardInterrupt "
                "and hides typed errors",
                hint="catch a concrete exception (see repro.errors)"))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            diagnostics.extend(_check_defaults(file, node))
    diagnostics.extend(_check_threading_primitives(file, tree))
    if file.name == "physical.py" and "query" in file.parts:
        diagnostics.extend(_check_raw_decode(file, tree))
    return diagnostics


def _threading_calls(tree: ast.Module) -> set[int]:
    """``id()`` of every Call node constructing a threading primitive
    (``threading.Lock()`` or a from-imported ``Lock()``)."""
    module_aliases = {"threading"} if any(
        isinstance(n, ast.Import)
        and any(a.name == "threading" for a in n.names)
        for n in ast.walk(tree)) else set()
    from_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    module_aliases.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom) and \
                node.module == "threading":
            for alias in node.names:
                if alias.name in _THREADING_PRIMITIVES:
                    from_names.add(alias.asname or alias.name)
    calls: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in module_aliases and \
                func.attr in _THREADING_PRIMITIVES:
            calls.add(id(node))
        elif isinstance(func, ast.Name) and func.id in from_names:
            calls.add(id(node))
    return calls


def _check_threading_primitives(file: Path, tree: ast.Module
                                ) -> list[SourceDiagnostic]:
    """Flag threading primitives created where the Tier-C inventory
    (:mod:`repro.lint.concurrency`) cannot see them.

    Inventoried positions: a module-level ``NAME = ...`` constant, a
    class-body constant, a ``self.attr = ...`` assignment, or a local
    variable the same function then publishes as ``self.attr =
    name``.  Anything else (a lock born inside a loop, passed straight
    into a call, stuffed in a dict) is invisible to the static lock
    graph and the runtime watchdog.
    """
    calls = _threading_calls(tree)
    if not calls:
        return []
    sanctioned: set[int] = set()

    def sanction(value: ast.expr) -> None:
        for node in ast.walk(value):
            if id(node) in calls:
                sanctioned.add(id(node))

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and all(
                isinstance(t, ast.Name) for t in stmt.targets):
            sanction(stmt.value)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    sanction(stmt.value)
                elif isinstance(stmt, ast.AnnAssign) and \
                        stmt.value is not None:
                    sanction(stmt.value)
        elif isinstance(node,
                        (ast.FunctionDef, ast.AsyncFunctionDef)):
            published: set[str] = set()
            for child in ast.walk(node):
                if not isinstance(child, ast.Assign):
                    continue
                for target in child.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        sanction(child.value)
                        if isinstance(child.value, ast.Name):
                            published.add(child.value.id)
            for child in ast.walk(node):
                if isinstance(child, ast.Assign) and all(
                        isinstance(t, ast.Name)
                        and t.id in published
                        for t in child.targets) and child.targets:
                    sanction(child.value)
    diagnostics: list[SourceDiagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and id(node) in calls and \
                id(node) not in sanctioned:
            diagnostics.append(SourceDiagnostic.make(
                "src.untracked-threading-primitive", str(file),
                node.lineno,
                "threading primitive created outside the "
                "inventoried positions",
                hint="bind it as a module constant, class-body "
                     "constant or self-attribute so the Tier-C lock "
                     "analysis and the watchdog can see it"))
    return diagnostics


def _check_defaults(file: Path,
                    node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> list[SourceDiagnostic]:
    diagnostics: list[SourceDiagnostic] = []
    defaults = list(node.args.defaults) + [
        d for d in node.args.kw_defaults if d is not None]
    for default in defaults:
        mutable = isinstance(default,
                             (ast.List, ast.Dict, ast.Set)) or (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in _MUTABLE_FACTORIES)
        if mutable:
            diagnostics.append(SourceDiagnostic.make(
                "src.mutable-default", str(file), default.lineno,
                f"mutable default argument in {node.name}()",
                hint="default to None and construct inside the body"))
    return diagnostics


def _check_raw_decode(file: Path, tree: ast.Module
                      ) -> list[SourceDiagnostic]:
    """``.decode(...)`` calls inside operator bodies in physical.py
    outside the sanctioned TextContent/Decompress sites."""
    diagnostics: list[SourceDiagnostic] = []
    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        if not any(_base_name(b) == "Operator" for b in cls.bases):
            continue
        if cls.name in SANCTIONED_DECODE_SITES:
            continue
        for node in ast.walk(cls):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "decode"):
                diagnostics.append(SourceDiagnostic.make(
                    "src.raw-decode", str(file), node.lineno,
                    f"operator {cls.name} decodes values inline",
                    hint="decompression belongs to the explicit "
                         "Decompress/TextContent operators (§4)"))
    return diagnostics

"""Tier C: whole-program lock-discipline analysis.

The serving layer (PR 4) and the observability stack (PRs 1/6) hold
roughly twenty ``threading`` primitives across nine modules; ROADMAP
item 3 (sharded multi-process serving) will multiply that surface.
This pass makes the locking *discipline* machine-checked, the way
Tier A checks plans and Tier B checks source invariants:

* **inventory** — every ``threading.Lock/RLock/Event/Condition/
  Semaphore/Thread`` created under the linted tree, identified as
  ``Class.attr`` (instance locks) or ``module:NAME`` (module-level
  locks);
* **static lock-acquisition graph** — an edge ``A -> B`` whenever some
  code path acquires ``B`` (via ``with`` nesting or a resolved method
  call chain) while holding ``A``.  A cycle means two paths take the
  same locks in opposite orders: a deadlock waiting for the right
  interleaving (``conc.lock-order-cycle``).  The acyclic graph's
  longest-path *levels* are the repo's documented lock hierarchy, and
  :meth:`ConcurrencyReport.static_edges` feeds the runtime
  :class:`~repro.obs.lockwatch.LockOrderWatchdog` cross-check;
* **release discipline** — a bare ``lock.acquire()`` whose release is
  not guaranteed on exception paths (``with`` or an immediately
  following ``try/finally: release()``) is flagged
  (``conc.acquire-no-release``);
* **guarded-field registry** — shared mutable attributes declared via
  a class-level ``GUARDED_BY = {"field": "_lock"}`` map (or a
  trailing ``# guarded-by: _lock`` comment on the ``__init__``
  assignment) must only be touched inside a ``with`` on the named
  lock (``conc.unguarded-field``).  Two escape hatches, both explicit
  in source: ``# holds: _lock`` on a ``def`` line declares a helper
  that is only called with the lock held (call sites are checked:
  ``conc.holds-violation``), and ``# lockfree-read`` on a *read* site
  documents the double-checked-locking fast path (mutations can never
  be waived).

Resolution is deliberately best-effort: calls are followed through
``self`` methods, module functions, intra-package imports, annotated
parameters and ``self.attr = ClassName(...)`` attribute types.  What
cannot be resolved is skipped — the analysis under-approximates the
call graph but never guesses, so a diagnostic is actionable.

Entry point: :func:`lint_concurrency`, used by
``repro lint-concurrency`` and the CI ``concurrency-lint`` job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.lint.diagnostics import SourceDiagnostic

#: every threading primitive the inventory tracks.
PRIMITIVE_KINDS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread",
})

#: the subset that participates in the acquisition graph.
LOCK_KINDS = frozenset({"Lock", "RLock"})

#: kinds a thread may legally re-acquire while holding.
REENTRANT_KINDS = frozenset({"RLock"})

#: method names that mutate their receiver — a ``# lockfree-read``
#: waiver never applies when the guarded field receives one of these.
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update", "move_to_end",
    "sort", "reverse", "write", "writelines",
})

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Primitive:
    """One inventoried threading primitive."""

    kind: str
    identity: str
    file: str
    line: int

    @property
    def reentrant(self) -> bool:
        return self.kind in REENTRANT_KINDS

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "identity": self.identity,
                "file": self.file, "line": self.line}


@dataclass(frozen=True)
class LockEdge:
    """``source`` is held at ``file:line`` when ``target`` is acquired
    (``via`` names the function whose acquisition closes the edge)."""

    source: str
    target: str
    file: str
    line: int
    via: str

    def to_dict(self) -> dict[str, object]:
        return {"source": self.source, "target": self.target,
                "file": self.file, "line": self.line, "via": self.via}


@dataclass
class ConcurrencyReport:
    """Everything the Tier-C pass knows about the linted tree."""

    primitives: list[Primitive]
    edges: list[LockEdge]
    levels: dict[str, int]
    diagnostics: list[SourceDiagnostic]

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    def static_edges(self) -> set[tuple[str, str]]:
        """The acquisition-order edges, for the runtime watchdog."""
        return {(edge.source, edge.target) for edge in self.edges}

    def to_dict(self) -> dict[str, object]:
        return {
            "primitives": [p.to_dict() for p in self.primitives],
            "edges": [e.to_dict() for e in self.edges],
            "levels": dict(sorted(self.levels.items())),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "ok": self.ok,
        }


# -- collection ---------------------------------------------------------------


class _Module:
    """One parsed file plus its name-resolution context."""

    __slots__ = ("path", "stem", "tree", "lines", "threading_aliases",
                 "primitive_names", "module_aliases", "imported_names",
                 "functions")

    def __init__(self, path: Path, tree: ast.Module, source: str):
        self.path = path
        self.stem = path.stem
        self.tree = tree
        self.lines = source.splitlines()
        #: names bound to the ``threading`` module itself.
        self.threading_aliases: set[str] = set()
        #: name -> kind, for ``from threading import Lock [as L]``.
        self.primitive_names: dict[str, str] = {}
        #: local name -> module stem, for intra-package module imports.
        self.module_aliases: dict[str, str] = {}
        #: local name -> (module stem, original name) from-imports.
        self.imported_names: dict[str, tuple[str, str]] = {}
        #: module-level function name -> node.
        self.functions: dict[str, _AnyFunc] = {}

    def line_comment(self, lineno: int) -> str:
        """The raw source line (1-based), for comment annotations."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class _Class:
    """One class definition and its concurrency-relevant facts."""

    __slots__ = ("name", "module", "node", "bases", "methods", "locks",
                 "primitives", "attr_types", "guarded", "holds")

    def __init__(self, node: ast.ClassDef, module: _Module):
        self.name = node.name
        self.module = module
        self.node = node
        self.bases = tuple(
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else ""
            for base in node.bases)
        self.methods: dict[str, _AnyFunc] = {}
        #: lock-like attributes only (participate in the graph).
        self.locks: dict[str, Primitive] = {}
        #: every inventoried primitive attribute (threads/events too).
        self.primitives: dict[str, Primitive] = {}
        #: attribute -> class name, best-effort.
        self.attr_types: dict[str, str] = {}
        #: guarded field -> guarding lock attribute.
        self.guarded: dict[str, str] = {}
        #: method name -> lock attrs the caller must hold.
        self.holds: dict[str, frozenset[str]] = {}

    def lock_identity(self, attr: str) -> str | None:
        primitive = self.locks.get(attr)
        return primitive.identity if primitive is not None else None


class _Analysis:
    """Shared state of one :func:`lint_concurrency` run."""

    def __init__(self) -> None:
        self.modules: list[_Module] = []
        self.stems: dict[str, _Module] = {}
        self.classes: dict[str, _Class] = {}
        #: module-level locks: (stem, name) -> Primitive.
        self.module_locks: dict[tuple[str, str], Primitive] = {}
        self.primitives: list[Primitive] = []
        #: funcid -> scanner-ready context.
        self.functions: dict[str, "_Function"] = {}
        self.diagnostics: list[SourceDiagnostic] = []
        #: funcid -> lock identities it (transitively) may acquire.
        self.may_acquire: dict[str, set[str]] = {}
        #: all (caller, callee, held, file, line) call observations.
        self.calls: list[tuple[str, str, tuple[str, ...], str, int]] = []
        #: direct with-nesting edges.
        self.edges: dict[tuple[str, str], LockEdge] = {}
        #: identity -> Primitive for every lock in the graph.
        self.locks_by_identity: dict[str, Primitive] = {}


class _Function:
    """One function/method plus the context needed to scan it."""

    __slots__ = ("funcid", "node", "cls", "module", "nested",
                 "assumed_held")

    def __init__(self, funcid: str, node: _AnyFunc,
                 cls: _Class | None, module: _Module,
                 assumed_held: tuple[str, ...] = ()):
        self.funcid = funcid
        self.node = node
        self.cls = cls
        self.module = module
        #: nested def name -> funcid.
        self.nested: dict[str, str] = {}
        #: identities held on entry (``# holds:`` annotation).
        self.assumed_held = assumed_held


def _python_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _primitive_kind(call: ast.expr, module: _Module) -> str | None:
    """``threading.Lock()``-shaped expression -> primitive kind."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Name) and \
            func.value.id in module.threading_aliases and \
            func.attr in PRIMITIVE_KINDS:
        return func.attr
    if isinstance(func, ast.Name) and \
            func.id in module.primitive_names:
        return module.primitive_names[func.id]
    return None


def _primitive_in(value: ast.expr, module: _Module
                  ) -> tuple[str, ast.expr] | None:
    """The primitive construction inside ``value`` (IfExp branches
    included), as ``(kind, call_node)``."""
    candidates: list[ast.expr] = [value]
    if isinstance(value, ast.IfExp):
        candidates = [value.body, value.orelse]
    for candidate in candidates:
        kind = _primitive_kind(candidate, module)
        if kind is not None:
            return kind, candidate
    return None


def _collect_imports(module: _Module, stems: set[str]) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "threading":
                    module.threading_aliases.add(local)
                elif alias.name.split(".")[-1] in stems:
                    module.module_aliases[local] = \
                        alias.name.split(".")[-1]
        elif isinstance(node, ast.ImportFrom):
            source = (node.module or "").split(".")[-1]
            for alias in node.names:
                local = alias.asname or alias.name
                if node.module == "threading":
                    if alias.name in PRIMITIVE_KINDS:
                        module.primitive_names[local] = alias.name
                elif alias.name in stems:
                    module.module_aliases[local] = alias.name
                elif source:
                    module.imported_names[local] = (source, alias.name)


def _annotation_class(annotation: ast.expr | None,
                      classes: dict[str, _Class]) -> str | None:
    """The single known class an annotation names, if any."""
    if annotation is None:
        return None
    names: list[str] = []
    stack: list[ast.expr] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Constant) and \
                isinstance(node.value, str):
            names.append(node.value.strip().strip('"'))
        elif isinstance(node, ast.BinOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    known = [name for name in names if name in classes]
    return known[0] if len(known) == 1 else None


def _parse_guard_comment(line: str, marker: str) -> list[str]:
    """Names after ``marker`` in a trailing comment, or []."""
    index = line.find(marker)
    if index < 0:
        return []
    tail = line[index + len(marker):]
    return [part.strip() for part in tail.split(",") if part.strip()]


def _collect_class_facts(analysis: _Analysis) -> None:
    """Second pass: locks, attribute types, guards per class."""
    for cls in analysis.classes.values():
        module = cls.module
        for stmt in cls.node.body:
            if isinstance(stmt,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = stmt
                holds = _parse_guard_comment(
                    module.line_comment(stmt.lineno), "# holds:")
                if holds:
                    cls.holds[stmt.name] = frozenset(holds)
            elif isinstance(stmt, ast.Assign):
                _class_body_assign(cls, stmt, module)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    _register_primitive_attr(
                        cls, stmt.target.id, stmt.value, module)
                type_name = _annotation_class(stmt.annotation,
                                              analysis.classes)
                if type_name is not None:
                    cls.attr_types[stmt.target.id] = type_name
        for method in cls.methods.values():
            _collect_method_facts(cls, method, analysis)


def _class_body_assign(cls: _Class, stmt: ast.Assign,
                       module: _Module) -> None:
    for target in stmt.targets:
        if not isinstance(target, ast.Name):
            continue
        if target.id == "GUARDED_BY" and \
                isinstance(stmt.value, ast.Dict):
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str) and \
                        isinstance(value, ast.Constant) and \
                        isinstance(value.value, str):
                    cls.guarded[key.value] = value.value
            continue
        _register_primitive_attr(cls, target.id, stmt.value, module)


def _register_primitive_attr(cls: _Class, attr: str, value: ast.expr,
                             module: _Module) -> None:
    found = _primitive_in(value, module)
    if found is None or attr in cls.primitives:
        return
    kind, call = found
    primitive = Primitive(kind, f"{cls.name}.{attr}",
                          str(module.path), call.lineno)
    cls.primitives[attr] = primitive
    if kind in LOCK_KINDS:
        cls.locks[attr] = primitive


def _collect_method_facts(cls: _Class, method: _AnyFunc,
                          analysis: _Analysis) -> None:
    """Primitive attributes, attribute types and guarded-by comments
    declared by assignments inside one method (usually __init__)."""
    module = cls.module
    param_types: dict[str, str] = {}
    for arg in (list(method.args.posonlyargs) + list(method.args.args)
                + list(method.args.kwonlyargs)):
        type_name = _annotation_class(arg.annotation, analysis.classes)
        if type_name is not None:
            param_types[arg.arg] = type_name
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            attr = target.attr
            _register_primitive_attr(cls, attr, node.value, module)
            guards = _parse_guard_comment(
                module.line_comment(node.lineno), "# guarded-by:")
            if guards:
                cls.guarded[attr] = guards[0]
            type_name = _value_class(node.value, param_types,
                                     analysis.classes)
            if type_name is not None and attr not in cls.attr_types:
                cls.attr_types[attr] = type_name


def _value_class(value: ast.expr, param_types: dict[str, str],
                 classes: dict[str, _Class]) -> str | None:
    """The class an assigned expression constructs or forwards."""
    candidates: list[ast.expr] = [value]
    if isinstance(value, ast.IfExp):
        candidates = [value.body, value.orelse]
    for candidate in candidates:
        if isinstance(candidate, ast.Call) and \
                isinstance(candidate.func, ast.Name) and \
                candidate.func.id in classes:
            return candidate.func.id
        if isinstance(candidate, ast.Name) and \
                candidate.id in param_types:
            return param_types[candidate.id]
    return None


# -- function registry --------------------------------------------------------


def _register_functions(analysis: _Analysis) -> None:
    for module in analysis.modules:
        for stmt in module.tree.body:
            if isinstance(stmt,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[stmt.name] = stmt
                _register_function(analysis,
                                   f"{module.stem}:{stmt.name}",
                                   stmt, None, module)
    for cls in analysis.classes.values():
        for name, method in cls.methods.items():
            holds = cls.holds.get(name, frozenset())
            assumed: list[str] = []
            for attr in sorted(holds):
                identity = cls.lock_identity(attr)
                if identity is None:
                    analysis.diagnostics.append(SourceDiagnostic.make(
                        "conc.unknown-guard", str(cls.module.path),
                        method.lineno,
                        f"{cls.name}.{name} declares `# holds: "
                        f"{attr}` but {cls.name}.{attr} is not an "
                        "inventoried lock"))
                else:
                    assumed.append(identity)
            _register_function(analysis, f"{cls.name}.{name}",
                               method, cls, cls.module,
                               tuple(assumed))


def _register_function(analysis: _Analysis, funcid: str,
                       node: _AnyFunc, cls: _Class | None,
                       module: _Module,
                       assumed_held: tuple[str, ...] = ()) -> None:
    function = _Function(funcid, node, cls, module, assumed_held)
    analysis.functions[funcid] = function
    for child in ast.walk(node):
        if child is node or not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nested_id = f"{funcid}.<locals>.{child.name}"
        if child.name not in function.nested:
            function.nested[child.name] = nested_id
            _register_function(analysis, nested_id, child, cls,
                               module)


# -- the scan -----------------------------------------------------------------


class _Scanner:
    """Walks one function with the current held-lock set."""

    def __init__(self, analysis: _Analysis, function: _Function):
        self.analysis = analysis
        self.function = function
        self.cls = function.cls
        self.module = function.module
        self.direct: set[str] = set()
        #: local variable -> class name.
        self.var_types: dict[str, str] = {}
        node = function.node
        for arg in (list(node.args.posonlyargs) + list(node.args.args)
                    + list(node.args.kwonlyargs)):
            type_name = _annotation_class(arg.annotation,
                                          self.analysis.classes)
            if type_name is not None:
                self.var_types[arg.arg] = type_name

    # -- resolution -----------------------------------------------------------

    def resolve_lock(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            key = (self.module.stem, expr.id)
            primitive = self.analysis.module_locks.get(key)
            return primitive.identity if primitive is not None else None
        if not isinstance(expr, ast.Attribute):
            return None
        owner = expr.value
        if isinstance(owner, ast.Name):
            if owner.id == "self" and self.cls is not None:
                return self.cls.lock_identity(expr.attr)
            type_name = self.var_types.get(owner.id)
            if type_name is not None:
                owner_cls = self.analysis.classes.get(type_name)
                if owner_cls is not None:
                    return owner_cls.lock_identity(expr.attr)
            return None
        if isinstance(owner, ast.Attribute) and \
                isinstance(owner.value, ast.Name) and \
                owner.value.id == "self" and self.cls is not None:
            type_name = self.cls.attr_types.get(owner.attr)
            if type_name is not None:
                owner_cls = self.analysis.classes.get(type_name)
                if owner_cls is not None:
                    return owner_cls.lock_identity(expr.attr)
        return None

    def _method_funcid(self, class_name: str,
                       method: str) -> str | None:
        seen: set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = self.analysis.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return f"{name}.{method}"
            stack.extend(base for base in cls.bases if base)
        return None

    def resolve_call(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.function.nested:
                return self.function.nested[name]
            if name in self.analysis.classes:
                return self._method_funcid(name, "__init__")
            if name in self.module.functions:
                return f"{self.module.stem}:{name}"
            imported = self.module.imported_names.get(name)
            if imported is not None:
                funcid = f"{imported[0]}:{imported[1]}"
                if funcid in self.analysis.functions:
                    return funcid
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id == "self" and self.cls is not None:
                return self._method_funcid(self.cls.name, func.attr)
            alias = self.module.module_aliases.get(owner.id)
            if alias is not None:
                funcid = f"{alias}:{func.attr}"
                if funcid in self.analysis.functions:
                    return funcid
            type_name = self.var_types.get(owner.id)
            if type_name is not None:
                return self._method_funcid(type_name, func.attr)
            return None
        if isinstance(owner, ast.Attribute) and \
                isinstance(owner.value, ast.Name) and \
                owner.value.id == "self" and self.cls is not None:
            type_name = self.cls.attr_types.get(owner.attr)
            if type_name is not None:
                return self._method_funcid(type_name, func.attr)
        return None

    # -- the walk -------------------------------------------------------------

    def scan(self) -> None:
        self._walk_block(self.function.node.body,
                         self.function.assumed_held)

    def _walk_block(self, stmts: list[ast.stmt],
                    held: tuple[str, ...]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            consumed = self._try_acquire_pattern(stmts, index, held)
            if consumed:
                index += consumed
                continue
            self._walk_stmt(stmt, held)
            index += 1

    def _try_acquire_pattern(self, stmts: list[ast.stmt], index: int,
                             held: tuple[str, ...]) -> int:
        """``lock.acquire()`` followed by ``try/finally: release()``:
        treat the try body as running with the lock held.  Returns the
        number of statements consumed (0 = not the pattern)."""
        stmt = stmts[index]
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "acquire"):
            return 0
        identity = self.resolve_lock(stmt.value.func.value)
        if identity is None:
            return 0
        following = stmts[index + 1] if index + 1 < len(stmts) else None
        if isinstance(following, ast.Try) and \
                self._releases_in_finally(following, identity):
            new_held = self._acquire(identity, held, stmt.lineno)
            self._walk_stmt(following, new_held)
            return 2
        self.analysis.diagnostics.append(SourceDiagnostic.make(
            "conc.acquire-no-release", str(self.module.path),
            stmt.lineno,
            f"{identity} is acquired without a release guaranteed "
            "on exception paths",
            hint="use `with`, or follow the acquire with "
                 "try/finally: release()"))
        return 1

    def _releases_in_finally(self, node: ast.Try,
                             identity: str) -> bool:
        for stmt in node.finalbody:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Call) and \
                        isinstance(child.func, ast.Attribute) and \
                        child.func.attr == "release" and \
                        self.resolve_lock(child.func.value) \
                        == identity:
                    return True
        return False

    def _acquire(self, identity: str, held: tuple[str, ...],
                 lineno: int) -> tuple[str, ...]:
        self.direct.add(identity)
        primitive = self.analysis.locks_by_identity.get(identity)
        if identity in held:
            if primitive is not None and not primitive.reentrant:
                self.analysis.diagnostics.append(
                    SourceDiagnostic.make(
                        "conc.self-deadlock", str(self.module.path),
                        lineno,
                        f"non-reentrant {identity} is acquired while "
                        "already held on this path"))
            return held
        for holder in held:
            edge = (holder, identity)
            if edge not in self.analysis.edges:
                self.analysis.edges[edge] = LockEdge(
                    holder, identity, str(self.module.path), lineno,
                    self.function.funcid)
        return held + (identity,)

    def _walk_stmt(self, stmt: ast.stmt,
                   held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in stmt.items:
                identity = self.resolve_lock(item.context_expr)
                if identity is not None:
                    new_held = self._acquire(
                        identity, new_held, item.context_expr.lineno)
                else:
                    self._scan_expr(item.context_expr, new_held)
                if item.optional_vars is not None:
                    self._scan_expr(item.optional_vars, new_held)
            self._walk_block(stmt.body, new_held)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(stmt.orelse, held)
            self._walk_block(stmt.finalbody, held)
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.target, held)
            self._scan_expr(stmt.iter, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested defs are scanned as their own functions.
        else:
            self._scan_stmt_exprs(stmt, held)
            if isinstance(stmt, ast.Assign):
                self._note_local_types(stmt)

    def _note_local_types(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or \
                not isinstance(stmt.targets[0], ast.Name):
            return
        type_name = _value_class(stmt.value, {},
                                 self.analysis.classes)
        if type_name is not None:
            self.var_types[stmt.targets[0].id] = type_name

    def _scan_stmt_exprs(self, stmt: ast.stmt,
                         held: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)

    def _scan_expr(self, expr: ast.expr,
                   held: tuple[str, ...]) -> None:
        parents: dict[int, ast.AST] = {}
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred execution: held set is unrelated.
            if isinstance(node, ast.Call):
                self._scan_call(node, held)
            elif isinstance(node, ast.Attribute):
                self._check_guarded(node, held, parents)
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
                stack.append(child)

    def _scan_call(self, call: ast.Call,
                   held: tuple[str, ...]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr in ("acquire", "release") and \
                self.resolve_lock(func.value) is not None:
            if func.attr == "acquire":
                # acquire() reached outside the sanctioned
                # statement + try/finally shape.
                self.analysis.diagnostics.append(
                    SourceDiagnostic.make(
                        "conc.acquire-no-release",
                        str(self.module.path), call.lineno,
                        f"{self.resolve_lock(func.value)} is "
                        "acquired without a release guaranteed on "
                        "exception paths",
                        hint="use `with`, or follow the acquire "
                             "with try/finally: release()"))
            return
        callee = self.resolve_call(call)
        if callee is not None:
            self.analysis.calls.append(
                (self.function.funcid, callee, held,
                 str(self.module.path), call.lineno))

    def _check_guarded(self, node: ast.Attribute,
                       held: tuple[str, ...],
                       parents: dict[int, ast.AST]) -> None:
        if self.cls is None or \
                not isinstance(node.value, ast.Name) or \
                node.value.id != "self" or \
                node.attr not in self.cls.guarded:
            return
        method_name = self.function.node.name
        if method_name in ("__init__", "__del__"):
            return
        guard_attr = self.cls.guarded[node.attr]
        identity = self.cls.lock_identity(guard_attr)
        if identity is None:
            self.analysis.diagnostics.append(SourceDiagnostic.make(
                "conc.unknown-guard", str(self.module.path),
                node.lineno,
                f"{self.cls.name}.{node.attr} is declared guarded by "
                f"{guard_attr!r}, which is not an inventoried lock"))
            return
        if identity in held:
            return
        mutating = self._is_mutation(node, parents)
        if not mutating and "# lockfree-read" in \
                self.module.line_comment(node.lineno):
            return
        what = "mutated" if mutating else "read"
        self.analysis.diagnostics.append(SourceDiagnostic.make(
            "conc.unguarded-field", str(self.module.path),
            node.lineno,
            f"{self.cls.name}.{node.attr} is {what} outside "
            f"`with self.{guard_attr}` (declared guarded)",
            hint="take the lock, annotate the method `# holds: "
                 f"{guard_attr}`, or mark a benign racy read "
                 "`# lockfree-read`"))

    def _is_mutation(self, node: ast.Attribute,
                     parents: dict[int, ast.AST]) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parent = parents.get(id(node))
        if isinstance(parent, ast.Call) and parent.func is node:
            return False
        if isinstance(parent, ast.Attribute) and \
                isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        if isinstance(parent, ast.Attribute):
            grand = parents.get(id(parent))
            if isinstance(grand, ast.Call) and \
                    grand.func is parent and \
                    parent.attr in MUTATOR_METHODS:
                return True
        if isinstance(parent, ast.Subscript) and \
                parent.value is node and \
                isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        if isinstance(parent, (ast.AugAssign,)):
            return True
        return False


# -- graph closure ------------------------------------------------------------


def _fixpoint_may_acquire(analysis: _Analysis,
                          direct: dict[str, set[str]]) -> None:
    callees: dict[str, set[str]] = {}
    for caller, callee, _held, _file, _line in analysis.calls:
        callees.setdefault(caller, set()).add(callee)
    may = {funcid: set(acquired)
           for funcid, acquired in direct.items()}
    changed = True
    while changed:
        changed = False
        for funcid, targets in callees.items():
            bucket = may.setdefault(funcid, set())
            before = len(bucket)
            for target in targets:
                bucket |= may.get(target, set())
            if len(bucket) != before:
                changed = True
    analysis.may_acquire = may


def _close_call_edges(analysis: _Analysis) -> None:
    for caller, callee, held, file, line in analysis.calls:
        callee_function = analysis.functions.get(callee)
        if callee_function is not None:
            missing = [assumed for assumed
                       in callee_function.assumed_held
                       if assumed not in held]
            for assumed in missing:
                analysis.diagnostics.append(SourceDiagnostic.make(
                    "conc.holds-violation", file, line,
                    f"{callee} requires {assumed} held "
                    f"(`# holds:`), but {caller} calls it without"))
        if not held:
            continue
        for target in sorted(analysis.may_acquire.get(callee, ())):
            for holder in held:
                if holder == target:
                    primitive = \
                        analysis.locks_by_identity.get(target)
                    if primitive is not None and \
                            not primitive.reentrant:
                        analysis.diagnostics.append(
                            SourceDiagnostic.make(
                                "conc.self-deadlock", file, line,
                                f"{caller} holds {holder} while "
                                f"calling {callee}, which may "
                                "acquire it again (non-reentrant)"))
                    continue
                edge = (holder, target)
                if edge not in analysis.edges:
                    analysis.edges[edge] = LockEdge(
                        holder, target, file, line, callee)


def _find_cycles(edges: dict[tuple[str, str], LockEdge]
                 ) -> list[list[str]]:
    """Strongly connected components with >= 2 nodes (cycles)."""
    graph: dict[str, list[str]] = {}
    for source, target in edges:
        graph.setdefault(source, []).append(target)
        graph.setdefault(target, [])
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    cycles: list[list[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, Iterator[str]]] = \
            [(root, iter(graph[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = \
                        index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node],
                                         indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent],
                                       lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))
    return cycles


def _levels(primitives: dict[str, Primitive],
            edges: dict[tuple[str, str], LockEdge]) -> dict[str, int]:
    """Longest-path level per lock: leaves (innermost) are level 0."""
    graph: dict[str, list[str]] = {identity: []
                                   for identity in primitives}
    for source, target in edges:
        graph.setdefault(source, []).append(target)
        graph.setdefault(target, [])
    levels: dict[str, int] = {}

    def level_of(node: str, trail: set[str]) -> int:
        if node in levels:
            return levels[node]
        if node in trail:
            return 0  # cycle: reported separately.
        trail.add(node)
        successors = graph.get(node, [])
        value = 0 if not successors else 1 + max(
            level_of(successor, trail) for successor in successors)
        trail.discard(node)
        levels[node] = value
        return value

    for node in sorted(graph):
        level_of(node, set())
    return levels


# -- entry point --------------------------------------------------------------


def lint_concurrency(paths: Iterable[str | Path]
                     ) -> ConcurrencyReport:
    """Run the Tier-C concurrency pass over ``paths``."""
    analysis = _Analysis()
    for file in _python_files(paths):
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            analysis.diagnostics.append(SourceDiagnostic.make(
                "src.bare-except", str(file), exc.lineno or 0,
                f"file does not parse: {exc.msg}"))
            continue
        analysis.modules.append(_Module(file, tree, source))

    stems = {module.stem for module in analysis.modules}
    for module in analysis.modules:
        _collect_imports(module, stems)
        analysis.stems.setdefault(module.stem, module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name not in analysis.classes:
                analysis.classes[node.name] = _Class(node, module)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                found = _primitive_in(stmt.value, module)
                if found is not None:
                    kind, call = found
                    name = stmt.targets[0].id
                    primitive = Primitive(
                        kind, f"{module.stem}:{name}",
                        str(module.path), call.lineno)
                    analysis.module_locks[(module.stem, name)] = \
                        primitive
                    analysis.primitives.append(primitive)

    _collect_class_facts(analysis)
    for cls in analysis.classes.values():
        analysis.primitives.extend(cls.primitives.values())
        for field_name, guard_attr in sorted(cls.guarded.items()):
            if cls.lock_identity(guard_attr) is None:
                analysis.diagnostics.append(SourceDiagnostic.make(
                    "conc.unknown-guard", str(cls.module.path),
                    cls.node.lineno,
                    f"{cls.name}.{field_name} is declared guarded "
                    f"by {guard_attr!r}, which is not an "
                    "inventoried lock of the class"))
    analysis.locks_by_identity = {
        primitive.identity: primitive
        for primitive in analysis.primitives
        if primitive.kind in LOCK_KINDS}

    _register_functions(analysis)
    direct: dict[str, set[str]] = {}
    for funcid, function in analysis.functions.items():
        scanner = _Scanner(analysis, function)
        scanner.scan()
        direct[funcid] = scanner.direct - set(function.assumed_held)
    _fixpoint_may_acquire(analysis, direct)
    _close_call_edges(analysis)

    for cycle in _find_cycles(analysis.edges):
        members = ", ".join(cycle)
        witnesses = sorted(
            f"{edge.source}->{edge.target} at "
            f"{Path(edge.file).name}:{edge.line}"
            for (source, target), edge in analysis.edges.items()
            if source in cycle and target in cycle)
        first = analysis.edges[next(
            (source, target) for (source, target)
            in sorted(analysis.edges)
            if source in cycle and target in cycle)]
        analysis.diagnostics.append(SourceDiagnostic.make(
            "conc.lock-order-cycle", first.file, first.line,
            f"lock-order cycle between {members}: "
            + "; ".join(witnesses),
            hint="pick one global order for these locks and "
                 "restructure the inverted path"))

    analysis.primitives.sort(key=lambda p: (p.file, p.line))
    analysis.diagnostics.sort(key=lambda d: (d.file, d.line, d.rule))
    edges = sorted(analysis.edges.values(),
                   key=lambda e: (e.source, e.target))
    return ConcurrencyReport(
        primitives=analysis.primitives,
        edges=edges,
        levels=_levels(analysis.locks_by_identity, analysis.edges),
        diagnostics=analysis.diagnostics,
    )

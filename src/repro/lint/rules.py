"""The rule catalog: every diagnostic either tier can emit.

Each rule carries the paper section whose assumption it enforces (the
DESIGN.md "Static analysis" table is generated from the same data), a
default severity, and a one-line summary.  Rule ids are stable strings
(``plan.*`` for the plan verifier, ``src.*`` for the source lint) so
CI configuration and telemetry queries can reference them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: diagnostic severities, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Rule:
    """One statically checkable engine invariant."""

    id: str
    severity: str
    summary: str
    #: the paper section whose assumption the rule enforces.
    paper: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"bad severity {self.severity!r}")


_ALL: tuple[Rule, ...] = (
    # -- Tier A: plan verifier ------------------------------------------------
    Rule("plan.ineq-order-agnostic", "error",
         "inequality predicate evaluated in the compressed domain of an "
         "order-agnostic codec (compressed order != value order)",
         "§3.2 (ineq capability)"),
    Rule("plan.wild-unsupported", "error",
         "wildcard/prefix predicate on a codec without the wild "
         "capability (ALM codes whole character sequences)",
         "§3.2 (wild capability)"),
    Rule("plan.eq-unsupported", "error",
         "compressed-domain equality on a codec without the eq "
         "capability (non-deterministic or chunked encoding)",
         "§3.2 (eq capability)"),
    Rule("plan.merge-join-unordered", "error",
         "MergeJoin input has no established sort order on its key "
         "column",
         "§4 (order guarantees of the access operators)"),
    Rule("plan.merge-join-unverifiable", "info",
         "MergeJoin key columns are undeclared; order cannot be "
         "verified statically",
         "§4"),
    Rule("plan.cross-domain-compare", "error",
         "compressed-domain comparison between columns compressed "
         "under different source models",
         "§3.1 (containers must share a source model to compare "
         "compressed)"),
    Rule("plan.missing-decompress", "error",
         "a compressed column reaches XMLSerialize without passing "
         "through Decompress",
         "§4 (Decompress precedes serialization)"),
    Rule("plan.duplicate-decompress", "warning",
         "Decompress applied to a column that is already plain",
         "§4 (decompress exactly once, at the top of the plan)"),
    Rule("plan.unknown-column", "error",
         "operator references a column no upstream operator produces",
         "§4 (plan well-formedness)"),
    Rule("plan.interval-not-binary-searchable", "warning",
         "ContAccess interval search on a blob container (no record "
         "access; degrades to a full decompressing scan)",
         "§2.2 (containers support binary search)"),
    Rule("plan.interval-decompressing", "warning",
         "ContAccess bounds on an order-agnostic codec: binary search "
         "must decompress O(log n) pivot records",
         "§2.2/§3.2"),
    Rule("plan.invalid-metadata", "error",
         "declared operator metadata is malformed (e.g. an unknown "
         "predicate kind)",
         "§3.2"),
    # -- Tier B: source lint --------------------------------------------------
    Rule("src.operator-rows", "error",
         "Operator subclass implements neither _batches nor _rows",
         "§4 (operators are row iterators)"),
    Rule("src.operator-rows-no-batches", "warning",
         "Operator subclass implements only the deprecated row-pull "
         "_rows protocol; batch-pull consumers fall back through a "
         "DeprecationWarning row shim",
         "DESIGN.md §13 (batch execution engine)"),
    Rule("src.operator-iter-override", "error",
         "Operator subclass overrides __iter__, bypassing the _traced "
         "telemetry routing",
         "observability invariant (PR 1)"),
    Rule("src.codec-properties", "error",
         "codec registered in compression.registry does not declare "
         "CompressionProperties",
         "§3.2 (every algorithm is characterized by its capability "
         "tuple)"),
    Rule("src.raw-decode", "error",
         "direct codec decode call inside a physical operator body "
         "outside the sanctioned TextContent/Decompress sites",
         "§4 (decompression is an explicit plan operator)"),
    Rule("src.bare-except", "error",
         "naked except: swallows typed XQueC errors",
         "repo convention"),
    Rule("src.mutable-default", "error",
         "mutable default argument value",
         "repo convention"),
    Rule("src.untracked-threading-primitive", "error",
         "threading primitive created outside the inventoried "
         "positions (module constant, class-body constant or "
         "self-attribute) — invisible to the Tier-C lock analysis "
         "and the runtime watchdog",
         "concurrency discipline (PR 7)"),
    # -- Tier C: concurrency lint ---------------------------------------------
    Rule("conc.lock-order-cycle", "error",
         "cycle in the static lock-acquisition graph: two code paths "
         "acquire the same locks in opposite orders (deadlock)",
         "concurrency discipline (PR 7)"),
    Rule("conc.self-deadlock", "error",
         "a non-reentrant lock may be acquired again while already "
         "held on the same code path",
         "concurrency discipline (PR 7)"),
    Rule("conc.acquire-no-release", "error",
         "lock.acquire() without a release guaranteed on exception "
         "paths",
         "concurrency discipline (PR 7)"),
    Rule("conc.unguarded-field", "error",
         "field declared guarded-by a lock is touched outside a "
         "`with` on that lock",
         "concurrency discipline (PR 7)"),
    Rule("conc.unknown-guard", "error",
         "guarded-field annotation names a lock attribute the "
         "inventory does not know",
         "concurrency discipline (PR 7)"),
    Rule("conc.holds-violation", "error",
         "function annotated `# holds: <lock>` is called at a site "
         "where that lock is not held",
         "concurrency discipline (PR 7)"),
)

RULES: dict[str, Rule] = {rule.id: rule for rule in _ALL}


def rule(rule_id: str) -> Rule:
    """The catalog entry for ``rule_id`` (KeyError when unknown)."""
    return RULES[rule_id]

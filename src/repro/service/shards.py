"""Sharded multi-process serving plane: scatter/gather over workers.

One :class:`ShardedDatabase` front door forks ``N`` worker processes,
each holding the repository (copy-on-write — fork shares the resident
compressed pages) behind its *own* :class:`~repro.service.session
.Database` — private plan cache, block cache and metrics registry, so
a worker warms exactly the slice of the document it is routed.

Routing follows the structure-summary subtree placement chosen by
:func:`repro.partitioning.assign_shards`: the coordinator extracts the
absolute path roots of each query, maps their subtrees to owning
shards, and sends the query to the shard owning its driving subtree.
A query whose roots span several shards still runs on one worker
(every worker answers every query — XQuery joins reach across
subtrees) but is counted as *cross-shard*: the telemetry that tells an
operator when the placement no longer matches the workload.

Results cross the process boundary through the §1 shipping frame
(:func:`repro.query.shipping.ship_result`): values travel compressed,
and the coordinator accounts bytes-on-the-wire against what plain
decompressed shipping would have cost.

Admission control guards the front door: a global in-flight limit plus
per-client quotas, refused work raising
:class:`~repro.errors.AdmissionError` before any worker is touched.

Sharded execution is result-identical to single-process serving — the
parity tests pin byte-identical ``to_xml()`` output for the full XMark
set at shard counts 1, 2 and 4.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

import repro.errors as errors_module
from repro.errors import AdmissionError, ShardError, XQueCError
from repro.obs.metrics import MetricsRegistry
from repro.partitioning.sharding import ShardAssignment, assign_shards
from repro.query.ast import Expression, PathExpr
from repro.query.parser import parse_query
from repro.query.shipping import ReceivedResultSet, receive_result
from repro.service.cache import (
    DEFAULT_BLOCK_BUDGET,
    DEFAULT_PLAN_CAPACITY,
    normalize_query_text,
)
from repro.service.session import Database
from repro.util.clock import elapsed_ns, now_ns

#: seconds a worker waits between stop-flag checks while idle.
_POLL_S = 0.25
#: seconds the coordinator waits for a worker reply before declaring
#: the shard dead (generous — covers cold plan builds on tiny CI).
REPLY_TIMEOUT_S = 120.0


# -- admission control -------------------------------------------------------

class AdmissionController:
    """Global in-flight limit + per-client quotas at the front door.

    ``acquire`` either admits the query or raises
    :class:`~repro.errors.AdmissionError` immediately — the serving
    plane sheds load instead of queueing unboundedly.  Thread-safe;
    one instance guards one :class:`ShardedDatabase`.
    """

    def __init__(self, max_inflight: int = 64,
                 per_client: int = 8):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if per_client < 1:
            raise ValueError(
                f"per_client must be >= 1, got {per_client}")
        self.max_inflight = max_inflight
        self.per_client = per_client
        self._lock = threading.Lock()
        self._inflight = 0
        self._by_client: dict[str, int] = {}

    def acquire(self, client: str = "") -> None:
        with self._lock:
            if self._inflight >= self.max_inflight:
                raise AdmissionError(
                    f"serving plane at capacity "
                    f"({self.max_inflight} queries in flight)")
            held = self._by_client.get(client, 0)
            if held >= self.per_client:
                raise AdmissionError(
                    f"client {client!r} exhausted its quota "
                    f"({self.per_client} queries in flight)")
            self._inflight += 1
            self._by_client[client] = held + 1

    def release(self, client: str = "") -> None:
        with self._lock:
            self._inflight = max(self._inflight - 1, 0)
            held = self._by_client.get(client, 0)
            if held <= 1:
                self._by_client.pop(client, None)
            else:
                self._by_client[client] = held - 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight


# -- worker process ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class WorkerSettings:
    """Per-worker serving knobs, fixed at fork time."""

    plan_capacity: int = DEFAULT_PLAN_CAPACITY
    block_budget: int = DEFAULT_BLOCK_BUDGET
    batch_size: int | None = None
    verify_plans: bool = True


class _Shutdown(Exception):
    """Raised inside the worker loop by the SIGTERM handler."""


def _worker_main(conn, repository, collection, shard_id: int,
                 settings: WorkerSettings) -> None:
    """The worker process body: serve requests until told to stop.

    Runs in the forked child.  Builds a private
    :class:`~repro.service.session.Database` over the inherited
    (copy-on-write) repository, then answers ``(op, ...)`` tuples on
    the pipe.  SIGTERM and a ``shutdown`` op both exit cleanly (code
    0); the parent dying closes the pipe and ends the loop too, so a
    worker can never outlive its coordinator as an orphan.
    """
    stopping = False

    def _on_sigterm(signum, frame):  # noqa: ARG001
        raise _Shutdown

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    database = Database(repository, collection or None,
                        plan_capacity=settings.plan_capacity,
                        block_budget=settings.block_budget,
                        batch_size=settings.batch_size)
    database.metrics.set_gauge("shard.id", shard_id)
    database.metrics.set_gauge("shard.pid", os.getpid())
    session = database.session(verify_plans=settings.verify_plans)
    try:
        while not stopping:
            try:
                if not conn.poll(_POLL_S):
                    continue
                request = conn.recv()
            except (EOFError, OSError):
                break  # coordinator went away
            try:
                reply = _serve_request(session, database, request)
            except _Shutdown:
                raise
            except BaseException as exc:  # noqa: BLE001 - ship to parent
                reply = ("err", type(exc).__name__, str(exc))
            if reply is None:  # shutdown op
                conn.send(("ok", None))
                stopping = True
            else:
                try:
                    conn.send(reply)
                except (BrokenPipeError, OSError):
                    break
    except _Shutdown:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _serve_request(session, database, request):
    """Dispatch one ``(op, ...)`` tuple; ``None`` means shutdown."""
    op = request[0]
    if op == "execute":
        from repro.query.shipping import ship_result
        result = session.execute(request[1])
        return ("ok", ship_result(result))
    if op == "metrics":
        return ("ok", {"counters": database.metrics.counters(),
                       "gauges": database.metrics.gauges()})
    if op == "invalidate":
        database.invalidate_caches()
        return ("ok", None)
    if op == "ping":
        return ("ok", os.getpid())
    if op == "shutdown":
        return None
    return ("err", "ShardError", f"unknown worker op {op!r}")


class ShardWorker:
    """Coordinator-side handle on one worker process.

    The pipe is a strict request/reply channel; ``request`` serializes
    concurrent callers on a per-worker lock so replies can never
    interleave.
    """

    def __init__(self, shard_id: int, process, conn):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        #: last folded counter values (delta tracking for telemetry).
        self.counter_base: dict[str, int] = {}

    def request(self, message, timeout: float = REPLY_TIMEOUT_S):
        """One round trip; raises :class:`ShardError` on a dead shard
        or re-raises the worker-side failure by its original type."""
        with self.lock:
            if not self.process.is_alive():
                raise ShardError(
                    f"shard {self.shard_id} worker is not running")
            try:
                self.conn.send(message)
                if not self.conn.poll(timeout):
                    raise ShardError(
                        f"shard {self.shard_id} did not reply within "
                        f"{timeout:.0f}s")
                reply = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise ShardError(
                    f"shard {self.shard_id} pipe failed: "
                    f"{exc}") from exc
        if not isinstance(reply, tuple) or not reply:
            raise ShardError(
                f"shard {self.shard_id} sent a malformed reply")
        if reply[0] == "ok":
            return reply[1]
        if reply[0] == "err":
            _, type_name, message_text = reply
            raise _rehydrate_error(type_name, message_text,
                                   self.shard_id)
        raise ShardError(
            f"shard {self.shard_id} sent unknown reply {reply[0]!r}")


def _rehydrate_error(type_name: str, message: str,
                     shard_id: int) -> XQueCError:
    """Map a worker-side failure back to its library exception type.

    A worker ships errors as ``(type name, message)``; known
    :class:`XQueCError` subclasses re-raise as themselves (a syntax
    error on shard 2 is still a syntax error at the front door),
    anything else — including worker-side crashes — becomes
    :class:`ShardError`.
    """
    error_type = getattr(errors_module, type_name, None)
    if (isinstance(error_type, type)
            and issubclass(error_type, XQueCError)
            and error_type not in (AdmissionError, ShardError)):
        try:
            return error_type(message)
        except Exception:  # noqa: BLE001
            pass  # constructor wants more than a message
    return ShardError(
        f"shard {shard_id} failed: {type_name}: {message}")


# -- query routing -----------------------------------------------------------

def query_route_keys(ast: Expression) -> list[str]:
    """The subtree keys a query's absolute path roots touch.

    Walks the AST for absolute :class:`PathExpr` nodes and keys each
    by its first two child-axis element steps (``/site/people/...`` →
    ``/site/people``); a root that goes wild before two steps
    (``//item``, ``/site/*``) keys by what resolved.  Document order —
    the first key is the query's driving root (its outer ``for``
    clause), which the router prefers as the primary shard.
    """
    keys: list[str] = []

    def visit(node) -> None:
        if isinstance(node, PathExpr) and node.start is None:
            names = []
            for step in node.steps:
                if (step.axis != "child" or step.test == "*"
                        or step.test == "text()"):
                    break
                names.append(step.test)
                if len(names) == 2:
                    break
            if names:
                key = "/" + "/".join(names)
                if key not in keys:
                    keys.append(key)
        walk(node)

    def walk(node) -> None:
        if dataclasses.is_dataclass(node):
            for field in dataclasses.fields(node):
                walk_value(getattr(node, field.name))
        elif isinstance(node, (tuple, list)):
            for child in node:
                walk_value(child)

    def walk_value(value) -> None:
        if isinstance(value, PathExpr):
            visit(value)
        elif dataclasses.is_dataclass(value) \
                or isinstance(value, (tuple, list)):
            walk(value)

    visit(ast) if isinstance(ast, PathExpr) else walk(ast)
    return keys


def _hash_shard(text: str, shard_count: int) -> int:
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shard_count


@dataclasses.dataclass(frozen=True)
class Route:
    """A routing decision: primary worker + cross-shard flag."""

    primary: int
    cross_shard: bool
    keys: tuple[str, ...]


def resolve_route(assignment: ShardAssignment, keys: Sequence[str],
                  fallback_key: str) -> Route:
    """Map route keys to (primary shard, cross-shard?).

    A two-step key maps to its owning shard; a shorter key (the query
    rooted at ``/site``) is a *prefix* and touches every shard owning
    a subtree under it.  The primary is the first key's shard when
    unique (the driving ``for`` clause keeps hitting one warm worker),
    else the lowest touched shard; no keys at all hash the query text.
    """
    known = assignment._shard_of
    per_key: list[set[int]] = []
    for key in keys:
        shard = known.get(key)
        if shard is not None:
            per_key.append({shard})
            continue
        prefix = key.rstrip("/") + "/"
        matched = {s for subtree, s in known.items()
                   if subtree.startswith(prefix)}
        per_key.append(matched if matched
                       else {assignment.shard_of_subtree(key)})
    touched = set().union(*per_key) if per_key else set()
    if not touched:
        return Route(_hash_shard(fallback_key,
                                 assignment.shard_count),
                     False, tuple(keys))
    if len(per_key[0]) == 1:
        primary = next(iter(per_key[0]))
    else:
        primary = min(touched)
    return Route(primary, len(touched) > 1, tuple(keys))


# -- the coordinator ---------------------------------------------------------

class ShardedDatabase:
    """The multi-process serving front door: route, scatter, gather.

    Construction computes the shard placement; :meth:`start` forks the
    workers (fork start method — the repository is shared
    copy-on-write, never pickled).  Use as a context manager for
    orderly shutdown::

        with ShardedDatabase(repository, shard_count=4) as db:
            received = db.execute(query, client="alice")

    :meth:`execute` returns the gathered
    :class:`~repro.query.shipping.ReceivedResultSet` — values decoded
    coordinator-side from the compressed frame, worker evaluation
    counters attached, ``to_xml()`` byte-identical to single-process
    :meth:`Session.execute <repro.service.session.Session.execute>`.

    Duck-types the telemetry surface (``metrics`` / ``uptime_ns`` /
    ``ready`` / ``slow_log``), so :meth:`serve_telemetry` exposes the
    coordinator — with every worker's counters folded in under
    ``shard.<i>.`` names — on the standard ``/metrics`` endpoint.
    """

    def __init__(self, repository, collection=None, *,
                 shard_count: int = 2,
                 assignment: ShardAssignment | None = None,
                 queries: Sequence[str] = (),
                 metrics: MetricsRegistry | None = None,
                 slow_log=None,
                 admission: AdmissionController | None = None,
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY,
                 block_budget: int = DEFAULT_BLOCK_BUDGET,
                 batch_size: int | None = None,
                 verify_plans: bool = True):
        self.repository = repository
        self.collection = dict(collection) if collection else {}
        if assignment is None:
            assignment = assign_shards(repository, shard_count,
                                       queries=queries)
        self.assignment = assignment
        self.shard_count = assignment.shard_count
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.slow_log = slow_log
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.settings = WorkerSettings(plan_capacity=plan_capacity,
                                       block_budget=block_budget,
                                       batch_size=batch_size,
                                       verify_plans=verify_plans)
        self._workers: list[ShardWorker] = []
        self._routes: dict[str, Route] = {}
        self._routes_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        #: summed worker-side evaluation counters, gathered per query.
        from repro.query.context import EvaluationStats
        self.aggregate_stats = EvaluationStats()
        self._started_ns = now_ns()
        self._telemetry_server = None
        self.metrics.set_gauge("coordinator.shards", self.shard_count)
        self.metrics.set_gauge("coordinator.admission.max_inflight",
                               self.admission.max_inflight)
        self.metrics.set_gauge("coordinator.admission.per_client",
                               self.admission.per_client)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardedDatabase":
        """Fork one worker per shard; idempotent."""
        if self._workers:
            return self
        context = multiprocessing.get_context("fork")
        for shard_id in range(self.shard_count):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self.repository,
                      self.collection or None, shard_id,
                      self.settings),
                name=f"xquec-shard-{shard_id}", daemon=True)
            process.start()
            child_conn.close()  # the child's end lives in the child
            self._workers.append(ShardWorker(shard_id, process,
                                             parent_conn))
        for worker in self._workers:
            worker.request(("ping",))
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker: polite shutdown op, then SIGTERM, then
        (last resort) SIGKILL — no orphans survive."""
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.request(("shutdown",), timeout=timeout)
            except (ShardError, XQueCError):
                pass
        for worker in workers:
            worker.process.join(timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._telemetry_server is not None:
            self._telemetry_server.close()
            self._telemetry_server = None

    def __enter__(self) -> "ShardedDatabase":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def route(self, query: str) -> Route:
        """The routing decision for a query (cached on its text)."""
        key = normalize_query_text(query)
        with self._routes_lock:
            route = self._routes.get(key)
        if route is not None:
            return route
        route = resolve_route(self.assignment,
                              query_route_keys(parse_query(query)),
                              key)
        with self._routes_lock:
            self._routes[key] = route
        return route

    def execute(self, query: str,
                client: str = "") -> ReceivedResultSet:
        """Admit, route, scatter to the owning worker, gather.

        Raises :class:`~repro.errors.AdmissionError` when refused;
        worker-side query failures re-raise by their original type.
        """
        self.admission.acquire(client)
        try:
            route = self.route(query)
            self.metrics.add("coordinator.queries")
            if route.cross_shard:
                self.metrics.add("coordinator.cross_shard_queries")
            self.metrics.add(f"shard.{route.primary}.routed")
            worker = self._workers[route.primary]
            start_ns = now_ns()
            frame = worker.request(("execute", query))
            received = receive_result(frame)
            wall_ns = elapsed_ns(start_ns)
            self.metrics.observe("coordinator.latency_ms",
                                 wall_ns / 1e6)
            self.metrics.add("shipping.wire_bytes", len(frame))
            self.metrics.add("shipping.plain_bytes",
                             received.plain_bytes)
            self.metrics.add("shipping.compressed_value_bytes",
                             received.compressed_value_bytes)
            with self._stats_lock:
                for name, value in received.stats.as_dict().items():
                    setattr(self.aggregate_stats, name,
                            getattr(self.aggregate_stats, name)
                            + value)
            return received
        except AdmissionError:
            raise
        finally:
            self.admission.release(client)

    def execute_many(self, queries: Sequence[str],
                     client: str = "",
                     max_workers: int | None = None
                     ) -> list[ReceivedResultSet]:
        """Scatter a batch across the shard pool; gather in order.

        Admission applies per query — each one is admitted as a slot
        frees up (the batch as a whole is the caller's concurrency,
        bounded by ``max_workers``, default one thread per shard).
        """
        if max_workers is None:
            max_workers = max(self.shard_count, 1)
        if max_workers <= 1 or len(queries) <= 1:
            return [self.execute(query, client) for query in queries]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(
                lambda query: self.execute(query, client), queries))

    def invalidate_caches(self) -> None:
        """Flush every worker's caches (and array memos) plus the
        coordinator's route cache."""
        with self._routes_lock:
            self._routes.clear()
        for worker in self._workers:
            worker.request(("invalidate",))

    # -- telemetry -----------------------------------------------------------

    def gather_metrics(self) -> None:
        """Fold every worker's registry into the coordinator's.

        Worker counters surface as ``shard.<i>.<name>`` (delta-folded
        so they stay monotonic counters), gauges as
        ``shard.<i>.<name>`` gauges — the per-shard labels the
        ``/metrics`` exporter renders.
        """
        for worker in self._workers:
            snapshot = worker.request(("metrics",))
            shard = worker.shard_id
            for name, value in snapshot["counters"].items():
                base = worker.counter_base.get(name, 0)
                if value > base:
                    self.metrics.add(f"shard.{shard}.{name}",
                                     value - base)
                worker.counter_base[name] = value
            for name, value in snapshot["gauges"].items():
                self.metrics.set_gauge(f"shard.{shard}.{name}",
                                       value)

    def shipped_bytes_ratio(self) -> float | None:
        """Cumulative ``wire / plain`` shipped-bytes ratio (< 1 means
        the compressed transport spared bandwidth)."""
        counters = self.metrics.counters()
        plain = counters.get("shipping.plain_bytes", 0)
        if plain <= 0:
            return None
        return counters.get("shipping.wire_bytes", 0) / plain

    def uptime_ns(self) -> int:
        """Nanoseconds since the coordinator was constructed."""
        return elapsed_ns(self._started_ns)

    def ready(self) -> bool:
        """Readiness: every worker is alive and answers a ping."""
        if not self._workers:
            return False
        try:
            for worker in self._workers:
                worker.request(("ping",), timeout=5.0)
            return True
        except XQueCError:
            return False

    def serve_telemetry(self, port: int = 0, host: str = "127.0.0.1"):
        """Expose the coordinator on the standard telemetry endpoint.

        Worker counters are folded in (:meth:`gather_metrics`) at
        start; callers wanting fresher per-shard numbers re-gather
        before scraping.
        """
        from repro.service.telemetry_http import TelemetryServer
        if self._telemetry_server is not None \
                and not self._telemetry_server.closed:
            raise RuntimeError(
                "telemetry endpoint already serving on port "
                f"{self._telemetry_server.port}; stop it first")
        self.gather_metrics()
        server = TelemetryServer(self, host=host, port=port)
        server.start()
        self._telemetry_server = server
        return server

"""The serving layer's two caches: prepared plans and decoded blocks.

Both caches report ``cache.*`` hit/miss/eviction counters into a
:class:`~repro.obs.metrics.MetricsRegistry` (the session's registry by
default), so cache effectiveness shows up next to the engine's operator
counters instead of being a private implementation detail.  Both are
thread-safe: one session serves ``execute_many`` worker threads from
one plan cache and one block cache.

* :class:`PlanCache` — an LRU over *prepared plans* keyed on
  normalized query text.  A hit skips parsing and static plan
  verification entirely (the paper's processor assumes a resident
  repository answering many queries; re-deriving the plan per call is
  pure overhead).
* :class:`BlockCache` — a byte-budgeted LRU memoizing decoded
  container records and structure-summary resolutions.  Decoding a
  container value is the engine's per-item unit of decompression work;
  a resident session answering similar queries re-decodes the same
  hot records constantly.

Invalidation is explicit (:meth:`PlanCache.invalidate`,
:meth:`BlockCache.invalidate`): the repository is immutable once
loaded, so the only event that must flush caches is swapping the
repository itself — which the session exposes as
``Session.invalidate_caches()``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry

#: default number of prepared plans kept resident.
DEFAULT_PLAN_CAPACITY = 128

#: default decoded-block budget: 4 MiB of decoded values/resolutions.
DEFAULT_BLOCK_BUDGET = 4 * 1024 * 1024


def normalize_query_text(text: str) -> str:
    """The plan-cache key: query text with whitespace runs collapsed.

    Two spellings of one query ("same tokens, different layout") must
    share a cache slot; anything smarter (parameter extraction,
    AST-level hashing) would have to re-run the parser, defeating the
    point of the cache.
    """
    return " ".join(text.split())


class PlanCache:
    """A thread-safe LRU of prepared plans keyed on normalized text.

    Metric increments happen *outside* ``_lock``: the cache lock is a
    leaf of the documented lock hierarchy (DESIGN "Lock hierarchy"),
    so nothing that can itself block is ever called while holding it.
    """

    GUARDED_BY = {"_entries": "_lock"}

    def __init__(self, capacity: int = DEFAULT_PLAN_CAPACITY,
                 metrics: MetricsRegistry | None = None):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str):
        """The cached plan for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.metrics.add("cache.plan.miss")
            return None
        self.metrics.add("cache.plan.hit")
        return entry

    def put(self, key: str, plan) -> None:
        """Insert (or refresh) a plan, evicting LRU entries over
        capacity."""
        evicted = 0
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.metrics.add("cache.plan.evictions", evicted)

    def invalidate(self, key: str | None = None) -> None:
        """Drop one entry (by normalized key) or the whole cache."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (f"<PlanCache {len(self)}/{self.capacity} plans>")


class BlockCache:
    """A thread-safe, byte-budgeted LRU of decoded blocks.

    Entries are charged an approximate decoded size (``nbytes``); when
    the running total exceeds the budget, least-recently-used entries
    are evicted.  An entry bigger than the whole budget is not cached
    at all (it would evict everything for one use).

    Like :class:`PlanCache`, ``_lock`` is a hierarchy leaf: metric
    increments happen after the critical section.
    """

    GUARDED_BY = {"_entries": "_lock", "_used": "_lock"}

    def __init__(self, budget_bytes: int = DEFAULT_BLOCK_BUDGET,
                 metrics: MetricsRegistry | None = None):
        if budget_bytes < 1:
            raise ValueError(f"block cache budget must be >= 1 byte, "
                             f"got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self._entries: OrderedDict[tuple, tuple[object, int]] = \
            OrderedDict()
        self._lock = threading.Lock()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        """Approximate decoded bytes currently resident."""
        with self._lock:
            return self._used

    def get(self, key: tuple):
        """The cached block for ``key``, or ``None`` (counts
        hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.metrics.add("cache.block.miss")
            return None
        self.metrics.add("cache.block.hit")
        return entry[0]

    def put(self, key: tuple, value, nbytes: int) -> None:
        """Insert a block charged at ``nbytes``, evicting LRU entries
        until the budget holds again."""
        if nbytes > self.budget_bytes:
            self.metrics.add("cache.block.oversize")
            return
        evicted = 0
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._used -= previous[1]
            self._entries[key] = (value, nbytes)
            self._used += nbytes
            while self._used > self.budget_bytes and self._entries:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._used -= dropped
                evicted += 1
        if evicted:
            self.metrics.add("cache.block.evictions", evicted)

    def invalidate(self) -> None:
        """Drop every cached block."""
        with self._lock:
            self._entries.clear()
            self._used = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (f"<BlockCache {len(self)} blocks, "
                f"{self.used_bytes}/{self.budget_bytes} B>")

"""The embedded telemetry HTTP endpoint a :class:`Database` owns.

A resident serving process needs an export surface an operator (or a
Prometheus scraper, or ``repro top``) can poll without touching the
process: a stdlib :mod:`http.server` bound to localhost by default,
serving

* ``/metrics`` — the shared registry in Prometheus text exposition
  (:func:`repro.obs.export.render_prometheus`), counters + gauges +
  lifetime histograms + rolling windows, plus derived gauges
  (uptime, plan/block-cache hit rates);
* ``/health``  — liveness: 200 with uptime/served JSON while the
  exporter thread runs;
* ``/ready``   — readiness: 200 once the repository is loaded and the
  caches are warm-capable (:meth:`Database.ready`), 503 otherwise —
  the signal a load balancer gates traffic on;
* ``/slowlog`` — the latest slow-query records (JSON; ``?n=`` bounds
  the count), straight from the in-memory ring.

Everything the handler reads goes through the thread-safe registry /
slow-log snapshots; the exporter introduces **no new lock** above the
existing leaves, so the Tier-C lock discipline is unchanged with the
thread running.  ``TelemetryServer`` is a context manager;
:meth:`close` shuts the listener down and joins the serve thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.util.clock import NS_PER_S

#: default number of slow-log records ``/slowlog`` returns.
SLOWLOG_DEFAULT_LIMIT = 20


class TelemetryServer:
    """The serving process's telemetry endpoint (one per Database).

    Construct via :meth:`Database.serve_telemetry
    <repro.service.session.Database.serve_telemetry>`; ``port=0``
    binds an ephemeral port, reported by :attr:`port`/:attr:`url`.
    """

    def __init__(self, database, host: str = "127.0.0.1",
                 port: int = 0):
        self.database = database
        self.host = host
        self._httpd = ThreadingHTTPServer(
            (host, port), _handler_class(database))
        # request threads must never outlive close(): a scrape caught
        # mid-response dies with the server instead of blocking exit.
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-exporter", daemon=True)
        self.closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even for ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the exporter thread (idempotent via ``closed``)."""
        self._thread.start()

    def close(self) -> None:
        """Stop serving: shut the listener down, join the thread."""
        if self.closed:
            return
        self.closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "serving"
        return f"<TelemetryServer {state} {self.url}>"


def derived_gauges(database) -> dict[str, float]:
    """Gauges computed at scrape time, not stored in the registry."""
    counters = database.metrics.counters()
    gauges = {"telemetry.uptime_s":
              database.uptime_ns() / NS_PER_S}
    for cache in ("plan", "block"):
        hits = counters.get(f"cache.{cache}.hit", 0)
        total = hits + counters.get(f"cache.{cache}.miss", 0)
        if total:
            gauges[f"cache.{cache}.hit_rate"] = hits / total
    return gauges


def _handler_class(database):
    """A request-handler class closed over one database."""

    class _TelemetryHandler(BaseHTTPRequestHandler):
        # one handler instance per request; the class is the closure.
        server_version = "repro-telemetry/1.0"

        def do_GET(self):  # noqa: N802 - http.server API
            database.metrics.add("telemetry.http.requests")
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                body = render_prometheus(
                    database.metrics,
                    extra_gauges=derived_gauges(database))
                self._reply(200, body.encode("utf-8"),
                            PROMETHEUS_CONTENT_TYPE)
            elif route == "/health":
                self._reply_json(200, {
                    "status": "ok",
                    "uptime_s": database.uptime_ns() / NS_PER_S,
                    "served": database.metrics.counter(
                        "session.executions").value,
                })
            elif route == "/ready":
                ready = database.ready()
                self._reply_json(200 if ready else 503,
                                 {"ready": ready})
            elif route == "/slowlog":
                self._reply_json(200, _slowlog_document(
                    database, parse_qs(parsed.query)))
            else:
                database.metrics.add("telemetry.http.not_found")
                self._reply_json(404, {"error": "not found",
                                       "path": parsed.path})

        def _reply(self, status: int, body: bytes,
                   content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_json(self, status: int, document: dict) -> None:
            body = json.dumps(document, sort_keys=True,
                              default=str).encode("utf-8")
            self._reply(status, body, "application/json")

        def log_message(self, format, *args):  # noqa: A002
            # scrapes are counted in the registry, not printed —
            # a 1 s scrape interval must not spam stderr.
            pass

    return _TelemetryHandler


def _slowlog_document(database, query: dict) -> dict:
    """The ``/slowlog`` JSON body: latest records, newest last."""
    try:
        limit = int(query.get("n", [SLOWLOG_DEFAULT_LIMIT])[0])
    except ValueError:
        limit = SLOWLOG_DEFAULT_LIMIT
    slow_log = getattr(database, "slow_log", None)
    if slow_log is None:
        return {"enabled": False, "records": []}
    return {
        "enabled": True,
        "threshold_ms": slow_log.threshold_ms,
        "records": slow_log.recent(max(limit, 1)),
    }

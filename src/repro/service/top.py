"""``repro top``: a live console over the serving telemetry plane.

The operational view the windowed metrics exist for: one screen with
the process's QPS, per-query-class **rolling** latency percentiles
(last window, not lifetime), plan/block-cache hit rates, and the
latest slow-query records — refreshed every ``--interval`` seconds,
or rendered once with ``--once`` (scriptable, testable).

Two interchangeable sources produce the same snapshot shape:

* :class:`LocalSource` — opens the repository in-process and *drives*
  it: each tick serves one round of the given query batch through
  ``execute_many`` (so there is traffic to observe) and reads the
  shared registry + slow-log ring directly.  This is the workbench
  mode: point it at a repository and a workload, watch the windows.
* :class:`ScrapeSource` — attaches to a **running** process's
  telemetry endpoint (:mod:`repro.service.telemetry_http`): pulls
  ``/metrics`` (parsed back through
  :func:`repro.obs.export.parse_prometheus`) and ``/slowlog``.  This
  is the operations mode: observe a serving process without touching
  it.

Both feed :func:`render_top`, which formats the snapshot as aligned
monospace text; the CLI clears the terminal between refreshes.
"""

from __future__ import annotations

import json
from pathlib import Path
from urllib.request import urlopen

from repro.obs.export import parse_prometheus
from repro.service.slo import LATENCY_PREFIX, PERCENTILES
from repro.util.clock import NS_PER_S

#: nanoseconds per millisecond, for display conversions.
_NS_PER_MS = NS_PER_S / 1000.0

#: how many slow-query records a snapshot carries.
SLOW_RECORDS_SHOWN = 5

#: scrape timeout per HTTP request, seconds.
SCRAPE_TIMEOUT_S = 5.0


class LocalSource:
    """Drive an in-process Database and read its registry directly."""

    def __init__(self, database, queries: list[str], *,
                 workers: int = 4):
        if not queries:
            raise ValueError(
                "local top needs a workload to drive: pass --query "
                "or --queries-file (or point top at a running "
                "process's http://host:port endpoint)")
        self.database = database
        self.session = database.session()
        self.queries = list(queries)
        self.workers = workers

    @property
    def label(self) -> str:
        return f"local {self.database.repository!r}"

    def sample(self) -> dict:
        """Serve one round of the batch, then snapshot the plane."""
        for result in self.session.execute_many(
                self.queries, max_workers=self.workers):
            len(result.items)  # force the final Decompress step
        report = self.session.slo_report()
        counters = self.database.metrics.counters()
        slow_log = self.database.slow_log
        return {
            "source": self.label,
            "uptime_s": self.database.uptime_ns() / NS_PER_S,
            "served": counters.get("session.executions", 0),
            "qps": report["qps"],
            "classes": report["rolling"],
            "caches": report["caches"],
            "slow": (slow_log.recent(SLOW_RECORDS_SHOWN)
                     if slow_log is not None else []),
        }


class ScrapeSource:
    """Attach to a running process's telemetry endpoint over HTTP."""

    def __init__(self, url: str):
        self.url = url.rstrip("/")

    @property
    def label(self) -> str:
        return f"scrape {self.url}"

    def _get(self, route: str) -> bytes:
        with urlopen(self.url + route,
                     timeout=SCRAPE_TIMEOUT_S) as response:
            return response.read()

    def sample(self) -> dict:
        """One scrape: ``/metrics`` + ``/slowlog`` into a snapshot."""
        scraped = parse_prometheus(
            self._get("/metrics").decode("utf-8"))
        try:
            slow = json.loads(self._get(
                f"/slowlog?n={SLOW_RECORDS_SHOWN}"))["records"]
        except Exception:  # noqa: BLE001 - slowlog is optional garnish
            slow = []
        counters = scraped["counters"]
        gauges = scraped["gauges"]
        classes, qps = rolling_from_windows(scraped["windows"])
        return {
            "source": self.label,
            "uptime_s": gauges.get("telemetry.uptime_s"),
            "served": counters.get("session.executions", 0),
            "qps": qps,
            "classes": classes,
            "caches": caches_from_counters(counters),
            "slow": slow,
        }


def rolling_from_windows(windows: dict) -> tuple[dict, float]:
    """Scraped ``slo.latency_ns.*`` windows -> per-class ms rows."""
    classes: dict[str, dict] = {}
    qps = 0.0
    for name, summary in sorted(windows.items()):
        if not name.startswith(LATENCY_PREFIX):
            continue
        row = {"count": int(summary.get("count", 0)),
               "qps": summary.get("rate_per_s", 0.0)}
        for p in PERCENTILES:
            value = summary.get(f"p{p:g}")
            row[f"p{p:g}_ms"] = (value / _NS_PER_MS
                                 if value is not None else None)
        maximum = summary.get("max")
        row["max_ms"] = (maximum / _NS_PER_MS
                         if maximum is not None else 0.0)
        classes[name[len(LATENCY_PREFIX):]] = row
        qps += row["qps"]
    return classes, qps


def caches_from_counters(counters: dict) -> dict:
    """Scraped ``cache.*`` counters -> the report's cache gauges."""
    caches: dict[str, dict] = {}
    for cache in ("plan", "block"):
        hits = counters.get(f"cache.{cache}.hit", 0)
        misses = counters.get(f"cache.{cache}.miss", 0)
        total = hits + misses
        caches[cache] = {"hit": hits, "miss": misses,
                         "hit_rate": (hits / total) if total
                         else None}
    return caches


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for cells in rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for cells in rows:
        out.append("  ".join(c.ljust(w)
                             for c, w in zip(cells, widths)))
    return out


def _ms(value) -> str:
    return "n/a" if value is None else f"{value:.3f}"


def render_top(snapshot: dict) -> str:
    """One refresh of the console as aligned monospace text."""
    uptime = snapshot.get("uptime_s")
    head = [f"repro top — {snapshot['source']}",
            f"QPS {snapshot['qps']:.2f}   "
            f"served {snapshot['served']}"
            + (f"   uptime {uptime:.1f}s"
               if uptime is not None else "")]
    out = head + [""]

    classes = snapshot["classes"]
    if classes:
        headers = ["class", "count", "qps"] + \
            [f"p{p:g}_ms" for p in PERCENTILES] + ["max_ms"]
        rows = []
        for name, row in classes.items():
            rows.append([name, str(row["count"]),
                         f"{row['qps']:.2f}"]
                        + [_ms(row[f"p{p:g}_ms"])
                           for p in PERCENTILES]
                        + [_ms(row["max_ms"])])
        out.extend(_table(headers, rows))
    else:
        out.append("no traffic in the rolling window")
    out.append("")

    cache_bits = []
    for cache, gauge in snapshot["caches"].items():
        rate = gauge["hit_rate"]
        cache_bits.append(
            f"{cache} {('n/a' if rate is None else f'{rate:.1%}')} "
            f"({gauge['hit']}/{gauge['hit'] + gauge['miss']})")
    out.append("caches: " + "   ".join(cache_bits))
    out.append("")

    slow = snapshot["slow"]
    if slow:
        out.append("latest slow queries (newest last):")
        headers = ["ts", "class", "ms", "plan", "exemplar", "query"]
        rows = []
        for record in slow:
            ts = str(record.get("ts", ""))[11:19]  # HH:MM:SS of ISO
            query = str(record.get("query") or "")
            query = " ".join(query.split())
            if len(query) > 48:
                query = query[:45] + "..."
            rows.append([
                ts, str(record.get("class", "?")),
                f"{record.get('wall_ms', 0.0):.1f}",
                str(record.get("plan_fingerprint") or "-"),
                "yes" if record.get("exemplar") else "-",
                query,
            ])
        out.extend(_table(headers, rows))
    else:
        out.append("no slow queries recorded")
    return "\n".join(out)


def build_source(target: str, *, queries: list[str],
                 workers: int = 4, slow_threshold_ms=None):
    """The source for a CLI target: URL -> scrape, path -> local."""
    if target.startswith(("http://", "https://")):
        return ScrapeSource(target)
    from repro.service.session import Database
    from repro.service.slowlog import SlowQueryLog
    slow_log = SlowQueryLog(threshold_ms=slow_threshold_ms) \
        if slow_threshold_ms is not None else SlowQueryLog()
    database = Database.open(Path(target), slow_log=slow_log)
    return LocalSource(database, queries, workers=workers)


def run_top(source, out, *, interval: float = 2.0,
            once: bool = False, clear: bool = True) -> int:
    """The refresh loop (Ctrl-C exits cleanly)."""
    import time
    try:
        while True:
            text = render_top(source.sample())
            if once:
                print(text, file=out)
                return 0
            if clear:
                print("\x1b[2J\x1b[H", end="", file=out)
            print(text, file=out, flush=True)
            time.sleep(max(interval, 0.1))
    except KeyboardInterrupt:
        return 0

"""``Database``/``Session``: the resident serving layer (tentpole).

The paper's processor (§4) assumes a *resident* compressed repository
answering many queries; this module is that assumption made concrete.
A :class:`Database` holds one loaded
:class:`~repro.storage.repository.CompressedRepository` plus the two
caches tied to it; a :class:`Session` is the unit of query serving over
it — the one public way to run queries:

* :meth:`Session.prepare` parses and statically verifies a query
  **once**, returning a :class:`PreparedQuery` that re-runs any number
  of times (optionally under fresh constant bindings) without touching
  the parser or the plan verifier again;
* every textual ``execute`` goes through the LRU **plan cache** keyed
  on normalized query text — a warm hit skips parse + verification
  entirely (``cache.plan.hit`` counts it);
* the engine underneath evaluates over a
  :class:`~repro.service.blocks.CachedRepositoryView`, so decoded
  container records and structure-summary resolutions are memoised in
  the byte-budgeted **block cache**;
* :meth:`Session.execute_many` serves a batch from a thread pool,
  sharing both caches and the session's thread-safe metrics registry;
* workload recording, telemetry and plan verification all flow through
  this one code path — the system facade, the CLI and the benchmarks
  are thin callers of it.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.workload import WorkloadRecorder
from repro.query.ast import Expression
from repro.query.engine import QueryEngine, QueryResult
from repro.query.options import ExecutionOptions, coerce_options
from repro.query.parser import parse_query
from repro.service.blocks import CachedRepositoryView
from repro.service.cache import (
    DEFAULT_BLOCK_BUDGET,
    DEFAULT_PLAN_CAPACITY,
    BlockCache,
    PlanCache,
    normalize_query_text,
)
from repro.service.slo import (
    classify_query,
    observe_latency,
    slo_report,
)
from repro.service.slowlog import (
    SlowQueryLog,
    snapshot_cache_counters,
)
from repro.storage.repository import CompressedRepository
from repro.util.clock import elapsed_ns, now_ns


class PreparedPlan:
    """The cacheable product of parse + static verification.

    Holds no session reference, so one plan cache can back several
    sessions over the same repository; a :class:`PreparedQuery` binds a
    plan to the session it will run on.
    """

    __slots__ = ("key", "text", "ast", "diagnostics", "query_class")

    def __init__(self, key: str | None, text: str | None,
                 ast: Expression, diagnostics: list):
        self.key = key
        self.text = text
        self.ast = ast
        self.diagnostics = diagnostics
        #: SLO bucket the plan's serving latencies are filed under
        #: (computed once here, reused by every cached-plan run).
        self.query_class = classify_query(ast)

    def __repr__(self) -> str:
        return f"<PreparedPlan {self.text or type(self.ast).__name__!r}>"


class PreparedQuery:
    """A parsed, verified query bound to a session, ready to re-run."""

    __slots__ = ("session", "plan")

    def __init__(self, session: "Session", plan: PreparedPlan):
        self.session = session
        self.plan = plan

    @property
    def text(self) -> str | None:
        """The original query text (``None`` for AST-prepared ones)."""
        return self.plan.text

    @property
    def ast(self) -> Expression:
        """The parsed expression the plan evaluates."""
        return self.plan.ast

    @property
    def diagnostics(self) -> list:
        """The static verifier's findings, computed at prepare time."""
        return self.plan.diagnostics

    def run(self, options: ExecutionOptions | None = None, *,
            bindings: dict | None = None, **legacy) -> QueryResult:
        """Execute the prepared plan (parse/verify already paid).

        ``bindings`` rebinds external ``$variables`` to new constants
        for this run only — the prepared-statement idiom: one plan,
        many parameterizations.
        """
        options = coerce_options(options, legacy, "PreparedQuery.run")
        if bindings is not None:
            merged = dict(options.bindings or {})
            merged.update(bindings)
            options = replace(options, bindings=merged)
        return self.session._run(self, options)

    def __repr__(self) -> str:
        return f"<PreparedQuery {self.text!r}>"


class Session:
    """One serving session over a resident compressed repository.

    All caches, the metrics registry and the workload recorder are
    shared by every query the session runs — including the worker
    threads of :meth:`execute_many` — and all of them are thread-safe.

    Cache sizing knobs: ``plan_capacity`` bounds the number of resident
    prepared plans; ``block_budget`` bounds the approximate decoded
    bytes the block cache holds (both can also be injected pre-built
    via ``plan_cache=``/``block_cache=`` to share across sessions, the
    way :class:`Database` does).
    """

    GUARDED_BY = {"_raw_engine": "_engine_lock"}

    def __init__(self, repository: CompressedRepository,
                 collection: dict[str, CompressedRepository]
                 | None = None, *,
                 plan_cache: PlanCache | None = None,
                 block_cache: BlockCache | None = None,
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY,
                 block_budget: int = DEFAULT_BLOCK_BUDGET,
                 metrics: MetricsRegistry | None = None,
                 journal=None,
                 recorder: WorkloadRecorder | None = None,
                 slow_log: SlowQueryLog | None = None,
                 verify_plans: bool = True,
                 telemetry_enabled: bool = False,
                 batch_size: int | None = None):
        if batch_size is not None and batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}")
        #: session default for ``ExecutionOptions.batch_size`` —
        #: applied to every run that does not pin its own; ``None``
        #: falls through to the engine default
        #: (:data:`repro.query.batch.DEFAULT_BATCH_SIZE`).
        self.batch_size = batch_size
        self.repository = repository
        self.collection = dict(collection) if collection else {}
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.plan_cache = plan_cache if plan_cache is not None \
            else PlanCache(plan_capacity, metrics=self.metrics)
        self.block_cache = block_cache if block_cache is not None \
            else BlockCache(block_budget, metrics=self.metrics)
        self.telemetry_enabled = telemetry_enabled
        #: one recorder — and therefore one journal file handle — per
        #: session, however many queries it records.
        if recorder is None and journal is not None:
            recorder = WorkloadRecorder(journal)
        self.recorder = recorder
        #: over-threshold executions append here (usually the owning
        #: Database's shared log); None disables slow-query logging.
        self.slow_log = slow_log
        self._view = CachedRepositoryView(repository, self.block_cache)
        self.engine = QueryEngine(
            self._view, collection=self.collection or None,
            telemetry_enabled=telemetry_enabled,
            verify_plans=verify_plans, recorder=recorder)
        self._raw_engine: QueryEngine | None = None
        self._engine_lock = threading.Lock()
        #: serializes runs that activate the process-wide telemetry /
        #: recorder slots (enabled tracing, workload capture) — those
        #: globals are not thread-local, so traced runs take turns
        #: while plain counter-only runs stay fully parallel.
        self._activation_lock = threading.Lock()

    # -- preparing -----------------------------------------------------------

    def prepare(self, query: str | Expression,
                use_cache: bool = True) -> PreparedQuery:
        """Parse + statically verify once; re-run many times.

        Textual queries go through the plan cache (keyed on normalized
        text); a hit returns without touching the parser or the
        verifier.  Verification *errors* surface here, at prepare time
        — a plan that cannot run is never cached.
        """
        self.metrics.add("session.prepares")
        if isinstance(query, Expression):
            return PreparedQuery(self, self._build_plan(None, None,
                                                        query))
        key = normalize_query_text(query)
        if use_cache:
            plan = self.plan_cache.get(key)
            if plan is not None:
                return PreparedQuery(self, plan)
        plan = self._build_plan(key, query, None)
        if use_cache:
            self.plan_cache.put(key, plan)
        return PreparedQuery(self, plan)

    def _build_plan(self, key: str | None, text: str | None,
                    ast: Expression | None) -> PreparedPlan:
        if ast is None:
            self.metrics.add("session.parses")
            ast = parse_query(text)
        diagnostics: list = []
        if self.engine.verify_plans:
            diagnostics = self.engine.verify(ast)
            if any(d.severity == "error" for d in diagnostics):
                from repro.errors import PlanVerificationError
                raise PlanVerificationError(diagnostics)
        return PreparedPlan(key, text, ast, diagnostics)

    # -- executing -----------------------------------------------------------

    def execute(self, query: str | Expression,
                options: ExecutionOptions | None = None,
                **legacy) -> QueryResult:
        """The unified entry point: prepare (cached) + run."""
        options = coerce_options(options, legacy, "Session.execute")
        # Snapshot cache counters before prepare(), not inside _run:
        # the plan-cache hit/miss of *this* query lands in prepare,
        # and the slow-query record's deltas should cover it.
        cache_before = snapshot_cache_counters(self.metrics) \
            if self.slow_log is not None else None
        prepared = self.prepare(query, use_cache=options.use_plan_cache)
        return self._run(prepared, options, cache_before=cache_before)

    def execute_many(self, queries: Sequence[str | Expression],
                     max_workers: int = 4,
                     options: ExecutionOptions | None = None
                     ) -> list[QueryResult]:
        """Serve a batch of queries from a thread pool.

        Results come back in input order and match what serial
        execution returns.  One shared ``options.telemetry`` cannot
        record N concurrent runs, so it is rejected; per-run telemetry
        (``telemetry_enabled=True``) and workload recording work, but
        serialize on the process-wide activation slot.
        """
        options = options if options is not None else ExecutionOptions()
        if options.telemetry is not None:
            raise ValueError(
                "execute_many cannot share one Telemetry across "
                "concurrent runs; use "
                "ExecutionOptions(telemetry_enabled=True) for per-run "
                "telemetry")
        self.metrics.add("session.batches")
        if max_workers <= 1 or len(queries) <= 1:
            return [self.execute(query, options) for query in queries]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(
                lambda query: self.execute(query, options), queries))

    def _run(self, prepared: PreparedQuery,
             options: ExecutionOptions,
             cache_before: dict | None = None) -> QueryResult:
        if options.batch_size is None and self.batch_size is not None:
            options = replace(options, batch_size=self.batch_size)
        engine = self._engine_for(options)
        record = options.record
        if record is None:
            record = self.recorder is not None and self.recorder.enabled
        # Slow-query exemplar sampling: every Nth execution runs with
        # a fresh per-run telemetry so an over-threshold run has a
        # span breakdown to attach.  Caller-provided telemetry serves
        # the same purpose for free; profiled runs already carry one.
        slow_log = self.slow_log
        exemplar_source = options.telemetry
        if slow_log is not None:
            if cache_before is None:
                cache_before = snapshot_cache_counters(self.metrics)
            if exemplar_source is None and not options.profile:
                sampled = slow_log.maybe_sample()
                if sampled is not None:
                    options = replace(options, telemetry=sampled)
                    exemplar_source = sampled
        telemetry_on = (options.telemetry.enabled
                        if options.telemetry is not None
                        else options.telemetry_enabled
                        or self.telemetry_enabled
                        or bool(options.profile))
        self.metrics.add("session.executions")
        start_ns = now_ns()
        failed = True
        try:
            if telemetry_on or record:
                with self._activation_lock:
                    result = engine.execute(
                        prepared.ast, options,
                        diagnostics=prepared.diagnostics,
                        label=prepared.plan.text)
            else:
                result = engine.execute(
                    prepared.ast, options,
                    diagnostics=prepared.diagnostics,
                    label=prepared.plan.text)
            failed = False
            return result
        finally:
            # Per-class serving latency, failed runs included — a
            # query that errors out still occupied the session.
            wall_ns = elapsed_ns(start_ns)
            observe_latency(self.metrics, prepared.plan.query_class,
                            wall_ns)
            if slow_log is not None:
                slow_log.maybe_record(
                    query=prepared.plan.text, ast=prepared.ast,
                    query_class=prepared.plan.query_class,
                    wall_ns=wall_ns, telemetry=exemplar_source,
                    cache_before=cache_before,
                    cache_after=snapshot_cache_counters(self.metrics),
                    error=failed)

    def slo_report(self, objectives=None) -> dict:
        """Per-query-class latency quantiles + cache hit-rate gauges.

        ``objectives`` is an optional list of
        :class:`~repro.service.slo.LatencyObjective` targets to check;
        rendered by ``repro perf report``.
        """
        return slo_report(self.metrics, objectives)

    def _engine_for(self, options: ExecutionOptions) -> QueryEngine:
        if options.use_block_cache:
            return self.engine
        with self._engine_lock:
            if self._raw_engine is None:
                raw = QueryEngine(
                    self.repository,
                    collection=self.collection or None,
                    telemetry_enabled=self.telemetry_enabled,
                    verify_plans=self.engine.verify_plans,
                    recorder=self.recorder)
                # Full-text indexes are registered once per session;
                # both engines must see the same registrations.
                raw._fulltext_indexes = self.engine._fulltext_indexes
                self._raw_engine = raw
            return self._raw_engine

    # -- explain / analyze ---------------------------------------------------

    def explain(self, query: str | Expression) -> str:
        """Describe the evaluation strategy without running the query."""
        return self.engine.explain(query)

    def analyze(self, query: str | Expression,
                options: ExecutionOptions | None = None):
        """``EXPLAIN ANALYZE`` through the session (plan cache
        included): returns the full
        :class:`~repro.query.analyze.AnalyzeReport`."""
        from repro.query.analyze import explain_analyze
        prepared = self.prepare(
            query, use_cache=options.use_plan_cache
            if options is not None else True)
        with self._activation_lock:
            return explain_analyze(prepared.ast, self.engine,
                                   options=options)

    def explain_analyze(self, query: str | Expression) -> str:
        """The rendered ``EXPLAIN ANALYZE`` text."""
        return self.analyze(query).text

    # -- repository-level helpers -------------------------------------------

    def build_fulltext_index(self, container_path: str):
        """Register a §6 full-text index on one container."""
        return self.engine.build_fulltext_index(container_path)

    def decompress(self) -> str:
        """Reconstruct the whole document as XML text."""
        from repro.query.context import EvaluationStats
        from repro.xmlio.writer import serialize
        element = self.engine.materialize_node(0, EvaluationStats())
        return serialize(element)

    def invalidate_caches(self) -> None:
        """Explicitly flush both caches (e.g. after swapping the
        repository a Database serves).

        Also drops every container's memoized ``as_arrays`` view: the
        block cache charged those views to its byte budget, so
        flushing the cache without dropping the memos would leave the
        arrays resident (and the next batch-mode access would
        resurrect them from the stale memo instead of rebuilding and
        re-charging them)."""
        self.plan_cache.invalidate()
        self.block_cache.invalidate()
        _drop_array_views(self.repository, self.collection)

    def close(self) -> None:
        """Release session resources (the recorder's journal handle)."""
        if self.recorder is not None:
            self.recorder.journal.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<Session over {self.repository!r} "
                f"plan={self.plan_cache!r} block={self.block_cache!r}>")


def _drop_array_views(repository, collection) -> None:
    """Drop memoized container array views on a repository (and the
    collection documents served next to it)."""
    repository.drop_array_views()
    for other in (collection or {}).values():
        other.drop_array_views()


class Database:
    """A resident compressed database: repository + shared caches.

    The factory for sessions — every :meth:`session` shares the
    database's plan cache, block cache, metrics registry and (when
    configured) slow-query log, so a pool of serving sessions over one
    document warms one set of caches and feeds one telemetry plane.

    :meth:`serve_telemetry` starts the embedded HTTP exporter
    (``/metrics``, ``/health``, ``/ready``, ``/slowlog``) over that
    shared registry — the operational window into a resident serving
    process.
    """

    def __init__(self, repository: CompressedRepository,
                 collection: dict[str, CompressedRepository]
                 | None = None, *,
                 plan_capacity: int = DEFAULT_PLAN_CAPACITY,
                 block_budget: int = DEFAULT_BLOCK_BUDGET,
                 metrics: MetricsRegistry | None = None,
                 slow_log: SlowQueryLog | None = None,
                 batch_size: int | None = None):
        self.repository = repository
        #: default ``batch_size`` handed to every session (and from
        #: there to every run that does not pin its own).
        self.batch_size = batch_size
        self.collection = dict(collection) if collection else {}
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.plan_cache = PlanCache(plan_capacity,
                                    metrics=self.metrics)
        self.block_cache = BlockCache(block_budget,
                                      metrics=self.metrics)
        self.slow_log = slow_log
        if slow_log is not None and slow_log.metrics is None:
            slow_log.metrics = self.metrics
            self.metrics.set_gauge("slowlog.threshold_ms",
                                   slow_log.threshold_ms)
            self.metrics.set_gauge("slowlog.exemplar_rate",
                                   slow_log.exemplar_rate)
        #: the running telemetry exporter, while one is attached.
        self._telemetry_server = None
        self._started_ns = now_ns()

    @classmethod
    def open(cls, path: str | Path, **kwargs) -> "Database":
        """Open a serialized repository file (``.xqc``)."""
        from repro.storage.serialization import load_repository
        return cls(load_repository(Path(path)), **kwargs)

    @classmethod
    def from_xml(cls, xml_text: str, configuration=None,
                 **kwargs) -> "Database":
        """Load (and compress) an XML document into a database."""
        from repro.storage.loader import load_document
        return cls(load_document(xml_text,
                                 configuration=configuration), **kwargs)

    def session(self, **kwargs) -> Session:
        """A new session sharing this database's caches and metrics."""
        kwargs.setdefault("plan_cache", self.plan_cache)
        kwargs.setdefault("block_cache", self.block_cache)
        kwargs.setdefault("metrics", self.metrics)
        kwargs.setdefault("slow_log", self.slow_log)
        kwargs.setdefault("batch_size", self.batch_size)
        return Session(self.repository,
                       self.collection or None, **kwargs)

    def invalidate_caches(self) -> None:
        """Flush the shared plan and block caches *and* the per-
        container array memos they charged to their budget.

        Every session spawned by :meth:`session` shares these caches,
        so one call invalidates them for the whole database; the
        array-view memos live on the containers themselves and must be
        dropped here too or they survive eviction (see
        ``Session.invalidate_caches``)."""
        self.plan_cache.invalidate()
        self.block_cache.invalidate()
        _drop_array_views(self.repository, self.collection)

    # -- telemetry plane -----------------------------------------------------

    def uptime_ns(self) -> int:
        """Nanoseconds since this database was constructed."""
        return elapsed_ns(self._started_ns)

    def ready(self) -> bool:
        """Readiness: repository loaded and caches warm-capable.

        The telemetry endpoint's ``/ready`` answer — ``True`` once the
        structure tree is resident and both caches can accept entries.
        (``/health`` is liveness and always answers while the exporter
        thread runs.)
        """
        try:
            return (self.repository is not None
                    and len(self.repository.structure) > 0
                    and self.plan_cache.capacity >= 1
                    and self.block_cache.budget_bytes >= 1)
        except Exception:  # noqa: BLE001 - readiness must not raise
            return False

    def serve_telemetry(self, port: int = 0,
                        host: str = "127.0.0.1"):
        """Start the embedded telemetry endpoint; returns the server.

        ``port=0`` binds an ephemeral port (``server.port`` has the
        real one).  The returned
        :class:`~repro.service.telemetry_http.TelemetryServer` is a
        context manager; ``with db.serve_telemetry(9464):`` scrapes
        cleanly and shuts the exporter thread down on exit.  Also
        stopped by :meth:`stop_telemetry`.
        """
        from repro.service.telemetry_http import TelemetryServer
        if self._telemetry_server is not None \
                and not self._telemetry_server.closed:
            raise RuntimeError(
                "telemetry endpoint already serving on port "
                f"{self._telemetry_server.port}; stop it first")
        server = TelemetryServer(self, host=host, port=port)
        server.start()
        self._telemetry_server = server
        return server

    def stop_telemetry(self) -> None:
        """Stop the telemetry endpoint, if one is serving."""
        server = self._telemetry_server
        if server is not None:
            self._telemetry_server = None
            server.close()

    def __repr__(self) -> str:
        return f"<Database {self.repository!r}>"

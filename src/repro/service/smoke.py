"""Serving-layer smoke benchmark (the CI ``service-smoke`` job).

Loads a small XMark document into a :class:`~repro.service.Database`,
then serves the same query set twice through one session:

* **cold** — both caches invalidated before every query, so each run
  pays parse + static verification + uncached block decoding;
* **warm** — caches left alone, so every run after the first hits the
  plan cache (skipping parse/verify) and the block cache.

The run *asserts* the serving layer is actually serving: the warm
passes must beat the cold passes wall-clock, and the session metrics
must show nonzero ``cache.plan.hit`` and ``cache.block.hit``.  Each
phase appends one point per query to the benchmark trajectory
(:mod:`repro.bench.trajectory`), so cache effectiveness is tracked
across the repo's history like every other §5 number.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.trajectory import TRAJECTORY_PATH, load_trajectory, \
    record_point
from repro.util.clock import Stopwatch, ns_to_s


def _run_queries(session, query_ids: list[str], texts: dict[str, str],
                 repeat: int, cold: bool) -> dict[str, int]:
    """Total wall nanoseconds per query over ``repeat`` runs."""
    totals: dict[str, int] = {qid: 0 for qid in query_ids}
    for _ in range(repeat):
        for query_id in query_ids:
            if cold:
                session.invalidate_caches()
            with Stopwatch() as watch:
                result = session.execute(texts[query_id])
                len(result.items)
            totals[query_id] += watch.ns
    return totals


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.smoke",
        description="warm/cold cache benchmark over the serving layer")
    parser.add_argument("--factor", type=float, default=0.02,
                        help="XMark scale factor (default 0.02)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", default="Q1,Q2,Q5,Q8",
                        help="comma-separated XMark query ids")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per query per phase (default 3)")
    parser.add_argument("--trajectory", type=Path,
                        default=TRAJECTORY_PATH)
    args = parser.parse_args(argv)

    from repro.service import Database
    from repro.xmark.generator import generate_xmark
    from repro.xmark.queries import query_text

    query_ids = [q.strip() for q in args.queries.split(",")
                 if q.strip()]
    texts = {qid: query_text(qid) for qid in query_ids}
    xml_text = generate_xmark(factor=args.factor, seed=args.seed)
    database = Database.from_xml(xml_text)
    session = database.session()

    cold = _run_queries(session, query_ids, texts, args.repeat,
                        cold=True)
    session.invalidate_caches()
    warm = _run_queries(session, query_ids, texts, args.repeat,
                        cold=False)

    counters = database.metrics.counters()
    plan_hits = counters.get("cache.plan.hit", 0)
    block_hits = counters.get("cache.block.hit", 0)
    cold_total = ns_to_s(sum(cold.values()))
    warm_total = ns_to_s(sum(warm.values()))
    speedup = cold_total / warm_total if warm_total else float("inf")
    for query_id in query_ids:
        print(f"{query_id}: cold {ns_to_s(cold[query_id]):.4f} s, "
              f"warm {ns_to_s(warm[query_id]):.4f} s "
              f"({args.repeat} runs each)", file=out)
        for phase, totals in (("cold", cold), ("warm", warm)):
            record_point(
                query=query_id,
                wall_ns=totals[query_id] // args.repeat,
                experiment=f"service_smoke_{phase}",
                items=0,
                path=args.trajectory)
    print(f"total: cold {cold_total:.4f} s, warm {warm_total:.4f} s "
          f"(speedup {speedup:.2f}x)", file=out)
    print(f"cache.plan.hit={plan_hits} cache.block.hit={block_hits} "
          f"prepares={counters.get('session.prepares', 0)} "
          f"parses={counters.get('session.parses', 0)}", file=out)
    print(f"trajectory: {args.trajectory} "
          f"({len(load_trajectory(args.trajectory))} points)",
          file=out)

    failures = []
    if plan_hits == 0:
        failures.append("no plan-cache hits in the warm phase")
    if block_hits == 0:
        failures.append("no block-cache hits in the warm phase")
    if warm_total >= cold_total:
        failures.append(
            f"warm serving was not faster than cold "
            f"({warm_total:.4f} s >= {cold_total:.4f} s)")
    for failure in failures:
        print(f"FAIL: {failure}", file=out)
    if not failures:
        print("service smoke OK", file=out)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

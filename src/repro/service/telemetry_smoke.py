"""Telemetry-plane smoke run (the CI ``telemetry-smoke`` job).

Exercises the whole serving telemetry plane end-to-end, the way an
operator would meet it:

1. load a small XMark document into a
   :class:`~repro.service.Database` with a slow-query log attached
   and ``serve_telemetry()`` running;
2. serve a batch of XMark queries through ``execute_many`` (so the
   windows see concurrent traffic);
3. **scrape** ``/metrics`` over real HTTP and assert the exposition
   carries the serving counters, cache counters and per-class rolling
   windows; assert ``/health`` answers 200 and ``/ready`` is true;
4. force one guaranteed-slow query (threshold 0 on a second log
   would hide the point — instead the smoke drops the threshold to
   0 ms and samples every run) and assert the slow-query log holds a
   record **with an exemplar** span breakdown and a plan fingerprint;
5. shut the endpoint down cleanly and assert the port is released
   (a second ``serve_telemetry`` on the same Database must succeed).

Any broken link in that chain — exporter, parser, window plumbing,
slow-log wiring, lifecycle — fails the job with a named FAIL line.
"""

from __future__ import annotations

import argparse
import json
import sys
from urllib.request import urlopen

from repro.obs.export import parse_prometheus
from repro.service.slo import LATENCY_PREFIX


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.telemetry_smoke",
        description="end-to-end smoke of the serving telemetry "
                    "plane: endpoint, windows, slow-query log")
    parser.add_argument("--factor", type=float, default=0.01,
                        help="XMark scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", default="Q1,Q2,Q5,Q8",
                        help="comma-separated XMark query ids")
    parser.add_argument("--repeat", type=int, default=3,
                        help="rounds of the batch (default 3)")
    parser.add_argument("--workers", type=int, default=4,
                        help="execute_many width (default 4)")
    args = parser.parse_args(argv)

    from repro.service import Database, SlowQueryLog
    from repro.xmark.generator import generate_xmark
    from repro.xmark.queries import query_text

    query_ids = [q.strip() for q in args.queries.split(",")
                 if q.strip()]
    texts = [query_text(qid) for qid in query_ids]
    xml_text = generate_xmark(factor=args.factor, seed=args.seed)
    # threshold 0 ms + exemplar_rate 1: every query is "slow" and
    # every run is sampled, so the exemplar path is exercised
    # deterministically instead of hoping a real query crosses 100 ms
    # on whatever hardware CI runs on.
    slow_log = SlowQueryLog(threshold_ms=0.0, exemplar_rate=1)
    database = Database.from_xml(xml_text, slow_log=slow_log)
    session = database.session()

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"{'ok' if ok else 'FAIL'}: {what}", file=out)
        if not ok:
            failures.append(what)

    with database.serve_telemetry() as server:
        print(f"telemetry endpoint: {server.url}", file=out)
        for _ in range(max(args.repeat, 1)):
            for result in session.execute_many(
                    texts, max_workers=args.workers):
                len(result.items)

        body = urlopen(server.url + "/metrics").read().decode()
        scraped = parse_prometheus(body)
        served = scraped["counters"].get("session.executions", 0)
        expected = len(texts) * max(args.repeat, 1)
        check(served == expected,
              f"scraped session.executions == {expected} "
              f"(got {served})")
        check("cache.plan.hit" in scraped["counters"],
              "scrape carries plan-cache counters")
        check("cache.block.hit" in scraped["counters"],
              "scrape carries block-cache counters")
        windows = [name for name in scraped["windows"]
                   if name.startswith(LATENCY_PREFIX)]
        check(bool(windows),
              f"scrape carries rolling latency windows "
              f"({len(windows)} classes)")
        check(any(scraped["windows"][name].get("rate_per_s", 0) > 0
                  for name in windows),
              "rolling windows report a nonzero rate")
        check("telemetry.uptime_s" in scraped["gauges"],
              "scrape carries the uptime gauge")

        with urlopen(server.url + "/health") as response:
            health = json.loads(response.read())
            check(response.status == 200 and
                  health.get("status") == "ok",
                  "/health answers 200 ok")
        with urlopen(server.url + "/ready") as response:
            check(response.status == 200 and
                  json.loads(response.read()).get("ready") is True,
                  "/ready reports ready")

        records = slow_log.recent()
        check(bool(records), f"slow-query log holds records "
                             f"(got {len(records)})")
        exemplars = [r for r in records if r.get("exemplar")]
        check(bool(exemplars),
              f"slow records carry exemplar span breakdowns "
              f"({len(exemplars)}/{len(records)})")
        check(all(r.get("plan_fingerprint") for r in records),
              "slow records carry plan fingerprints")
        with urlopen(server.url + "/slowlog?n=5") as response:
            endpoint_records = json.loads(response.read())["records"]
            check(len(endpoint_records) == min(5, len(records)),
                  "/slowlog serves the ring")

    check(server.closed, "endpoint shut down cleanly")
    second = database.serve_telemetry()
    check(not second.closed, "endpoint restarts after shutdown")
    database.stop_telemetry()

    if failures:
        print(f"{len(failures)} telemetry smoke failure(s)", file=out)
        return 1
    print("telemetry smoke OK", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Sharded-serving smoke run (the CI ``shard-serving-smoke`` job).

Boots the sharded serving plane the way an operator would and walks
the whole chain:

1. load a small XMark document, compute the subtree shard placement
   and fork 2 worker processes;
2. drive a bounded load-generator run (every XMark query, a few
   rounds, concurrent clients) through the coordinator;
3. assert the run completed cleanly: zero errors, nonzero completed
   queries, **nonzero cross-shard queries** (the XMark joins must
   span the placement), shipped-byte accounting recorded, and a
   trajectory point written;
4. scrape the folded per-shard counters off the coordinator's
   registry and assert every worker reported executions;
5. shut down via SIGTERM and assert both workers exited (exitcode
   ``0`` or ``-SIGTERM``) with **no orphan processes** left.

Any broken link fails the job with a named FAIL line.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import tempfile
from pathlib import Path


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.shard_smoke",
        description="end-to-end smoke of the sharded serving plane: "
                    "placement, workers, loadgen, shutdown")
    parser.add_argument("--factor", type=float, default=0.002,
                        help="XMark scale factor (default 0.002)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--trajectory", default=None,
                        help="trajectory JSON path (default: a "
                             "temporary file; CI archives it)")
    args = parser.parse_args(argv)

    from repro.bench.loadgen import run_loadgen
    from repro.bench.trajectory import load_trajectory
    from repro.service.shards import ShardedDatabase
    from repro.storage.loader import load_document
    from repro.xmark.generator import generate_xmark
    from repro.xmark.queries import XMARK_QUERIES, query_text

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"{'ok' if ok else 'FAIL'}: {what}", file=out)
        if not ok:
            failures.append(what)

    trajectory = Path(args.trajectory) if args.trajectory else \
        Path(tempfile.mkdtemp(prefix="shard-smoke-")) \
        / "BENCH_trajectory.json"

    texts = [query_text(qid) for qid in XMARK_QUERIES]
    repository = load_document(generate_xmark(factor=args.factor,
                                              seed=args.seed))
    database = ShardedDatabase(repository, shard_count=args.shards,
                               queries=texts)
    check(database.assignment.shard_count == args.shards,
          f"placement chose {args.shards} shards")
    check(all(database.assignment.subtrees_by_shard),
          "every shard owns at least one subtree")

    database.start()
    pids = [worker.process.pid for worker in database._workers]
    check(len(pids) == args.shards and all(pids),
          f"{args.shards} worker processes forked: {pids}")
    check(database.ready(), "coordinator is ready (all workers ping)")

    report = run_loadgen(database, texts, rounds=args.rounds,
                         clients=args.clients,
                         experiment="shard-serving-smoke",
                         trajectory_path=trajectory)
    expected = len(texts) * args.rounds
    check(report.completed == expected and report.errors == 0,
          f"loadgen completed {report.completed}/{expected} "
          f"queries with 0 errors")
    check(report.cross_shard_queries > 0,
          f"cross-shard queries observed "
          f"({report.cross_shard_queries})")
    check(report.wire_bytes > 0 and report.plain_bytes > 0,
          f"shipped-byte accounting recorded "
          f"({report.wire_bytes}B wire / {report.plain_bytes}B "
          f"plain)")
    check(report.p99_ms >= report.p50_ms > 0,
          f"latency percentiles sane "
          f"(p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms)")
    check(report.qps > 0, f"sustained {report.qps:.1f} QPS")

    database.gather_metrics()
    counters = database.metrics.counters()
    per_shard = [counters.get(f"shard.{i}.session.executions", 0)
                 for i in range(args.shards)]
    check(all(count > 0 for count in per_shard),
          f"every worker executed queries {per_shard}")

    points = load_trajectory(trajectory)
    check(len(points) == 1 and points[0].get("rolling", {})
          .get("qps") is not None,
          f"trajectory point written to {trajectory}")

    # SIGTERM-path shutdown: skip the polite pipe op and signal the
    # workers directly, the way a process supervisor stops the plane.
    for worker in database._workers:
        worker.process.terminate()
    for worker in database._workers:
        worker.process.join(15.0)
    exit_codes = [worker.process.exitcode
                  for worker in database._workers]
    check(all(code in (0, -signal.SIGTERM) for code in exit_codes),
          f"workers exited cleanly on SIGTERM {exit_codes}")
    orphans = [worker.process.pid for worker in database._workers
               if worker.process.is_alive()]
    check(not orphans, f"no orphan workers remain {orphans or ''}")
    database._workers = []
    database.close()

    print(json.dumps(report.to_dict(), indent=1), file=out)
    if failures:
        print(f"{len(failures)} shard smoke failure(s)", file=out)
        return 1
    print("shard serving smoke OK", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

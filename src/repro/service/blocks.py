"""Block-cached views over a compressed repository.

The session builds its engine over a :class:`CachedRepositoryView`
instead of the raw :class:`~repro.storage.repository.CompressedRepository`.
The view is a transparent forwarding proxy that intercepts exactly the
two block-shaped lookups the paper's processor repeats across queries:

* **structure-summary resolutions** — ``resolve_path(steps)`` walks the
  path summary; resident sessions resolve the same absolute prefixes
  on every query touching the same region of the document;
* **decoded container records** — ``container(path).value_at(index)``
  is the per-record decompression unit; result materialization and
  string atomization hit the same hot records again and again.

Everything else (structure tree, name dictionary, codecs, interval
searches) forwards to the wrapped objects unchanged, so operator
counters, workload capture and plan verification observe the same
repository they always did.  The views themselves are stateless apart
from the shared :class:`~repro.service.cache.BlockCache`; one cache can
back any number of sessions over the same repository.
"""

from __future__ import annotations

import threading

from repro.service.cache import BlockCache
from repro.storage.repository import CompressedRepository

#: approximate per-entry bookkeeping overhead charged on top of the
#: decoded payload (key tuple, OrderedDict slot, string header).
_ENTRY_OVERHEAD = 96


class CachedContainerView:
    """A value container with block-cached decoded record access."""

    __slots__ = ("_container", "_cache")

    def __init__(self, container, cache: BlockCache):
        self._container = container
        self._cache = cache

    def value_at(self, index: int) -> str:
        """Plain value by position, memoised in the block cache."""
        key = ("value", self._container.path, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._container.value_at(index)
        self._cache.put(key, value, len(value) + _ENTRY_OVERHEAD)
        return value

    def record_at(self, index: int):
        """Record by position; cached only for blob containers, where
        every access re-encodes the value (non-blob access is a plain
        list index — caching it would only add overhead)."""
        if not self._container.is_blob:
            return self._container.record_at(index)
        key = ("record", self._container.path, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        record = self._container.record_at(index)
        self._cache.put(key, record,
                        record.compressed.nbytes + _ENTRY_OVERHEAD)
        return record

    def as_arrays(self):
        """The container's array view, charged to the block cache.

        The arrays are immutable once built (containers are sealed),
        so the cache entry doubles as the memo *and* as budget
        accounting: the batch engine's resident array footprint shows
        up in — and is evicted by — the same byte budget as decoded
        records.
        """
        key = ("arrays", self._container.path)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        arrays = self._container.as_arrays()
        self._cache.put(key, arrays, arrays.nbytes + _ENTRY_OVERHEAD)
        return arrays

    def __len__(self) -> int:
        return len(self._container)

    def __getattr__(self, name: str):
        return getattr(self._container, name)

    def __repr__(self) -> str:
        return f"<CachedContainerView {self._container!r}>"


class CachedRepositoryView:
    """A repository whose block-shaped lookups go through one cache."""

    __slots__ = ("_repository", "_cache", "_views", "_views_lock")

    GUARDED_BY = {"_views": "_views_lock"}

    def __init__(self, repository: CompressedRepository,
                 cache: BlockCache):
        self._repository = repository
        self._cache = cache
        self._views: dict[str, CachedContainerView] = {}
        self._views_lock = threading.Lock()

    @property
    def wrapped(self) -> CompressedRepository:
        """The raw repository underneath (for cache-bypassing paths)."""
        return self._repository

    def container(self, path: str) -> CachedContainerView:
        """The block-cached view of one container (views are shared,
        so per-path lookups stay one dict probe)."""
        view = self._views.get(path)  # lockfree-read (double-checked)
        if view is None:
            container = self._repository.container(path)
            with self._views_lock:
                view = self._views.get(path)
                if view is None:
                    view = CachedContainerView(container, self._cache)
                    self._views[path] = view
        return view

    def resolve_path(self, steps):
        """Structure-summary resolution, memoised in the block cache."""
        key = ("resolve", tuple(steps))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        nodes = self._repository.resolve_path(list(steps))
        self._cache.put(key, nodes,
                        len(nodes) * 64 + _ENTRY_OVERHEAD)
        return nodes

    def __getattr__(self, name: str):
        return getattr(self._repository, name)

    def __repr__(self) -> str:
        return f"<CachedRepositoryView {self._repository!r}>"

"""The serving layer: ``Database``/``Session`` over a resident
compressed repository, with a prepared-plan LRU, a byte-budgeted
decoded-block cache, and a telemetry plane (``/metrics`` endpoint,
slow-query log, ``repro top``) behind one unified execution API."""

from repro.query.options import ExecutionOptions
from repro.service.blocks import (
    CachedContainerView,
    CachedRepositoryView,
)
from repro.service.cache import (
    DEFAULT_BLOCK_BUDGET,
    DEFAULT_PLAN_CAPACITY,
    BlockCache,
    PlanCache,
    normalize_query_text,
)
from repro.service.session import (
    Database,
    PreparedPlan,
    PreparedQuery,
    Session,
)
from repro.service.slo import (
    LatencyObjective,
    classify_query,
    render_slo_report,
    slo_report,
)
from repro.service.slowlog import SlowQueryLog, default_slowlog_path
from repro.service.telemetry_http import TelemetryServer

__all__ = [
    "BlockCache",
    "CachedContainerView",
    "CachedRepositoryView",
    "classify_query",
    "Database",
    "DEFAULT_BLOCK_BUDGET",
    "DEFAULT_PLAN_CAPACITY",
    "ExecutionOptions",
    "LatencyObjective",
    "normalize_query_text",
    "PlanCache",
    "PreparedPlan",
    "PreparedQuery",
    "render_slo_report",
    "Session",
    "slo_report",
    "SlowQueryLog",
    "TelemetryServer",
    "default_slowlog_path",
]

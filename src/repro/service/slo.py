"""Serving SLOs: per-query-class latency distributions + cache gauges.

The Session layer serves heterogeneous queries; one global latency
histogram hides a slow join behind a million fast point lookups.  Every
:meth:`Session.execute <repro.service.session.Session.execute>` (and
each ``execute_many`` worker) therefore observes its end-to-end wall
time into a per-**query-class** histogram —
``slo.latency_ns.<class>`` on the session's shared registry — where
the class is derived from the prepared plan's AST shape:

``point``      FLWOR with an equality-only where clause (the paper's
               Fig. 7 Q1 shape — index/point lookups);
``scan``       FLWOR whose where clause compares with ``<``/``>``/
               wildcards, or path expressions with positional or value
               predicates (range/scan-heavy);
``join``       FLWOR with more than one ``for`` binding (structural
               or value joins);
``path``       bare path expressions (navigation only);
``construct``  element constructors at the top level;
``other``      everything else.

:func:`slo_report` folds those histograms (p50/p95/p99) together with
plan/block-cache hit-rate gauges into one JSON-ready document —
``repro perf report`` renders it — and optionally checks a list of
:class:`LatencyObjective` targets against it, the serving layer's
analogue of the benchmark regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.query import ast as qast
from repro.util.clock import NS_PER_S

#: histogram name prefix for per-class serving latencies (ns values).
LATENCY_PREFIX = "slo.latency_ns."

#: the percentiles the report quotes, in rendering order.
PERCENTILES = (50.0, 95.0, 99.0)

#: every class :func:`classify_query` can produce.
QUERY_CLASSES = ("point", "scan", "join", "path", "construct",
                 "other")

#: nanoseconds per millisecond, for reporting conversions.
_NS_PER_MS = NS_PER_S / 1000.0


def classify_query(expression) -> str:
    """The query class a prepared plan's latency is filed under."""
    if isinstance(expression, qast.FLWOR):
        for_bindings = sum(isinstance(clause, qast.ForClause)
                           for clause in expression.clauses)
        if for_bindings > 1:
            return "join"
        kinds = _predicate_operators(expression.where)
        if kinds and kinds <= {"="}:
            return "point"
        if kinds or expression.where is not None:
            return "scan"
        return "path"
    if isinstance(expression, qast.PathExpr):
        if any(step.predicates for step in expression.steps):
            return "scan"
        return "path"
    if isinstance(expression, qast.ElementConstructor):
        return "construct"
    return "other"


def _predicate_operators(expression) -> set[str]:
    """All comparison operators appearing under a where clause."""
    if expression is None:
        return set()
    out: set[str] = set()
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, qast.Comparison):
            out.add(node.op)
        elif isinstance(node, qast.Logical):
            stack.extend((node.left, node.right))
        elif isinstance(node, qast.FunctionCall):
            # starts-with/contains etc. are wildcard-shaped work.
            out.add(node.name)
    return out


def observe_latency(metrics: MetricsRegistry, query_class: str,
                    wall_ns: int) -> None:
    """File one serving latency under its query class.

    Each latency lands twice: in the lifetime histogram (exact counts
    for objectives and totals) and in the class's **rolling window**
    (:class:`~repro.obs.metrics.WindowedHistogram`), so a long-running
    process reports recent p50/p95/p99 and QPS, not lifetime
    aggregates.
    """
    name = LATENCY_PREFIX + query_class
    metrics.observe(name, wall_ns)
    metrics.observe_window(name, wall_ns)
    metrics.add(f"slo.served.{query_class}")


@dataclass(frozen=True)
class LatencyObjective:
    """One target: percentile of a class must stay under a bound."""

    query_class: str
    percentile: float
    target_ms: float

    @classmethod
    def parse(cls, spec: str) -> "LatencyObjective":
        """Parse and validate ``CLASS:pNN:MILLIS`` (``point:p95:5``).

        A malformed spec constructs an objective that can never be
        meaningfully checked — a ``p0`` or ``p101`` percentile, a
        zero/negative millisecond bound, a class no query is ever
        filed under — so each part is validated here with an error
        naming what is wrong, instead of silently reporting the
        objective as unmet forever.
        """
        parts = spec.split(":")
        if len(parts) != 3 or not parts[1].lower().startswith("p"):
            raise ValueError(
                f"SLO spec {spec!r} is not CLASS:pNN:MILLIS "
                "(e.g. point:p95:5)")
        query_class, percentile_text, target_text = parts
        if query_class not in QUERY_CLASSES:
            raise ValueError(
                f"SLO spec {spec!r}: unknown query class "
                f"{query_class!r} (expected one of "
                f"{', '.join(QUERY_CLASSES)})")
        try:
            percentile = float(percentile_text[1:])
        except ValueError:
            raise ValueError(
                f"SLO spec {spec!r}: {percentile_text!r} is not a "
                "percentile (e.g. p95)") from None
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"SLO spec {spec!r}: percentile "
                f"p{percentile:g} outside (0, 100]")
        try:
            target_ms = float(target_text)
        except ValueError:
            raise ValueError(
                f"SLO spec {spec!r}: {target_text!r} is not a "
                "millisecond bound") from None
        if target_ms <= 0.0:
            raise ValueError(
                f"SLO spec {spec!r}: millisecond bound must be "
                f"positive, got {target_ms:g}")
        return cls(query_class=query_class, percentile=percentile,
                   target_ms=target_ms)


def _cache_gauges(counters: dict[str, int]) -> dict[str, dict]:
    """Plan/block-cache hit-rate gauges from ``cache.*`` counters."""
    gauges: dict[str, dict] = {}
    for cache in ("plan", "block"):
        hits = counters.get(f"cache.{cache}.hit", 0)
        misses = counters.get(f"cache.{cache}.miss", 0)
        total = hits + misses
        gauges[cache] = {
            "hit": hits,
            "miss": misses,
            "hit_rate": (hits / total) if total else None,
        }
    return gauges


def slo_report(metrics: MetricsRegistry,
               objectives: list[LatencyObjective] | None = None
               ) -> dict:
    """The serving-SLO document: latencies, gauges, objective checks.

    Latency quantiles are reported in milliseconds (measurements are
    nanoseconds on the monotonic clock); ``objectives`` entries are
    checked against the matching class percentile — an objective over
    a class with no observations is reported as unmet-by-absence
    (``actual_ms: None, ok: False``) rather than silently passing.
    """
    classes: dict[str, dict] = {}
    for name, hist in metrics.histograms().items():
        if not name.startswith(LATENCY_PREFIX):
            continue
        query_class = name[len(LATENCY_PREFIX):]
        histogram = metrics.histogram(name)
        row = {"count": hist["count"]}
        for p in PERCENTILES:
            row[f"p{p:g}_ms"] = (
                histogram.percentile(p) / _NS_PER_MS
                if hist["count"] else None)
        row["max_ms"] = hist["max"] / _NS_PER_MS
        classes[query_class] = row
    rolling: dict[str, dict] = {}
    total_qps = 0.0
    for name, summary in metrics.windows().items():
        if not name.startswith(LATENCY_PREFIX):
            continue
        query_class = name[len(LATENCY_PREFIX):]
        row = {"count": summary["count"],
               "qps": summary["rate_per_s"],
               "window_s": summary["window_s"]}
        for p in PERCENTILES:
            value = summary[f"p{p:g}"]
            row[f"p{p:g}_ms"] = (value / _NS_PER_MS
                                 if value is not None else None)
        row["max_ms"] = summary["max"] / _NS_PER_MS
        rolling[query_class] = row
        total_qps += summary["rate_per_s"]
    checks = []
    for objective in objectives or []:
        row = classes.get(objective.query_class)
        key = f"p{objective.percentile:g}_ms"
        actual = row.get(key) if row else None
        if actual is None and row and row["count"]:
            histogram = metrics.histogram(
                LATENCY_PREFIX + objective.query_class)
            actual = histogram.percentile(objective.percentile) \
                / _NS_PER_MS
        checks.append({
            "class": objective.query_class,
            "percentile": objective.percentile,
            "target_ms": objective.target_ms,
            "actual_ms": actual,
            "ok": actual is not None
            and actual <= objective.target_ms,
        })
    return {
        "classes": dict(sorted(classes.items())),
        "rolling": dict(sorted(rolling.items())),
        "qps": total_qps,
        "caches": _cache_gauges(metrics.counters()),
        "objectives": checks,
    }


def render_slo_report(report: dict) -> str:
    """The SLO document as aligned monospace text."""
    out = ["-- serving latency by query class --"]
    classes = report["classes"]
    if not classes:
        out.append("no latencies recorded")
    else:
        headers = ["class", "count"] + \
            [f"p{p:g}_ms" for p in PERCENTILES] + ["max_ms"]
        rows = []
        for name, row in classes.items():
            cells = [name, str(row["count"])]
            for p in PERCENTILES:
                value = row[f"p{p:g}_ms"]
                cells.append("n/a" if value is None
                             else f"{value:.3f}")
            cells.append(f"{row['max_ms']:.3f}")
            rows.append(cells)
        widths = [len(h) for h in headers]
        for cells in rows:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        out.append("  ".join(h.ljust(w)
                             for h, w in zip(headers, widths)))
        for cells in rows:
            out.append("  ".join(c.ljust(w)
                                 for c, w in zip(cells, widths)))
    rolling = report.get("rolling", {})
    if rolling:
        window_s = next(iter(rolling.values()))["window_s"]
        out.append("")
        out.append(f"-- rolling window (last {window_s:g} s) — "
                   f"QPS {report.get('qps', 0.0):.2f} --")
        headers = ["class", "count", "qps"] + \
            [f"p{p:g}_ms" for p in PERCENTILES] + ["max_ms"]
        rows = []
        for name, row in rolling.items():
            cells = [name, str(row["count"]), f"{row['qps']:.2f}"]
            for p in PERCENTILES:
                value = row[f"p{p:g}_ms"]
                cells.append("n/a" if value is None
                             else f"{value:.3f}")
            cells.append(f"{row['max_ms']:.3f}")
            rows.append(cells)
        widths = [len(h) for h in headers]
        for cells in rows:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        out.append("  ".join(h.ljust(w)
                             for h, w in zip(headers, widths)))
        for cells in rows:
            out.append("  ".join(c.ljust(w)
                                 for c, w in zip(cells, widths)))
    out.append("")
    out.append("-- cache hit rates --")
    for cache, gauge in report["caches"].items():
        rate = gauge["hit_rate"]
        out.append(f"{cache}: {gauge['hit']} hits / "
                   f"{gauge['miss']} misses "
                   f"({'n/a' if rate is None else f'{rate:.1%}'})")
    if report["objectives"]:
        out.append("")
        out.append("-- latency objectives --")
        for check in report["objectives"]:
            actual = check["actual_ms"]
            verdict = "OK" if check["ok"] else "VIOLATED"
            out.append(
                f"{check['class']} p{check['percentile']:g} "
                f"<= {check['target_ms']:g} ms: "
                f"{'no observations' if actual is None else f'{actual:.3f} ms'}"
                f" [{verdict}]")
    return "\n".join(out)

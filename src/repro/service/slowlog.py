"""Structured slow-query log with exemplar traces.

A slow query on a serving session used to vanish the moment its
latency histogram absorbed it — no record of *which* query, *what
plan*, or *where the time went*.  This module keeps that record:

* every over-threshold execution appends one JSONL record — via the
  same atomic single-line appends as the workload journal
  (:class:`~repro.obs.journal.WorkloadJournal`), so a crash can tear
  at most the line in flight — carrying the query text, a **query
  fingerprint** (hash of the normalized text, the plan-cache key),
  a **plan fingerprint** (hash of the rendered evaluation strategy,
  so differently-spelled queries with one plan group together), the
  SLO query class, the latency, and the plan/block-cache hit deltas
  of the run;
* at most **1-in-N** executions (``exemplar_rate``) run with per-run
  telemetry enabled; when such a sampled run turns out slow, its
  EXPLAIN-ANALYZE-style per-operator span breakdown is attached to
  the record as the *exemplar* — a trace of where a real slow
  execution spent its time, captured automatically, without paying
  span overhead on the other N-1 runs;
* a bounded in-memory ring of the latest records feeds ``repro top``
  and the ``/slowlog`` endpoint without touching the file.

:meth:`Session._run <repro.service.session.Session._run>` drives both
halves: :meth:`maybe_sample` before the run (the 1-in-N telemetry
decision), :meth:`maybe_record` after it (threshold check + append).
"""

from __future__ import annotations

import hashlib
import os
import threading
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.journal import WorkloadJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.service.cache import normalize_query_text
from repro.util.clock import NS_PER_S

#: slow-log filename suffix, appended to the repository file name.
SLOWLOG_SUFFIX = ".slowlog.jsonl"

#: default latency threshold: queries slower than this are logged.
DEFAULT_THRESHOLD_MS = 100.0

#: default sampling: one execution in this many runs with telemetry
#: enabled so slow records can carry a span-breakdown exemplar.
DEFAULT_EXEMPLAR_RATE = 10

#: default size of the in-memory ring of latest records.
DEFAULT_KEEP = 64

#: the cache counters whose per-run deltas each record carries.
CACHE_COUNTERS = ("cache.plan.hit", "cache.plan.miss",
                  "cache.block.hit", "cache.block.miss")


def default_slowlog_path(repository_path: str | Path) -> Path:
    """The slow-query log that rides along a repository file."""
    repository_path = Path(repository_path)
    return repository_path.with_name(repository_path.name
                                     + SLOWLOG_SUFFIX)


def query_fingerprint(text: str | None) -> str | None:
    """A stable 12-hex-digit id of the normalized query text."""
    if text is None:
        return None
    normalized = normalize_query_text(text)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]


def plan_fingerprint(ast) -> str | None:
    """A stable 12-hex-digit id of the rendered evaluation strategy.

    Two spellings of one query share a plan fingerprint even when
    their query fingerprints differ, so the log groups by *plan*.
    """
    from repro.query.explain import explain
    try:
        sketch = explain(ast)
    except Exception:  # noqa: BLE001 - fingerprinting must not fail a run
        return None
    if not sketch:
        return None
    return hashlib.sha256(sketch.encode("utf-8")).hexdigest()[:12]


class SlowQueryLog:
    """Threshold-gated JSONL log of slow serving queries.

    ``path=None`` keeps records only in the in-memory ring (tests,
    ephemeral sessions); with a path, records append to a
    :class:`~repro.obs.journal.WorkloadJournal`-backed JSONL file.
    Thread-safe: ``execute_many`` workers record concurrently.  The
    ring lock is a hierarchy leaf — journal appends and metric bumps
    happen outside it.
    """

    GUARDED_BY = {"_recent": "_lock", "_seq": "_lock"}

    def __init__(self, path: str | Path | None = None, *,
                 threshold_ms: float = DEFAULT_THRESHOLD_MS,
                 exemplar_rate: int = DEFAULT_EXEMPLAR_RATE,
                 keep: int = DEFAULT_KEEP,
                 metrics: MetricsRegistry | None = None):
        if threshold_ms < 0:
            raise ValueError(f"slow-log threshold must be >= 0 ms, "
                             f"got {threshold_ms}")
        if exemplar_rate < 1:
            raise ValueError(f"exemplar rate must be >= 1 (1 = every "
                             f"run), got {exemplar_rate}")
        if keep < 1:
            raise ValueError(f"slow-log ring must keep >= 1 record, "
                             f"got {keep}")
        self.journal = WorkloadJournal(path) if path is not None \
            else None
        self.threshold_ms = threshold_ms
        self.threshold_ns = int(threshold_ms * (NS_PER_S / 1000.0))
        self.exemplar_rate = exemplar_rate
        self.keep = keep
        self.metrics = metrics
        self._recent: list[dict] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._pid = os.getpid()
        if metrics is not None:
            metrics.set_gauge("slowlog.threshold_ms", threshold_ms)
            metrics.set_gauge("slowlog.exemplar_rate", exemplar_rate)

    @property
    def path(self) -> Path | None:
        """The backing JSONL file (``None`` for in-memory only)."""
        return self.journal.path if self.journal is not None else None

    def _check_fork(self) -> None:
        """Fork safety: a forked worker inheriting the shared slow log
        must not block on the parent's (possibly held) ring lock.  The
        backing journal runs its own PID check, reopening the JSONL
        handle in the child so lines never interleave mid-record."""
        if self._pid != os.getpid():
            self._lock = threading.Lock()
            self._pid = os.getpid()

    def maybe_sample(self) -> Telemetry | None:
        """The pre-run 1-in-N decision: an enabled telemetry, or None.

        Every Nth execution (``exemplar_rate``) gets a fresh enabled
        :class:`~repro.obs.telemetry.Telemetry` so that *if* the run
        turns out slow, its span breakdown is available as the
        exemplar.  The other runs pay nothing.
        """
        self._check_fork()
        with self._lock:
            seq = self._seq
            self._seq += 1
        if seq % self.exemplar_rate != 0:
            return None
        if self.metrics is not None:
            self.metrics.add("slowlog.sampled")
        return Telemetry(enabled=True)

    def maybe_record(self, *, query: str | None, ast,
                     query_class: str, wall_ns: int,
                     telemetry: Telemetry | None = None,
                     cache_before: dict | None = None,
                     cache_after: dict | None = None,
                     error: bool = False) -> dict | None:
        """Append a record when ``wall_ns`` crosses the threshold.

        Returns the record dict, or ``None`` when the run was fast
        enough.  ``telemetry`` (when given and enabled) contributes
        the exemplar span breakdown; ``cache_before``/``cache_after``
        are :data:`CACHE_COUNTERS` snapshots around the run, whose
        deltas are best-effort under concurrency (other workers'
        hits land in the same shared counters).
        """
        if wall_ns < self.threshold_ns:
            return None
        record = {
            "ts": datetime.now(timezone.utc).isoformat(),
            "query": query,
            "query_fingerprint": query_fingerprint(query),
            "plan_fingerprint": plan_fingerprint(ast),
            "class": query_class,
            "wall_ns": wall_ns,
            "wall_ms": wall_ns / (NS_PER_S / 1000.0),
            "threshold_ms": self.threshold_ms,
            "error": error,
            "cache_deltas": _cache_deltas(cache_before, cache_after),
            "exemplar": _exemplar(telemetry),
        }
        if self.journal is not None:
            self.journal.append(record)
        self._check_fork()
        with self._lock:
            self._recent.append(record)
            if len(self._recent) > self.keep:
                del self._recent[:len(self._recent) - self.keep]
        if self.metrics is not None:
            self.metrics.add("slowlog.records")
            if record["exemplar"] is not None:
                self.metrics.add("slowlog.exemplars")
        return record

    def recent(self, n: int | None = None) -> list[dict]:
        """The latest records, newest last (up to ``n``)."""
        self._check_fork()
        with self._lock:
            records = list(self._recent)
        return records[-n:] if n is not None else records

    def close(self) -> None:
        """Close the backing journal handle, if any."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        target = self.path if self.path is not None else "<memory>"
        return (f"<SlowQueryLog > {self.threshold_ms:g} ms "
                f"-> {target}>")


def snapshot_cache_counters(metrics: MetricsRegistry) -> dict:
    """Current :data:`CACHE_COUNTERS` values (for delta computation)."""
    return {name: metrics.counter(name).value
            for name in CACHE_COUNTERS}


def _cache_deltas(before: dict | None,
                  after: dict | None) -> dict | None:
    if before is None or after is None:
        return None
    return {name.removeprefix("cache."):
            after.get(name, 0) - before.get(name, 0)
            for name in CACHE_COUNTERS}


def _exemplar(telemetry: Telemetry | None) -> dict | None:
    """The EXPLAIN-ANALYZE-style span breakdown of a sampled run."""
    if telemetry is None or not telemetry.enabled:
        return None
    operators = telemetry.operator_profile()
    if not operators:
        return None
    return {
        "operators": {
            name: {"count": summary["count"],
                   "total_ns": int(summary["total"]),
                   "p95_ns": int(summary["p95"]),
                   "max_ns": int(summary["max"])}
            for name, summary in operators.items()
        },
    }

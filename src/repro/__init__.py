"""XQueC reproduction: efficient query evaluation over compressed XML.

Reimplements Arion, Bonifati, Costa, D'Aguanno, Manolescu & Pugliese,
*Efficient Query Evaluation over Compressed XML Data* (EDBT 2004) — the
XQueC system — together with every substrate it depends on and the
comparator systems of its evaluation.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Quickstart::

    from repro import XQueCSystem
    system = XQueCSystem.load(xml_text)
    print(system.compression_factor)
    print(system.query("/site/people/person/name/text()").items)
"""

from repro.core.system import XQueCSystem
from repro.query.engine import QueryEngine, QueryResult
from repro.storage.loader import load_document
from repro.storage.repository import CompressedRepository

__version__ = "1.0.0"

__all__ = [
    "CompressedRepository",
    "QueryEngine",
    "QueryResult",
    "XQueCSystem",
    "load_document",
    "__version__",
]

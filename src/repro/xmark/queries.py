"""The XMark query subset measured in the paper (Figure 7 + §5 text).

Queries are expressed in the supported dialect (DESIGN.md §6); where
the official XMark text uses features outside the subset (``last()``,
user functions), the query is adapted while preserving its *evaluation
challenge* — the paper itself selects queries this way ("XMark queries
left out stress language features, on which compression will likely
have no significant impact").

Q8 and Q9 are the reference-chasing joins the paper reports separately
(2.1 s vs Galax's 126 s / unmeasurable).
"""

from __future__ import annotations

XMARK_QUERIES: dict[str, tuple[str, str]] = {
    "Q1": (
        "Exact-match lookup: name of person0",
        'for $b in document("auction.xml")/site/people/person'
        '[@id = "person0"] return $b/name/text()',
    ),
    "Q2": (
        "First bid increase of each open auction",
        'for $b in document("auction.xml")/site/open_auctions/'
        "open_auction return <increase>{$b/bidder[1]/increase/text()}"
        "</increase>",
    ),
    "Q3": (
        "Auctions whose price at least doubled (inequality + arithmetic)",
        'for $b in document("auction.xml")/site/open_auctions/'
        "open_auction where $b/current/text() >= 2 * $b/initial/text() "
        'return <increase first="{$b/initial/text()}" '
        'last="{$b/current/text()}"/>',
    ),
    "Q4": (
        "Auctions a given person has bid in (reference lookup)",
        'for $b in document("auction.xml")/site/open_auctions/'
        "open_auction "
        'where $b/bidder/personref/@person = "person18" '
        "return <history>{$b/initial/text()}</history>",
    ),
    "Q5": (
        "Count closed auctions above a price (aggregate + inequality)",
        'count(for $i in document("auction.xml")/site/closed_auctions/'
        "closed_auction where $i/price/text() >= 40 "
        "return $i/price)",
    ),
    "Q6": (
        "Items per region (descendant axis + aggregate)",
        'for $b in document("auction.xml")/site/regions/* '
        "return count($b//item)",
    ),
    "Q7": (
        "Count all prose pieces (multiple descendant counts)",
        'count(document("auction.xml")/site//description) + '
        'count(document("auction.xml")/site//annotation) + '
        'count(document("auction.xml")/site//emailaddress)',
    ),
    "Q8": (
        "Purchases per buyer (value join, nested FLWOR)",
        'for $p in document("auction.xml")/site/people/person '
        'let $a := for $t in document("auction.xml")/site/'
        "closed_auctions/closed_auction "
        "where $t/buyer/@person = $p/@id return $t "
        'return <item person="{$p/name/text()}">{count($a)}</item>',
    ),
    "Q9": (
        "Three-way join: buyers, auctions, European items",
        'for $p in document("auction.xml")/site/people/person '
        'let $a := for $t in document("auction.xml")/site/'
        "closed_auctions/closed_auction, "
        '$t2 in document("auction.xml")/site/regions/europe/item '
        "where $t/buyer/@person = $p/@id "
        "and $t/itemref/@item = $t2/@id "
        "return <item>{$t2/name/text()}</item> "
        'return <person name="{$p/name/text()}">{$a}</person>',
    ),
    "Q10": (
        "Group people by interest category (correlated join + count)",
        'for $c in document("auction.xml")/site/categories/category '
        'return <group category="{$c/@id}">{count('
        'for $p in document("auction.xml")/site/people/person '
        "where $p/profile/interest/@category = $c/@id "
        "return $p)}</group>",
    ),
    "Q11": (
        "Theta join: people whose income beats 50x an initial price",
        'count(for $p in document("auction.xml")/site/people/person, '
        '$i in document("auction.xml")/site/open_auctions/open_auction '
        "where $p/profile/@income > 50 * $i/initial/text() "
        "return $p)",
    ),
    "Q13": (
        "Reconstruction: Australian items with their descriptions",
        'for $i in document("auction.xml")/site/regions/australia/item '
        'return <item name="{$i/name/text()}">{$i/description}</item>',
    ),
    "Q14": (
        "Full-text scan: items whose description mentions 'gold'",
        'for $i in document("auction.xml")/site//item '
        'where contains($i/description//text(), "gold") '
        "return $i/name/text()",
    ),
    "Q15": (
        "Long path chain into closed-auction annotations",
        'for $a in document("auction.xml")/site/closed_auctions/'
        "closed_auction/annotation/description/text "
        "return <text>{$a/text()}</text>",
    ),
    "Q16": (
        "Reference attributes of deeply nested elements",
        'for $a in document("auction.xml")/site/closed_auctions/'
        'closed_auction return <ref seller="{$a/seller/@person}"/>',
    ),
    "Q17": (
        "Missing optional data: people without a phone",
        'for $p in document("auction.xml")/site/people/person '
        "where empty($p/phone) "
        'return <person name="{$p/name/text()}"/>',
    ),
    "Q18": (
        "Numeric transformation of every current price",
        'for $i in document("auction.xml")/site/open_auctions/'
        "open_auction return $i/current/text() * 0.1",
    ),
    "Q19": (
        "Global order: items sorted by location (order by)",
        'for $b in document("auction.xml")/site/regions/australia/'
        "item let $k := $b/location/text() order by $k "
        'return <item name="{$b/name/text()}">{$k}</item>',
    ),
    "Q20": (
        "Aggregation by income brackets (constructed report)",
        "<result>"
        '<preferred>{count(for $p in document("auction.xml")/site/'
        "people/person where $p/profile/@income >= 100000 "
        "return $p)}</preferred>"
        '<standard>{count(for $p in document("auction.xml")/site/'
        "people/person where $p/profile/@income < 100000 "
        "and $p/profile/@income >= 30000 return $p)}</standard>"
        '<challenge>{count(for $p in document("auction.xml")/site/'
        "people/person where $p/profile/@income < 30000 "
        "return $p)}</challenge>"
        '<na>{count(for $p in document("auction.xml")/site/people/'
        "person where empty($p/profile/@income) return $p)}</na>"
        "</result>",
    ),
}

#: the queries Figure 7 plots (Q8/Q9 are reported separately in §5).
FIGURE7_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q10",
                   "Q11", "Q13", "Q14", "Q15", "Q16", "Q17", "Q18",
                   "Q19", "Q20")
JOIN_QUERIES = ("Q8", "Q9")


def query_text(query_id: str) -> str:
    """The query string for an XMark query id."""
    return XMARK_QUERIES[query_id][1]


def query_description(query_id: str) -> str:
    """Human-readable description of an XMark query id."""
    return XMARK_QUERIES[query_id][0]

"""XMark workload substrate [Schmidt et al., VLDB 2002].

A deterministic reimplementation of the ``xmlgen`` auction-site
document generator (:mod:`repro.xmark.generator`), the query subset the
paper's Figure 7 measures (:mod:`repro.xmark.queries`), and synthetic
stand-ins for the real-life corpus of Table 1
(:mod:`repro.xmark.datasets`).
"""

from repro.xmark.datasets import (
    generate_baseball,
    generate_shakespeare,
    generate_washington_course,
)
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text

__all__ = [
    "XMARK_QUERIES",
    "generate_baseball",
    "generate_shakespeare",
    "generate_washington_course",
    "generate_xmark",
    "query_text",
]

"""Synthetic stand-ins for the real-life corpus of Table 1.

The paper measures compression factors on three public documents we
cannot ship: ``Shakespeare.xml`` (7.3 MB — the 37 marked-up plays),
``Washington-Course.xml`` (1.9 MB of university course records) and
``Baseball.xml`` (1.1 MB of 1998 player statistics).  Each generator
below reproduces the *statistical shape* that drives compression
behaviour — prose-heavy vs record-like vs numeric-heavy values, tag
repertoire, value share of total size — which is what makes the
Figure 6 (left) comparison meaningful (see DESIGN.md §3 for the
substitution argument).

``factor=1.0`` approximates the original sizes; tests and benches use
smaller factors.
"""

from __future__ import annotations

from repro.xmark.text_source import TextSource


def generate_shakespeare(factor: float = 1.0, seed: int = 7) -> str:
    """Plays: acts/scenes/speeches — long natural-language lines."""
    source = TextSource(seed)
    plays = max(1, int(round(37 * factor)))
    parts = ["<plays>"]
    for _ in range(plays):
        parts.append("<play>")
        parts.append(f"<title>{source.sentence(3, 6).title()}</title>")
        for act_no in range(1, 6):
            parts.append(f"<act><acttitle>ACT {act_no}</acttitle>")
            for scene_no in range(1, 7):
                parts.append("<scene>"
                             f"<scenetitle>SCENE {scene_no}</scenetitle>")
                parts.append(f"<stagedir>{source.sentence(4, 10)}"
                             "</stagedir>")
                for _ in range(source.randint(12, 28)):
                    speaker = source.person_name().split()[0].upper()
                    parts.append("<speech>")
                    parts.append(f"<speaker>{speaker}</speaker>")
                    for _ in range(source.randint(2, 8)):
                        parts.append(f"<line>{source.sentence(6, 14)}"
                                     "</line>")
                    parts.append("</speech>")
                parts.append("</scene>")
            parts.append("</act>")
        parts.append("</play>")
    parts.append("</plays>")
    return "\n".join(parts)


_DEPARTMENTS = ("CSE", "MATH", "PHYS", "CHEM", "BIOL", "HIST", "ECON",
                "PSYCH", "LING", "STAT")
_DAYS = ("MWF", "TTh", "MW", "F", "Daily")


def generate_washington_course(factor: float = 1.0, seed: int = 11
                               ) -> str:
    """University course catalogue: short record-like fields."""
    source = TextSource(seed)
    courses = max(5, int(round(5500 * factor)))
    parts = ["<root>"]
    for i in range(courses):
        dept = source.choice(_DEPARTMENTS)
        number = 100 + (i % 500)
        parts.append("<course>")
        parts.append(f"<code>{dept} {number}</code>")
        parts.append(f"<title>{source.sentence(2, 6).title()}</title>")
        parts.append(f"<credits>{source.randint(1, 5)}</credits>")
        parts.append(f"<instructor>{source.person_name()}</instructor>")
        parts.append("<sln>" + str(10000 + i) + "</sln>")
        parts.append(f"<days>{source.choice(_DAYS)}</days>")
        parts.append(f"<room>{source.choice(_DEPARTMENTS)}"
                     f"{source.randint(100, 499)}</room>")
        parts.append(f"<limit>{source.randint(10, 300)}</limit>")
        parts.append(f"<description>{source.sentence(12, 35)}"
                     "</description>")
        parts.append("</course>")
    parts.append("</root>")
    return "\n".join(parts)


_TEAMS = ("Falcons", "Hawks", "Lions", "Bears", "Sharks", "Wolves",
          "Eagles", "Tigers", "Bulls", "Rams")
_POSITIONS = ("Pitcher", "Catcher", "First Base", "Second Base",
              "Third Base", "Shortstop", "Outfield")
#: per-player numeric stat fields (the real file has dozens).
_STATS = ("games", "at_bats", "runs", "hits", "doubles", "triples",
          "home_runs", "rbi", "walks", "strikeouts", "stolen_bases",
          "caught_stealing", "errors", "put_outs", "assists")


def generate_baseball(factor: float = 1.0, seed: int = 13) -> str:
    """Player statistics: numeric-heavy records with many stat fields."""
    source = TextSource(seed)
    players = max(5, int(round(2300 * factor)))
    parts = ["<season><year>1998</year>"]
    per_team = max(1, players // len(_TEAMS))
    for league, teams in (("National", _TEAMS[:5]), ("American",
                                                     _TEAMS[5:])):
        parts.append(f"<league><name>{league}</name>")
        for team in teams:
            parts.append(f"<team><name>{team}</name>"
                         f"<city>{source.city()}</city>")
            for _ in range(per_team):
                name = source.person_name().split()
                parts.append("<player>")
                parts.append(f"<given_name>{name[0]}</given_name>")
                parts.append(f"<surname>{name[1]}</surname>")
                parts.append(f"<position>{source.choice(_POSITIONS)}"
                             "</position>")
                for stat in _STATS:
                    parts.append(f"<{stat}>{source.randint(0, 650)}"
                                 f"</{stat}>")
                parts.append("<average>"
                             f"{round(source.uniform(0.150, 0.350), 3)}"
                             "</average>")
                parts.append("</player>")
            parts.append("</team>")
        parts.append("</league>")
    parts.append("</season>")
    return "\n".join(parts)


#: Table 1 registry: name -> (generator, full-size factor, paper MB).
TABLE1_DATASETS = {
    "Shakespeare": (generate_shakespeare, 1.0, 7.3),
    "WashingtonCourse": (generate_washington_course, 1.0, 1.9),
    "Baseball": (generate_baseball, 1.0, 1.1),
}

"""An ``xmlgen`` work-alike: deterministic XMark auction documents.

Follows the simplified XMark structure of the paper's Figure 1: a
``site`` with regions/items, categories, people, open auctions (with
bidders) and closed auctions; IDREF attributes (``person``, ``item``,
``category``) wire the references the join queries (Q8/Q9) traverse.

``factor`` scales all entity counts linearly; ``factor=1.0`` produces
a document of roughly 11 MB — the paper's XMark11 — and the 1 MB-25 MB
sweep of Figure 6 (right) maps to factors ~0.09-2.3.
"""

from __future__ import annotations

from repro.xmark.text_source import TextSource

REGIONS = ("africa", "asia", "australia", "europe", "namerica",
           "samerica")

#: entity counts at factor 1.0, calibrated so the generated text is
#: roughly 11 MB — the paper's XMark11 document.
BASE_COUNTS = {
    "people": 6000,
    "items": 5100,   # spread over the six regions
    "categories": 240,
    "open_auctions": 2800,
    "closed_auctions": 2300,
}


def generate_xmark(factor: float = 0.1, seed: int = 42) -> str:
    """Generate one auction document; returns the XML text."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    source = TextSource(seed)
    counts = {name: max(2, int(round(base * factor)))
              for name, base in BASE_COUNTS.items()}
    parts: list[str] = ["<site>"]
    _regions(parts, source, counts["items"], counts["categories"])
    _categories(parts, source, counts["categories"])
    _people(parts, source, counts["people"], counts["categories"])
    _open_auctions(parts, source, counts["open_auctions"],
                   counts["people"], counts["items"])
    _closed_auctions(parts, source, counts["closed_auctions"],
                     counts["people"], counts["items"])
    parts.append("</site>")
    return "\n".join(parts)


def _regions(parts: list[str], source: TextSource, item_count: int,
             category_count: int) -> None:
    parts.append("<regions>")
    item_id = 0
    per_region = [item_count // len(REGIONS)] * len(REGIONS)
    for i in range(item_count % len(REGIONS)):
        per_region[i] += 1
    for region, count in zip(REGIONS, per_region):
        parts.append(f"<{region}>")
        for _ in range(count):
            _item(parts, source, item_id, category_count)
            item_id += 1
        parts.append(f"</{region}>")
    parts.append("</regions>")


def _item(parts: list[str], source: TextSource, item_id: int,
          category_count: int) -> None:
    category = source.randint(0, max(category_count - 1, 0))
    parts.append(f'<item id="item{item_id}">')
    parts.append(f"<location>{source.country()}</location>")
    parts.append(f"<quantity>{source.randint(1, 10)}</quantity>")
    parts.append(f"<name>{source.sentence(2, 4)}</name>")
    parts.append(f"<payment>{source.choice(('Cash', 'Check', 'Credit'))}"
                 "</payment>")
    parts.append("<description><text>"
                 f"{source.paragraph(120, 360)}</text></description>")
    parts.append(f"<shipping>{source.sentence(3, 8)}</shipping>")
    parts.append(f'<incategory category="category{category}"/>')
    parts.append("</item>")


def _categories(parts: list[str], source: TextSource,
                count: int) -> None:
    parts.append("<categories>")
    for i in range(count):
        parts.append(f'<category id="category{i}">')
        parts.append(f"<name>{source.sentence(1, 3)}</name>")
        parts.append("<description><text>"
                     f"{source.paragraph(80, 200)}</text></description>")
        parts.append("</category>")
    parts.append("</categories>")


def _people(parts: list[str], source: TextSource, count: int,
            category_count: int) -> None:
    parts.append("<people>")
    for i in range(count):
        name = source.person_name()
        parts.append(f'<person id="person{i}">')
        parts.append(f"<name>{name}</name>")
        parts.append(f"<emailaddress>{source.email(name)}"
                     "</emailaddress>")
        if source.random() < 0.6:
            parts.append(f"<phone>{source.phone()}</phone>")
        if source.random() < 0.7:
            parts.append("<address>"
                         f"<street>{source.street()}</street>"
                         f"<city>{source.city()}</city>"
                         f"<country>{source.country()}</country>"
                         f"<zipcode>{source.zipcode()}</zipcode>"
                         "</address>")
        if source.random() < 0.8:
            income = round(source.uniform(9000, 250000), 2)
            category = source.randint(0, max(category_count - 1, 0))
            parts.append(f'<profile income="{income}">')
            parts.append(f'<interest category="category{category}"/>')
            parts.append(f"<education>{source.education()}</education>")
            parts.append(f"<age>{source.randint(18, 90)}</age>")
            parts.append("</profile>")
        parts.append("</person>")
    parts.append("</people>")


def _open_auctions(parts: list[str], source: TextSource, count: int,
                   people: int, items: int) -> None:
    parts.append("<open_auctions>")
    for i in range(count):
        initial = round(source.uniform(1.0, 100.0), 2)
        parts.append(f'<open_auction id="open_auction{i}">')
        parts.append(f"<initial>{initial}</initial>")
        current = initial
        for _ in range(source.randint(0, 5)):
            increase = round(source.uniform(1.0, 30.0), 2)
            current = round(current + increase, 2)
            bidder = source.randint(0, people - 1)
            parts.append("<bidder>"
                         f"<date>{source.date()}</date>"
                         f'<personref person="person{bidder}"/>'
                         f"<increase>{increase}</increase>"
                         "</bidder>")
        parts.append(f"<current>{current}</current>")
        parts.append(f'<itemref item="item{source.randint(0, items - 1)}"/>')
        parts.append(f'<seller person="person{source.randint(0, people - 1)}"/>')
        parts.append(f"<quantity>{source.randint(1, 5)}</quantity>")
        parts.append(f"<type>{source.choice(('Regular', 'Featured'))}"
                     "</type>")
        parts.append("<interval>"
                     f"<start>{source.date()}</start>"
                     f"<end>{source.date()}</end>"
                     "</interval>")
        parts.append("</open_auction>")
    parts.append("</open_auctions>")


def _closed_auctions(parts: list[str], source: TextSource, count: int,
                     people: int, items: int) -> None:
    parts.append("<closed_auctions>")
    for _ in range(count):
        seller = source.randint(0, people - 1)
        buyer = source.randint(0, people - 1)
        item = source.randint(0, items - 1)
        parts.append("<closed_auction>")
        parts.append(f'<seller person="person{seller}"/>')
        parts.append(f'<buyer person="person{buyer}"/>')
        parts.append(f'<itemref item="item{item}"/>')
        parts.append(f"<price>{round(source.uniform(5.0, 300.0), 2)}"
                     "</price>")
        parts.append(f"<date>{source.date()}</date>")
        parts.append(f"<quantity>{source.randint(1, 5)}</quantity>")
        parts.append(f"<type>{source.choice(('Regular', 'Featured'))}"
                     "</type>")
        parts.append("<annotation><description><text>"
                     f"{source.paragraph(60, 240)}</text></description>"
                     "</annotation>")
        parts.append("</closed_auction>")
    parts.append("</closed_auctions>")

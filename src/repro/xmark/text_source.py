"""Deterministic text sources for the synthetic documents.

``xmlgen`` fills item descriptions with Shakespeare-derived prose; we
embed a compact vocabulary with a Zipf-ish rank distribution so the
generated text has natural-language statistics (the property the
compression experiments depend on), while staying deterministic.
"""

from __future__ import annotations

import random

#: words ordered by (approximate) descending natural frequency.
VOCABULARY = (
    "the and to of a in that is was he for it with as his on be at by i "
    "this had not are but from or have an they which one you were her "
    "all she there would their we him been has when who will more no if "
    "out so said what up its about into than them can only other new "
    "some could time these two may then do first any my now such like "
    "our over man me even most made after also did many before must "
    "through back years where much your way well down should because "
    "each just those people mr how too little state good very make "
    "world still own see men work long get here between both life being "
    "under never day same another know while last might us great old "
    "year off come since against go came right used take three states "
    "himself few house use during without again place american around "
    "however home small found mrs thought went say part once general "
    "high upon school every don't does got united left number course "
    "war until always away something fact though water less public put "
    "thing almost hand enough far took head yet government system "
    "better set told nothing night end why called didn't eyes find "
    "going look asked later knew point next city business give group "
    "toward young days let room within done love sword crown king queen "
    "noble tide affairs fortune stage players exits entrances gold "
    "silver serpent tooth winter discontent glorious summer "
).split()

FIRST_NAMES = (
    "James John Robert Michael William David Richard Joseph Thomas "
    "Charles Mary Patricia Jennifer Linda Elizabeth Barbara Susan "
    "Jessica Sarah Karen Umberto Takeshi Ravi Ingrid Pierre Chen "
    "Fatima Olga Sven Paulo"
).split()

LAST_NAMES = (
    "Smith Johnson Williams Brown Jones Garcia Miller Davis Rodriguez "
    "Martinez Hernandez Lopez Gonzalez Wilson Anderson Thomas Taylor "
    "Moore Jackson Martin Nakamura Rossi Mueller Dubois Kowalski "
    "Petrov Yamada Okafor Singh Larsen"
).split()

CITIES = (
    "Paris Lyon Rome Milan Berlin Hamburg Madrid Porto Vienna Prague "
    "Tokyo Osaka Sydney Perth Toronto Boston Chicago Denver Austin "
    "Seattle"
).split()

COUNTRIES = (
    "France Italy Germany Spain Portugal Austria Czechia Japan "
    "Australia Canada"
).split()

EDUCATION_LEVELS = ("High School", "College", "Graduate School",
                    "Other")


class TextSource:
    """Seeded generator of names, prose, dates and addresses."""

    def __init__(self, seed: int = 42):
        self._rng = random.Random(seed)
        # Zipf-like weights over the rank-ordered vocabulary.
        self._weights = [1.0 / (rank + 1)
                         for rank in range(len(VOCABULARY))]

    def words(self, count: int) -> str:
        """A pseudo-sentence of ``count`` vocabulary words."""
        picked = self._rng.choices(VOCABULARY, weights=self._weights,
                                   k=count)
        return " ".join(picked)

    def sentence(self, min_words: int = 8, max_words: int = 25) -> str:
        return self.words(self._rng.randint(min_words, max_words))

    def paragraph(self, min_words: int = 20, max_words: int = 80) -> str:
        return self.words(self._rng.randint(min_words, max_words))

    def person_name(self) -> str:
        return (f"{self._rng.choice(FIRST_NAMES)} "
                f"{self._rng.choice(LAST_NAMES)}")

    def email(self, name: str) -> str:
        user = name.lower().replace(" ", ".")
        host = self._rng.choice(["mail", "inbox", "post", "box"])
        return f"{user}@{host}.example.com"

    def phone(self) -> str:
        return (f"+{self._rng.randint(1, 99)} "
                f"({self._rng.randint(100, 999)}) "
                f"{self._rng.randint(1000000, 9999999)}")

    def street(self) -> str:
        return (f"{self._rng.randint(1, 99)} "
                f"{self._rng.choice(LAST_NAMES)} St")

    def city(self) -> str:
        return self._rng.choice(CITIES)

    def country(self) -> str:
        return self._rng.choice(COUNTRIES)

    def zipcode(self) -> str:
        return str(self._rng.randint(10000, 99999))

    def date(self) -> str:
        return (f"{self._rng.randint(1, 12):02d}/"
                f"{self._rng.randint(1, 28):02d}/"
                f"{self._rng.randint(1998, 2003)}")

    def education(self) -> str:
        return self._rng.choice(EDUCATION_LEVELS)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def choice(self, options):
        return self._rng.choice(options)

    def random(self) -> float:
        return self._rng.random()

"""Plain-text rendering of a :class:`~repro.advisor.drift.DriftReport`.

Shared by ``repro workload report`` and the EXPLAIN ANALYZE "Workload
drift" section, so both always agree on what the observatory says.
"""

from __future__ import annotations

from repro.advisor.drift import DriftReport
from repro.obs.workload import ACCESS_OPS
from repro.partitioning.workload import PREDICATE_KINDS


def render_report(report: DriftReport,
                  top_k: int | None = None) -> str:
    """Human-readable observatory report, one string."""
    lines: list[str] = []
    lines.append("Workload observatory")
    lines.append("=" * len(lines[-1]))
    lines.append(f"journal records      {report.record_count}")
    total_predicates = sum(report.predicate_totals.values())
    kinds = "  ".join(
        f"{kind}={report.predicate_totals.get(kind, 0)}"
        for kind in PREDICATE_KINDS)
    lines.append(f"observed predicates  {total_predicates}  ({kinds})")
    lines.append(
        f"containers touched   {len(report.container_activity)}")
    if not report.record_count:
        lines.append("")
        lines.append("journal is empty; run queries with recording "
                     "enabled first")
        return "\n".join(lines)

    lines.append("")
    lines.append("Hottest containers")
    lines.append("-" * len(lines[-1]))
    for path, ops in report.hottest_containers(top_k):
        accesses = sum(ops.get(op, 0) for op in ACCESS_OPS)
        detail = " ".join(f"{op}={count}"
                          for op, count in sorted(ops.items())
                          if count)
        lines.append(f"  {path}  accesses={accesses}  [{detail}]")

    if report.live_breakdown:
        lines.append("")
        lines.append("Cost model: live vs recommended")
        lines.append("-" * len(lines[-1]))
        header = f"  {'':<12}{'storage':>12}{'models':>12}" \
                 f"{'decompression':>15}{'total':>14}"
        lines.append(header)
        for label, breakdown in (
                ("live", report.live_breakdown),
                ("recommended", report.recommended_breakdown)):
            lines.append(
                f"  {label:<12}{breakdown['storage']:>12.1f}"
                f"{breakdown['models']:>12.1f}"
                f"{breakdown['decompression']:>15.1f}"
                f"{breakdown['total']:>14.1f}")
        lines.append(f"  {'drift':<12}{'':>12}{'':>12}{'':>15}"
                     f"{report.drift_total:>14.1f}")

    lines.append("")
    lines.append("Recommendations")
    lines.append("-" * len(lines[-1]))
    recommendations = report.recommendations
    if top_k is not None:
        recommendations = recommendations[:top_k]
    if not recommendations:
        lines.append("  live configuration matches the observed "
                     "workload; nothing to recompress")
    for rank, rec in enumerate(recommendations, start=1):
        lines.append(
            f"  {rank}. recompress {rec.path}: "
            f"{rec.current} -> {rec.recommended}  "
            f"(est. saving {rec.saving_total:.1f}; "
            f"storage {rec.saving_storage:+.1f}, "
            f"decompression {rec.saving_decompression:+.1f})")
        if rec.enables:
            lines.append(
                "     enables compressed-domain "
                + ", ".join(rec.enables))
    return "\n".join(lines)

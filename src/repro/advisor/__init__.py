"""Workload-driven compression advisor.

Closes the loop the paper leaves open: §3's cost model chooses a
compression configuration *before* loading from an *anticipated*
workload; the advisor re-evaluates that choice *after* the fact from
the workload the :mod:`repro.obs.workload` recorder actually observed,
and recommends container recompressions when the two have drifted
apart.
"""

from repro.advisor.drift import (
    DriftReport,
    Recommendation,
    analyze_drift,
    live_configuration,
    merged_activity,
    observed_workload,
)
from repro.advisor.report import render_report

__all__ = [
    "DriftReport",
    "Recommendation",
    "analyze_drift",
    "live_configuration",
    "merged_activity",
    "observed_workload",
    "render_report",
]

"""Cost-model drift analysis over the observed workload journal.

The second half of the tuning loop: fold journalled
:class:`~repro.obs.workload.WorkloadRecord` observations back into a
§3.2 :class:`~repro.partitioning.workload.Workload`, rebuild the cost
model over the *live* repository's container statistics, and compare
the configuration the repository actually runs (derived from the
codecs its containers were sealed with) against what the §3.3 greedy
search would choose for the workload we actually observed.

The output is a :class:`DriftReport`: per-container cost deltas plus
concrete "recompress container X from huffman to alm" recommendations
with estimated storage/decompression savings.  Only string containers
participate — numeric containers keep their typed codecs (§2.1), which
already evaluate ``eq``/``ineq`` in the compressed domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.compression.registry import codec_class
from repro.obs.workload import ACCESS_OPS, WorkloadRecord
from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import DEFAULT_ALGORITHMS, greedy_search
from repro.partitioning.workload import (
    PREDICATE_KINDS,
    Predicate,
    Workload,
)


@dataclass
class Recommendation:
    """One actionable recompression: switch a container's algorithm."""

    path: str
    current: str
    recommended: str
    #: estimated total cost saving of applying just this switch to the
    #: live configuration (singleton extraction — a lower bound, since
    #: the full recommended configuration may also share models).
    saving_total: float
    saving_storage: float
    saving_decompression: float
    #: why the switch pays: predicate kinds newly evaluable in the
    #: compressed domain, e.g. ``["eq"]``.
    enables: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "current": self.current,
            "recommended": self.recommended,
            "saving_total": self.saving_total,
            "saving_storage": self.saving_storage,
            "saving_decompression": self.saving_decompression,
            "enables": list(self.enables),
        }


@dataclass
class DriftReport:
    """Everything the observatory derives from one journal window."""

    record_count: int
    #: observed E/I/D predicate totals, by kind.
    predicate_totals: dict[str, int]
    #: merged per-container activity (scans/interval_searches/
    #: record_reads and dynamic predicate-kind hits), every container.
    container_activity: dict[str, dict[str, int]]
    #: string-container paths the cost model analyzed.
    analyzed_paths: list[str]
    #: live-vs-recommended component costs (storage/models/
    #: decompression/total), empty when nothing was analyzable.
    live_breakdown: dict[str, float]
    recommended_breakdown: dict[str, float]
    #: per-container live/recommended algorithms and singleton-switch
    #: cost deltas.
    container_deltas: list[dict]
    recommendations: list[Recommendation]

    @property
    def drift_total(self) -> float:
        """How much the live configuration overpays, per cost model."""
        if not self.live_breakdown:
            return 0.0
        return (self.live_breakdown["total"]
                - self.recommended_breakdown["total"])

    def hottest_containers(self, top_k: int | None = None
                           ) -> list[tuple[str, dict[str, int]]]:
        """Containers ranked by total observed accesses."""
        ranked = sorted(
            self.container_activity.items(),
            key=lambda item: (-sum(item[1].get(op, 0)
                                   for op in ACCESS_OPS), item[0]))
        return ranked if top_k is None else ranked[:top_k]

    def to_dict(self) -> dict:
        """JSON-ready report document."""
        return {
            "record_count": self.record_count,
            "predicate_totals": dict(
                sorted(self.predicate_totals.items())),
            "container_activity": {
                path: dict(sorted(ops.items()))
                for path, ops in
                sorted(self.container_activity.items())},
            "analyzed_paths": list(self.analyzed_paths),
            "live_breakdown": dict(sorted(
                self.live_breakdown.items())),
            "recommended_breakdown": dict(sorted(
                self.recommended_breakdown.items())),
            "drift_total": self.drift_total,
            "container_deltas": self.container_deltas,
            "recommendations": [r.to_dict()
                                for r in self.recommendations],
        }


def observed_workload(records: Sequence[WorkloadRecord]) -> Workload:
    """Fold journal records into a §3.2 workload (E/I/D input).

    Primary source is each record's statically extracted predicates
    (they carry join structure).  A record without any — a query shape
    the static extractor cannot resolve — falls back to the predicate
    kinds the access paths reported dynamically per container, as
    constant comparisons.
    """
    workload = Workload()
    for record in records:
        added = False
        for predicate in record.predicates:
            kind = predicate.get("kind")
            left = predicate.get("left")
            if kind not in PREDICATE_KINDS or not left:
                continue
            workload.add(Predicate(kind, left,
                                   predicate.get("right") or None))
            added = True
        if added:
            continue
        for path, ops in record.containers.items():
            for kind in PREDICATE_KINDS:
                for _ in range(ops.get(kind, 0)):
                    workload.add(Predicate(kind, path))
    return workload


def merged_activity(records: Sequence[WorkloadRecord]
                    ) -> dict[str, dict[str, int]]:
    """Sum per-container access/predicate counts across records."""
    merged: dict[str, dict[str, int]] = {}
    for record in records:
        for path, ops in record.containers.items():
            into = merged.setdefault(path, {})
            for op, count in ops.items():
                into[op] = into.get(op, 0) + count
    return merged


def live_configuration(repository) -> CompressionConfiguration:
    """The configuration the repository actually runs.

    Containers sealed with the *same codec object* share one source
    model, i.e. form one §3.1 group; the group's algorithm is the
    codec's registry name.
    """
    by_model: dict[int, list[str]] = {}
    algorithm_of: dict[int, str] = {}
    for container in repository.containers():
        codec_id = id(container.codec)
        by_model.setdefault(codec_id, []).append(container.path)
        algorithm_of[codec_id] = container.codec.name
    groups = [ContainerGroup(tuple(paths), algorithm_of[codec_id])
              for codec_id, paths in sorted(
                  by_model.items(),
                  key=lambda item: item[1][0])]
    return CompressionConfiguration(groups)


def coerce_records(records: Sequence) -> list[WorkloadRecord]:
    """Accept journal dicts or WorkloadRecord objects uniformly."""
    return [record if isinstance(record, WorkloadRecord)
            else WorkloadRecord.from_dict(record)
            for record in records]


def analyze_drift(repository, records: Sequence,
                  algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                  seed: int = 0) -> DriftReport:
    """Re-run the §3 cost model against the observed workload.

    ``records`` is what :meth:`WorkloadJournal.records` returned (or a
    list of :class:`WorkloadRecord`).  Returns the full drift report;
    an empty journal yields an empty-but-valid report.
    """
    observations = coerce_records(records)
    workload = observed_workload(observations)
    activity = merged_activity(observations)
    predicate_totals = {kind: 0 for kind in PREDICATE_KINDS}
    for predicate in workload:
        predicate_totals[predicate.kind] += 1

    string_paths = {c.path for c in repository.containers()
                    if c.value_type == "string"}
    analyzed = sorted(workload.touched_paths() & string_paths)
    if not analyzed:
        return DriftReport(
            record_count=len(observations),
            predicate_totals=predicate_totals,
            container_activity=activity,
            analyzed_paths=[],
            live_breakdown={},
            recommended_breakdown={},
            container_deltas=[],
            recommendations=[],
        )

    profiles = [
        ContainerProfile.from_values(
            path, [v for _, v in
                   repository.container(path).scan_decoded()])
        for path in analyzed
    ]
    model = CostModel(profiles, workload)
    live = _restrict(live_configuration(repository), analyzed)
    live_breakdown = model.breakdown(live)
    recommended, _ = greedy_search(profiles, workload,
                                   algorithms=algorithms, seed=seed)
    recommended_breakdown = model.breakdown(recommended)

    deltas: list[dict] = []
    recommendations: list[Recommendation] = []
    for path in analyzed:
        live_algorithm = live.algorithm_of(path)
        recommended_algorithm = recommended.algorithm_of(path)
        if live_algorithm is None or recommended_algorithm is None:
            continue
        switched = _with_path_extracted(live, path,
                                        recommended_algorithm)
        switched_breakdown = model.breakdown(switched)
        saving_total = (live_breakdown["total"]
                        - switched_breakdown["total"])
        saving_storage = (
            live_breakdown["storage"] + live_breakdown["models"]
            - switched_breakdown["storage"]
            - switched_breakdown["models"])
        saving_decompression = (
            live_breakdown["decompression"]
            - switched_breakdown["decompression"])
        deltas.append({
            "path": path,
            "live_algorithm": live_algorithm,
            "recommended_algorithm": recommended_algorithm,
            "saving_total": saving_total,
            "saving_storage": saving_storage,
            "saving_decompression": saving_decompression,
        })
        if recommended_algorithm != live_algorithm \
                and saving_total > 0:
            recommendations.append(Recommendation(
                path=path,
                current=live_algorithm,
                recommended=recommended_algorithm,
                saving_total=saving_total,
                saving_storage=saving_storage,
                saving_decompression=saving_decompression,
                enables=_newly_enabled(path, workload, live_algorithm,
                                       recommended_algorithm),
            ))
    recommendations.sort(key=lambda r: -r.saving_total)
    return DriftReport(
        record_count=len(observations),
        predicate_totals=predicate_totals,
        container_activity=activity,
        analyzed_paths=analyzed,
        live_breakdown=live_breakdown,
        recommended_breakdown=recommended_breakdown,
        container_deltas=deltas,
        recommendations=recommendations,
    )


def _restrict(configuration: CompressionConfiguration,
              paths: Sequence[str]) -> CompressionConfiguration:
    """Drop containers outside ``paths`` (cost model scope)."""
    keep = set(paths)
    groups = []
    for group in configuration.groups:
        rest = tuple(p for p in group.container_paths if p in keep)
        if rest:
            groups.append(ContainerGroup(rest, group.algorithm))
    return CompressionConfiguration(groups)


def _with_path_extracted(configuration: CompressionConfiguration,
                         path: str, algorithm: str
                         ) -> CompressionConfiguration:
    """One concrete move: recompress ``path`` alone under
    ``algorithm``, leaving every other container untouched."""
    groups = []
    for group in configuration.groups:
        rest = tuple(p for p in group.container_paths if p != path)
        if rest:
            groups.append(ContainerGroup(rest, group.algorithm))
    groups.append(ContainerGroup((path,), algorithm))
    return CompressionConfiguration(groups)


def _newly_enabled(path: str, workload: Workload, live: str,
                   recommended: str) -> list[str]:
    """Predicate kinds observed on ``path`` that only the recommended
    algorithm evaluates in the compressed domain."""
    observed_kinds = {p.kind for p in workload if path in p.paths()}
    return [kind for kind in PREDICATE_KINDS
            if kind in observed_kinds
            and not codec_class(live).properties.supports(kind)
            and codec_class(recommended).properties.supports(kind)]

"""Benchmark trajectory: per-query history persisted across runs.

Each benchmark (or the standalone ``python -m repro.bench.trajectory``
smoke run) appends one *point* per query to
``benchmarks/results/BENCH_trajectory.json``: wall time, the share of
comparisons evaluated in the compressed domain, and decompression
counts.  Because the file accumulates across sessions, plotting it
shows how the engine's §5 numbers move as the codebase evolves —
regressions in either speed or compressed-domain coverage become a
visible kink instead of a silently overwritten table.

Writes are atomic (temp file + rename, like the workload journal), so
concurrent benchmark processes can at worst lose a point, never corrupt
the file.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.reporting import RESULTS_DIR
from repro.obs import runtime
from repro.util.atomic import atomic_write_text
from repro.util.clock import Stopwatch, s_to_ns

#: the persistent trajectory file benchmarks append to.
TRAJECTORY_PATH = RESULTS_DIR / "BENCH_trajectory.json"


def _corrupt(path: Path, why: str) -> None:
    """Surface trajectory data loss instead of hiding it.

    A corrupt file still loads as ``[]`` (benchmarks must not die on a
    damaged history), but loudly: a stderr warning plus a
    ``bench.trajectory.corrupt`` metric on the active registry.
    """
    print(f"warning: trajectory file {path} is corrupt ({why}); "
          "treating as empty — its points are LOST for this run",
          file=sys.stderr)
    runtime.add("bench.trajectory.corrupt")


def load_trajectory(path: str | Path | None = None) -> list[dict]:
    """All recorded points, oldest first ([] when absent/corrupt).

    A corrupt or malformed file is *not* silent: it warns on stderr
    and bumps ``bench.trajectory.corrupt`` (see :func:`_corrupt`).
    """
    path = TRAJECTORY_PATH if path is None else Path(path)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        _corrupt(path, f"invalid JSON: {exc}")
        return []
    points = document.get("points") if isinstance(document, dict) \
        else None
    if not isinstance(points, list):
        _corrupt(path, "no top-level {'points': [...]} list")
        return []
    return [point for point in points if isinstance(point, dict)]


def record_point(query: str, wall_s: float | None = None,
                 compressed_ratio: float | None = None,
                 decompressions: int = 0, experiment: str = "",
                 items: int = 0,
                 path: str | Path | None = None,
                 ts: str | None = None,
                 wall_ns: int | None = None,
                 rolling: dict | None = None) -> dict:
    """Append one per-query measurement; returns the stored point.

    Time can be given as ``wall_ns`` (preferred — integer nanoseconds
    on the monotonic clock, directly comparable to span timings) or as
    legacy ``wall_s`` float seconds; the point stores both.
    ``rolling`` optionally attaches the serving plane's rolling-window
    view of the query's class at measurement time (``{"class": ...,
    "qps": ..., "p95_ms": ...}`` — see :func:`repro.service.slo
    .slo_report`), tying a trajectory point to the windowed telemetry
    the process was reporting when the point was taken.
    """
    path = TRAJECTORY_PATH if path is None else Path(path)
    if wall_ns is None:
        if wall_s is None:
            raise TypeError("record_point needs wall_ns or wall_s")
        wall_ns = s_to_ns(wall_s)
    elif wall_s is None:
        wall_s = wall_ns / 1e9
    point = {
        "ts": ts if ts is not None
        else datetime.now(timezone.utc).isoformat(),
        "experiment": experiment,
        "query": query,
        "wall_s": wall_s,
        "wall_ns": wall_ns,
        "compressed_ratio": compressed_ratio,
        "decompressions": decompressions,
        "items": items,
    }
    if rolling is not None:
        point["rolling"] = rolling
    points = load_trajectory(path) + [point]
    atomic_write_text(path, json.dumps(
        {"points": points}, indent=2, sort_keys=True) + "\n")
    return point


def point_from_workload_record(record, query: str,
                               experiment: str = "",
                               items: int = 0,
                               path: str | Path | None = None) -> dict:
    """Record a point straight from a journalled workload record.

    ``record`` is a :class:`repro.obs.workload.WorkloadRecord` or its
    journal dict; the point inherits its wall time, compressed-domain
    ratio and decompression count, keeping the trajectory and the
    observatory in exact agreement.
    """
    from repro.obs.workload import WorkloadRecord
    if not isinstance(record, WorkloadRecord):
        record = WorkloadRecord.from_dict(record)
    return record_point(
        query=query,
        wall_ns=record.wall_ns,
        compressed_ratio=record.compressed_ratio,
        decompressions=record.counters.get("decompressions", 0),
        experiment=experiment,
        items=items,
        path=path,
        ts=record.ts or None)


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    """Standalone observatory smoke run (used by CI).

    Generates a small XMark document, runs a few queries with workload
    recording enabled, appends one trajectory point per query, and
    prints where the journal and trajectory landed.
    """
    parser = argparse.ArgumentParser(
        prog="repro.bench.trajectory",
        description="run XMark queries with workload recording and "
                    "append benchmark trajectory points")
    parser.add_argument("--factor", type=float, default=0.01,
                        help="XMark scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", default="Q1,Q5,Q8",
                        help="comma-separated XMark query ids")
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs (= trajectory points) per query; "
                             "the regression gate needs several "
                             "samples per key to judge medians "
                             "(default 1)")
    parser.add_argument("--journal", type=Path, default=None,
                        help="workload journal path (default: "
                             "alongside the trajectory file)")
    parser.add_argument("--trajectory", type=Path,
                        default=TRAJECTORY_PATH,
                        help="trajectory file (default: "
                             "benchmarks/results/BENCH_trajectory"
                             ".json)")
    args = parser.parse_args(argv)

    from repro.obs import WorkloadJournal
    from repro.service.session import Session
    from repro.storage.loader import load_document
    from repro.xmark.generator import generate_xmark
    from repro.xmark.queries import query_text

    journal_path = args.journal if args.journal is not None \
        else args.trajectory.with_name("BENCH_workload.jsonl")
    xml_text = generate_xmark(factor=args.factor, seed=args.seed)
    repository = load_document(xml_text)
    journal = WorkloadJournal(journal_path)
    session = Session(repository, journal=journal)
    query_ids = [q.strip() for q in args.queries.split(",")
                 if q.strip()]
    for run in range(max(args.repeat, 1)):
        for query_id in query_ids:
            text = query_text(query_id)
            with Stopwatch() as watch:
                result = session.execute(text)
                items = len(result.items)
            from repro.obs.workload import WorkloadRecord
            [line] = journal.records()[-1:]
            record = WorkloadRecord.from_dict(line)
            query_class = session.prepare(text).plan.query_class
            window = session.slo_report()["rolling"] \
                .get(query_class)
            rolling = None if window is None else {
                "class": query_class,
                "qps": window["qps"],
                "p95_ms": window["p95_ms"],
            }
            # Journalled wall time excludes result materialization;
            # the smoke point records the end-to-end time instead.
            record_point(
                query=query_id, wall_ns=watch.ns,
                compressed_ratio=record.compressed_ratio,
                decompressions=record.counters.get(
                    "decompressions", 0),
                experiment="trajectory_smoke", items=items,
                path=args.trajectory, rolling=rolling)
            ratio = record.compressed_ratio
            print(f"{query_id}: {items} items, "
                  f"{watch.seconds:.3f} s, compressed_ratio="
                  f"{'n/a' if ratio is None else f'{ratio:.2f}'}",
                  file=out)
    print(f"journal: {journal_path} ({len(journal)} records)",
          file=out)
    print(f"trajectory: {args.trajectory} "
          f"({len(load_trajectory(args.trajectory))} points)",
          file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Noise-aware benchmark regression gate (``repro bench compare``).

Comparing two single timings tells you about the machine's mood, not
the code (the XML-compression benchmarking literature — Sakr's
experimental survey, Leighton & Barbosa — is one long warning about
exactly this).  The gate therefore compares **medians of repeated
samples** per ``(experiment, query)`` between a committed baseline
(``benchmarks/results/BENCH_baseline.json``) and a fresh trajectory
run, and refuses to judge keys with too few samples:

* a key is a **regression** when ``current_median > baseline_median *
  (1 + threshold)`` — the relative threshold absorbs machine-to-
  machine constant factors;
* a key with fewer than ``min_samples`` points *on either side* is
  reported as ``insufficient`` and never fails the gate — one noisy
  point must not block a merge, and one fast point must not mask a
  real regression either;
* keys present on only one side are reported (``new`` / ``missing``)
  but informational — benchmarks come and go;
* an *empty current trajectory* is itself a failure: it means the
  smoke run recorded nothing, which is precisely the silent data loss
  this gate exists to catch.

Exit status: 0 when no regressions (and points exist), 1 otherwise —
the CI ``perf-gate`` job runs it after the trajectory smoke.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.trajectory import TRAJECTORY_PATH, load_trajectory

#: the committed reference medians the gate compares against.
BASELINE_PATH = TRAJECTORY_PATH.with_name("BENCH_baseline.json")

#: default relative slowdown tolerated before a key fails the gate.
DEFAULT_THRESHOLD = 0.5

#: default minimum samples per (experiment, query) side to judge it.
DEFAULT_MIN_SAMPLES = 3


def median(values: list[float]) -> float:
    """The sample median (mean of middle two for even counts)."""
    if not values:
        raise ValueError("median of an empty sample")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def group_points(points: list[dict],
                 experiments: set[str] | None = None
                 ) -> dict[tuple[str, str], list[float]]:
    """Wall-time samples per ``(experiment, query)`` key."""
    groups: dict[tuple[str, str], list[float]] = {}
    for point in points:
        experiment = str(point.get("experiment", ""))
        if experiments is not None and experiment not in experiments:
            continue
        wall_s = point.get("wall_s")
        if not isinstance(wall_s, (int, float)) or wall_s <= 0:
            continue
        key = (experiment, str(point.get("query", "")))
        groups.setdefault(key, []).append(float(wall_s))
    return groups


@dataclass(frozen=True)
class CompareEntry:
    """The verdict for one ``(experiment, query)`` key."""

    experiment: str
    query: str
    status: str  # ok | regression | improvement | insufficient
    #              | new | missing
    baseline_median_s: float | None = None
    current_median_s: float | None = None
    baseline_samples: int = 0
    current_samples: int = 0

    @property
    def ratio(self) -> float | None:
        """current / baseline median (None when either is absent)."""
        if not self.baseline_median_s or \
                self.current_median_s is None:
            return None
        return self.current_median_s / self.baseline_median_s

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "query": self.query,
            "status": self.status,
            "baseline_median_s": self.baseline_median_s,
            "current_median_s": self.current_median_s,
            "baseline_samples": self.baseline_samples,
            "current_samples": self.current_samples,
            "ratio": self.ratio,
        }


@dataclass
class CompareReport:
    """All per-key verdicts plus the gate parameters that produced
    them."""

    threshold: float
    min_samples: int
    entries: list[CompareEntry] = field(default_factory=list)
    #: problems independent of any key (e.g. empty current trajectory).
    errors: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def ok(self) -> bool:
        """True when the gate passes (no regressions, no errors)."""
        return not self.regressions and not self.errors

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return {
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "ok": self.ok,
            "status_counts": dict(sorted(counts.items())),
            "errors": list(self.errors),
            "entries": [e.to_dict() for e in self.entries],
        }

    def render_text(self) -> str:
        out = []
        headers = ("experiment", "query", "status", "base_med_s",
                   "cur_med_s", "ratio", "n_base", "n_cur")
        rows = []
        for entry in self.entries:
            rows.append((
                entry.experiment, entry.query, entry.status,
                "n/a" if entry.baseline_median_s is None
                else f"{entry.baseline_median_s:.5f}",
                "n/a" if entry.current_median_s is None
                else f"{entry.current_median_s:.5f}",
                "n/a" if entry.ratio is None
                else f"{entry.ratio:.2f}x",
                str(entry.baseline_samples),
                str(entry.current_samples)))
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out.append("  ".join(h.ljust(w)
                             for h, w in zip(headers, widths)))
        for row in rows:
            out.append("  ".join(c.ljust(w)
                                 for c, w in zip(row, widths)))
        for error in self.errors:
            out.append(f"ERROR: {error}")
        verdict = "PASS" if self.ok else \
            f"FAIL ({len(self.regressions)} regression(s))"
        out.append(f"gate: {verdict}  "
                   f"(threshold +{100 * self.threshold:.0f}%, "
                   f"min {self.min_samples} samples)")
        return "\n".join(out)


def parse_requirement(spec: str) -> tuple[str, str, float]:
    """Parse ``EXPERIMENT:QUERY[:RATIO]`` (RATIO defaults to 1.0).

    The requirement asserts ``baseline_median / current_median >=
    RATIO`` — i.e. the current point must be at least RATIO× *faster*
    than the committed baseline (1.0 = any improvement at all).
    """
    parts = spec.split(":")
    if len(parts) == 2:
        experiment, query = parts
        ratio = 1.0
    elif len(parts) == 3:
        experiment, query = parts[0], parts[1]
        try:
            ratio = float(parts[2])
        except ValueError:
            raise ValueError(
                f"bad --require-improvement ratio in {spec!r}")
    else:
        raise ValueError(
            f"--require-improvement wants EXPERIMENT:QUERY[:RATIO], "
            f"got {spec!r}")
    if ratio <= 0:
        raise ValueError(
            f"--require-improvement ratio must be > 0, got {ratio}")
    return (experiment, query, ratio)


def check_improvements(report: CompareReport,
                       requirements: list[tuple[str, str, float]]
                       ) -> None:
    """Turn unmet improvement requirements into gate errors.

    Unlike the regression check — where a missing or thin key stays
    informational — a *required* key that is absent or has too few
    samples is an error: the whole point of requiring the key is that
    someone claimed a speedup there (the batch engine's scan win), and
    silence must not pass for proof.
    """
    by_key = {(e.experiment, e.query): e for e in report.entries}
    for experiment, query, ratio in requirements:
        entry = by_key.get((experiment, query))
        if entry is None or entry.current_median_s is None:
            report.errors.append(
                f"required improvement {experiment}:{query}: no "
                "current points recorded")
            continue
        if not entry.baseline_median_s:
            report.errors.append(
                f"required improvement {experiment}:{query}: no "
                "baseline points to improve on")
            continue
        if entry.current_samples < report.min_samples or \
                entry.baseline_samples < report.min_samples:
            report.errors.append(
                f"required improvement {experiment}:{query}: "
                f"insufficient samples "
                f"({entry.baseline_samples} baseline / "
                f"{entry.current_samples} current, "
                f"need {report.min_samples})")
            continue
        achieved = entry.baseline_median_s / entry.current_median_s
        if achieved < ratio:
            report.errors.append(
                f"required improvement {experiment}:{query}: wanted "
                f">= {ratio:.2f}x faster than baseline, got "
                f"{achieved:.2f}x")


def compare_points(current: list[dict], baseline: list[dict], *,
                   threshold: float = DEFAULT_THRESHOLD,
                   min_samples: int = DEFAULT_MIN_SAMPLES,
                   experiments: set[str] | None = None,
                   require_improvements:
                   list[tuple[str, str, float]] | None = None
                   ) -> CompareReport:
    """Judge a fresh trajectory against the committed baseline."""
    report = CompareReport(threshold=threshold,
                           min_samples=min_samples)
    current_groups = group_points(current, experiments)
    baseline_groups = group_points(baseline, experiments)
    if not current_groups:
        report.errors.append(
            "current trajectory has no usable points — the smoke run "
            "recorded nothing")
    if not baseline_groups:
        report.errors.append(
            "baseline has no usable points — reseed it with "
            "`python -m repro.bench.trajectory --repeat N "
            "--trajectory benchmarks/results/BENCH_baseline.json`")
    for key in sorted(set(current_groups) | set(baseline_groups)):
        experiment, query = key
        cur = current_groups.get(key)
        base = baseline_groups.get(key)
        if base is None:
            report.entries.append(CompareEntry(
                experiment, query, "new",
                current_median_s=median(cur),
                current_samples=len(cur)))
            continue
        if cur is None:
            report.entries.append(CompareEntry(
                experiment, query, "missing",
                baseline_median_s=median(base),
                baseline_samples=len(base)))
            continue
        entry_kwargs = dict(
            baseline_median_s=median(base),
            current_median_s=median(cur),
            baseline_samples=len(base), current_samples=len(cur))
        if len(cur) < min_samples or len(base) < min_samples:
            status = "insufficient"
        else:
            ratio = entry_kwargs["current_median_s"] \
                / entry_kwargs["baseline_median_s"]
            if ratio > 1.0 + threshold:
                status = "regression"
            elif ratio < 1.0 / (1.0 + threshold):
                status = "improvement"
            else:
                status = "ok"
        report.entries.append(
            CompareEntry(experiment, query, status, **entry_kwargs))
    if require_improvements:
        check_improvements(report, require_improvements)
    return report


def add_compare_arguments(parser: argparse.ArgumentParser) -> None:
    """The gate's options, shared by ``repro bench compare`` and the
    standalone ``python -m repro.bench.compare``."""
    parser.add_argument("--baseline", type=Path,
                        default=BASELINE_PATH,
                        help="committed baseline trajectory "
                             "(default benchmarks/results/"
                             "BENCH_baseline.json)")
    parser.add_argument("--trajectory", type=Path,
                        default=TRAJECTORY_PATH,
                        help="fresh trajectory to judge (default "
                             "benchmarks/results/"
                             "BENCH_trajectory.json)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative slowdown tolerated before a "
                             "key regresses (default %(default)s)")
    parser.add_argument("--min-samples", type=int,
                        default=DEFAULT_MIN_SAMPLES,
                        help="samples required per side to judge a "
                             "key (default %(default)s)")
    parser.add_argument("--experiment", action="append", default=None,
                        help="only judge these experiment labels "
                             "(repeatable; default: all)")
    parser.add_argument("--require-improvement", action="append",
                        default=None, metavar="EXP:QUERY[:RATIO]",
                        type=parse_requirement,
                        help="fail unless this key's current median "
                             "is at least RATIO x faster than the "
                             "baseline (RATIO defaults to 1.0; "
                             "repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report here")


def run_compare(args, out=sys.stdout) -> int:
    """Load both trajectories, judge, render; 0 iff the gate passes."""
    current = load_trajectory(args.trajectory)
    baseline = load_trajectory(args.baseline)
    report = compare_points(
        current, baseline, threshold=args.threshold,
        min_samples=args.min_samples,
        experiments=set(args.experiment) if args.experiment else None,
        require_improvements=args.require_improvement)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(report.render_text(), file=out)
    if args.output is not None:
        args.output.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    """The ``python -m repro.bench.compare`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="noise-aware perf-regression gate over the "
                    "benchmark trajectory")
    add_compare_arguments(parser)
    return run_compare(parser.parse_args(argv), out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Collate recorded experiment tables into one report.

``python -m repro.bench.collate`` gathers every
``benchmarks/results/*.txt`` produced by the benchmark suite into
``benchmarks/results/INDEX.md`` — the regenerated companion of
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.reporting import RESULTS_DIR

#: presentation order: paper artifacts first, then ablations/extras.
_ORDER = (
    "table1_datasets",
    "fig6_left_cf_real",
    "fig6_right_cf_xmark",
    "fig7_qet",
    "sec22_storage_occupancy",
    "sec23_data_touched",
    "sec23_peak_memory",
    "sec33_partitioning",
    "ablation_access_paths",
    "ablation_compressed_predicates",
    "ablation_structural_join",
    "ablation_fulltext",
    "ablation_search_quality",
    "extra_queryaware_qet",
)


def collate(results_dir: Path | None = None) -> str:
    """Build the combined report text from the recorded tables."""
    directory = results_dir if results_dir is not None else RESULTS_DIR
    recorded = {p.stem: p for p in sorted(directory.glob("*.txt"))}
    sections: list[str] = [
        "# Regenerated experiment tables",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only`; see",
        "EXPERIMENTS.md for the paper-vs-measured analysis.",
        "",
    ]
    ordered = [name for name in _ORDER if name in recorded]
    ordered += [name for name in sorted(recorded)
                if name not in _ORDER]
    for name in ordered:
        sections.append("```")
        sections.append(recorded[name].read_text(
            encoding="utf-8").rstrip())
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """Write INDEX.md next to the recorded tables."""
    directory = Path(argv[0]) if argv else RESULTS_DIR
    report = collate(directory)
    target = directory / "INDEX.md"
    target.write_text(report, encoding="utf-8")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))

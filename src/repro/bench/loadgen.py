"""Load generator for the sharded serving plane.

Drives a :class:`~repro.service.shards.ShardedDatabase` with ``C``
concurrent clients replaying a query mix for ``R`` rounds, then
reports the serving numbers that matter operationally: p50/p99
end-to-end latency, sustained QPS, the cross-shard share of the mix,
and the compressed-vs-plain shipped-bytes ratio (the paper's §1
network claim measured on a live wire).

One summary point lands in ``BENCH_trajectory.json`` per run (the
p50/p99/QPS tuple rides in the point's ``rolling`` attachment, the
shipped-bytes ratio in ``compressed_ratio``), so shard-serving
throughput regressions kink the same trajectory the single-process
benchmarks draw.

``python -m repro.bench.loadgen`` runs a bounded self-contained smoke
(tiny XMark, 2 shards) — also the CI ``shard-serving-smoke`` payload.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.bench.trajectory import record_point
from repro.errors import AdmissionError
from repro.util.clock import elapsed_ns, now_ns

#: how often a rejected query retries, and for how long, before the
#: load generator counts it as shed.
_RETRY_SLEEP_S = 0.002
_RETRY_LIMIT = 200

#: guards the shared report counters and the latency list while the
#: client threads are running.
_REPORT_LOCK = threading.Lock()


@dataclass
class LoadgenReport:
    """What one load-generator run measured."""

    completed: int = 0
    errors: int = 0
    shed: int = 0
    admission_rejects: int = 0
    wall_s: float = 0.0
    qps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    cross_shard_queries: int = 0
    shipped_bytes_ratio: float | None = None
    wire_bytes: int = 0
    plain_bytes: int = 0
    routed_by_shard: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "admission_rejects": self.admission_rejects,
            "wall_s": round(self.wall_s, 4),
            "qps": round(self.qps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "cross_shard_queries": self.cross_shard_queries,
            "shipped_bytes_ratio":
                None if self.shipped_bytes_ratio is None
                else round(self.shipped_bytes_ratio, 4),
            "wire_bytes": self.wire_bytes,
            "plain_bytes": self.plain_bytes,
            "routed_by_shard": {str(shard): count for shard, count
                                in sorted(self.routed_by_shard
                                          .items())},
        }


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile over a sorted sample ([] -> 0)."""
    if not sorted_ms:
        return 0.0
    rank = min(int(q * len(sorted_ms)), len(sorted_ms) - 1)
    return sorted_ms[rank]


def run_loadgen(database, queries: Sequence[str], *,
                rounds: int = 3, clients: int = 4,
                experiment: str = "shard-loadgen",
                trajectory_path=None,
                record: bool = True) -> LoadgenReport:
    """Replay ``queries`` ``rounds`` times from ``clients`` threads.

    Each thread is its own admission-control client
    (``loadgen-<i>``), so per-client quotas are exercised for real.
    An admission reject backs off and retries (bounded); a query that
    never gets admitted counts as *shed*, a worker-side failure as an
    *error* — neither aborts the run.
    """
    work: deque[str] = deque()
    for _ in range(max(rounds, 1)):
        work.extend(queries)
    latencies_ms: list[float] = []
    report = LoadgenReport()
    lock = _REPORT_LOCK

    def client_loop(client_id: str) -> None:
        while True:
            try:
                query = work.popleft()
            except IndexError:
                return
            start_ns = now_ns()
            attempts = 0
            while True:
                try:
                    database.execute(query, client=client_id)
                except AdmissionError:
                    attempts += 1
                    with lock:
                        report.admission_rejects += 1
                    if attempts >= _RETRY_LIMIT:
                        with lock:
                            report.shed += 1
                        break
                    time.sleep(_RETRY_SLEEP_S)
                    continue
                except Exception:  # noqa: BLE001 - keep the run alive
                    with lock:
                        report.errors += 1
                    break
                wall_ms = elapsed_ns(start_ns) / 1e6
                with lock:
                    report.completed += 1
                    latencies_ms.append(wall_ms)
                break

    count = max(clients, 1)
    run_start_ns = now_ns()
    with ThreadPoolExecutor(max_workers=count,
                            thread_name_prefix="loadgen") as pool:
        list(pool.map(client_loop,
                      [f"loadgen-{i}" for i in range(count)]))
    report.wall_s = elapsed_ns(run_start_ns) / 1e9
    if report.wall_s > 0:
        report.qps = report.completed / report.wall_s
    latencies_ms.sort()
    report.p50_ms = _percentile(latencies_ms, 0.50)
    report.p99_ms = _percentile(latencies_ms, 0.99)

    counters = database.metrics.counters()
    report.cross_shard_queries = counters.get(
        "coordinator.cross_shard_queries", 0)
    report.wire_bytes = counters.get("shipping.wire_bytes", 0)
    report.plain_bytes = counters.get("shipping.plain_bytes", 0)
    report.shipped_bytes_ratio = database.shipped_bytes_ratio()
    for shard in range(database.shard_count):
        routed = counters.get(f"shard.{shard}.routed", 0)
        if routed:
            report.routed_by_shard[shard] = routed

    if record:
        record_point(
            query=f"loadgen[{len(queries)}q x{rounds} "
                  f"c{clients} s{database.shard_count}]",
            wall_ns=int(report.p50_ms * 1e6),
            compressed_ratio=report.shipped_bytes_ratio,
            experiment=experiment,
            items=report.completed,
            path=trajectory_path,
            rolling={"p50_ms": round(report.p50_ms, 3),
                     "p99_ms": round(report.p99_ms, 3),
                     "qps": round(report.qps, 2),
                     "shards": database.shard_count,
                     "clients": clients,
                     "cross_shard": report.cross_shard_queries})
    return report

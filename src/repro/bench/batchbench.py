"""Batch-vs-row benchmark: the scan-heavy win behind DESIGN.md §13.

Times the Q1/Q5-class scan-heavy access pipelines of the Figure 7
workload through both operator protocols on the same machine and the
same repository:

* **row path** — the legacy record-pull iterators (``batch_size=1``
  semantics: one dict + one ``CompressedItem`` per record);
* **batch path** — ``batches()`` at the default width, where a scan is
  an array slice and a compressed-domain predicate is one vectorized
  interval mask.

Each repeat appends trajectory points under two experiments:
``fig7_batch`` (batch path — the numbers the perf gate's
``--require-improvement`` watches) and ``fig7_batch_row`` (row path —
same-machine context so a trajectory reader can recompute the speedup
later).  Whole-query engine timings for the actual XMark Q1/Q5 at
``batch_size=1`` vs the default ride along as ``fig7_batch_engine``.

``--min-speedup`` (default 5.0) turns the run into a gate: every
*gated* pipeline must beat the row path by at least that factor, else
exit 1.  This is the acceptance criterion "Q1/Q5-class scan-heavy
queries show >= 5x at the default batch size vs the row path on the
same machine", measured the only honest way — both paths, one process,
interleaved repeats.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.compare import median
from repro.bench.trajectory import TRAJECTORY_PATH, record_point
from repro.util.clock import Stopwatch

#: trajectory experiment labels.
EXPERIMENT_BATCH = "fig7_batch"
EXPERIMENT_ROW = "fig7_batch_row"
EXPERIMENT_ENGINE = "fig7_batch_engine"

#: pipelines whose speedup the --min-speedup gate enforces.
GATED = ("q1_idscan", "q5_pricescan")

ID_PATH = "/site/people/person/@id"
PRICE_PATH = "/site/closed_auctions/closed_auction/price/#text"
NAME_PATH = "/site/people/person/name/#text"


def build_pipelines(repository) -> dict:
    """name -> zero-arg builder of a fresh operator pipeline.

    Operators are single-consumption, so every timing run builds its
    own pipeline; construction cost is part of both measurements.
    """
    from repro.query.physical import (
        ContScan,
        Select,
        StructureSummaryAccess,
        TextContent,
    )

    def q1_idscan():
        # Q1-class: exact-match lookup as a scan + compressed-domain
        # eq predicate over person ids.
        scan = ContScan(repository, ID_PATH, "id", "v")
        return Select(
            scan, lambda r: r["v"].decode() == "person0",
            column="v", predicate_kind="eq",
            interval=("person0", "person0", True, True))

    def q5_pricescan():
        # Q5-class: inequality over closed-auction prices.
        scan = ContScan(repository, PRICE_PATH, "id", "v")
        return Select(
            scan, lambda r: float(r["v"].decode()) >= 40.0,
            column="v", predicate_kind="ineq",
            interval=("40", None, True, True))

    def q6_textcontent():
        # materialization-heavy: structure ids joined to their text.
        names = StructureSummaryAccess(
            repository, [("descendant", "name")], "n")
        return TextContent(names, repository, "n", "t", NAME_PATH)

    return {"q1_idscan": q1_idscan, "q5_pricescan": q5_pricescan,
            "q6_textcontent": q6_textcontent}


def _consume_rows(operator) -> int:
    return sum(1 for _ in operator)


def _consume_batches(operator, batch_size: int) -> int:
    return sum(len(batch) for batch in operator.batches(batch_size))


def run_batchbench(args, out=sys.stdout) -> int:
    from repro.query.engine import QueryEngine
    from repro.query.options import ExecutionOptions
    from repro.storage.loader import load_document
    from repro.xmark.generator import generate_xmark
    from repro.xmark.queries import query_text

    xml_text = generate_xmark(factor=args.factor, seed=args.seed)
    repository = load_document(xml_text)
    pipelines = build_pipelines(repository)
    repeat = max(args.repeat, 1)
    failures: list[str] = []

    for name, build in pipelines.items():
        row_samples: list[float] = []
        batch_samples: list[float] = []
        # interleave: machine drift hits both paths equally.
        for _ in range(repeat):
            with Stopwatch() as watch:
                row_count = _consume_rows(build())
            row_samples.append(watch.seconds)
            with Stopwatch() as watch:
                batch_count = _consume_batches(build(),
                                               args.batch_size)
            batch_samples.append(watch.seconds)
            if row_count != batch_count:
                failures.append(
                    f"{name}: row path produced {row_count} rows, "
                    f"batch path {batch_count}")
                break
        for sample in row_samples:
            record_point(query=name, wall_s=sample,
                         experiment=EXPERIMENT_ROW,
                         items=row_count, path=args.trajectory)
        for sample in batch_samples:
            record_point(query=name, wall_s=sample,
                         experiment=EXPERIMENT_BATCH,
                         items=batch_count, path=args.trajectory)
        speedup = median(row_samples) / median(batch_samples)
        gated = name in GATED
        print(f"{name}: rows {median(row_samples) * 1e3:.3f} ms, "
              f"batch {median(batch_samples) * 1e3:.3f} ms "
              f"({batch_count} rows) -> {speedup:.1f}x"
              f"{'' if gated else '  [informational]'}", file=out)
        if gated and speedup < args.min_speedup:
            failures.append(
                f"{name}: {speedup:.1f}x < required "
                f"{args.min_speedup:.1f}x")

    for query_id in ("Q1", "Q5"):
        text = query_text(query_id)
        engine = QueryEngine(repository)
        row_samples = []
        batch_samples = []
        for _ in range(repeat):
            with Stopwatch() as watch:
                engine.execute(text,
                               ExecutionOptions(batch_size=1)).items
            row_samples.append(watch.seconds)
            with Stopwatch() as watch:
                engine.execute(
                    text,
                    ExecutionOptions(batch_size=args.batch_size)).items
            batch_samples.append(watch.seconds)
        for sample in batch_samples:
            record_point(query=query_id, wall_s=sample,
                         experiment=EXPERIMENT_ENGINE,
                         path=args.trajectory)
        speedup = median(row_samples) / median(batch_samples)
        print(f"engine {query_id}: row-path "
              f"{median(row_samples) * 1e3:.3f} ms, batch "
              f"{median(batch_samples) * 1e3:.3f} ms -> "
              f"{speedup:.2f}x  [informational]", file=out)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print(f"batchbench: PASS (gated pipelines >= "
          f"{args.min_speedup:.1f}x at batch size "
          f"{args.batch_size})", file=out)
    return 0


def add_batchbench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--factor", type=float, default=0.1,
                        help="XMark scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeat", type=int, default=5,
                        help="interleaved repeats per pipeline "
                             "(default 5; the perf gate wants >= 3 "
                             "samples)")
    parser.add_argument("--batch-size", type=int, default=1024,
                        help="batch width under test (default 1024)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required batch-over-row factor for the "
                             "gated scan pipelines (default 5.0)")
    parser.add_argument("--trajectory", type=Path,
                        default=TRAJECTORY_PATH,
                        help="trajectory file to append points to")


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.batchbench",
        description="batch-vs-row operator benchmark (DESIGN.md §13)")
    add_batchbench_arguments(parser)
    return run_batchbench(parser.parse_args(argv), out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

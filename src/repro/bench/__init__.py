"""Benchmark support: experiment registry and table formatting."""

from repro.bench.reporting import format_table, record_result

__all__ = ["format_table", "record_result"]

"""Benchmark support: experiment registry, table formatting, the
persistent trajectory, and the noise-aware regression gate."""

from repro.bench.compare import (
    BASELINE_PATH,
    CompareEntry,
    CompareReport,
    compare_points,
)
from repro.bench.reporting import format_table, record_result
from repro.bench.trajectory import (
    TRAJECTORY_PATH,
    load_trajectory,
    record_point,
)

__all__ = [
    "BASELINE_PATH",
    "CompareEntry",
    "CompareReport",
    "compare_points",
    "format_table",
    "load_trajectory",
    "record_point",
    "record_result",
    "TRAJECTORY_PATH",
]
